#include "core/collection.h"

#include <gtest/gtest.h>

#include "core/preprocess.h"
#include "datagen/world.h"

namespace newsdiff::core {
namespace {

store::Database MakeDb() {
  store::Database db;
  store::Collection& users = db.GetOrCreate("users");
  users.Insert(store::MakeObject({{"user_id", int64_t{0}},
                                  {"handle", "user_0"},
                                  {"followers", int64_t{50}}}));
  users.Insert(store::MakeObject({{"user_id", int64_t{1}},
                                  {"handle", "user_1"},
                                  {"followers", int64_t{5000}}}));
  store::Collection& news = db.GetOrCreate("news");
  news.Insert(store::MakeObject({{"article_id", int64_t{10}},
                                 {"title", "Vote delayed"},
                                 {"body", "Parliament votes again."},
                                 {"published", int64_t{1000}}}));
  store::Collection& tweets = db.GetOrCreate("tweets");
  tweets.Insert(store::MakeObject({{"tweet_id", int64_t{100}},
                                   {"user_id", int64_t{1}},
                                   {"text", "vote now #brexit"},
                                   {"created", int64_t{1100}},
                                   {"likes", int64_t{1200}},
                                   {"retweets", int64_t{90}}}));
  tweets.Insert(store::MakeObject({{"tweet_id", int64_t{101}},
                                   {"user_id", int64_t{0}},
                                   {"text", "coffee time"},
                                   {"created", int64_t{1200}},
                                   {"likes", int64_t{3}},
                                   {"retweets", int64_t{0}}}));
  return db;
}

TEST(LoadNewsTest, ReadsAllFields) {
  store::Database db = MakeDb();
  auto news = LoadNews(db);
  ASSERT_TRUE(news.ok());
  ASSERT_EQ(news->size(), 1u);
  EXPECT_EQ((*news)[0].id, 10);
  EXPECT_EQ((*news)[0].title, "Vote delayed");
  EXPECT_EQ((*news)[0].body, "Parliament votes again.");
  EXPECT_EQ((*news)[0].published, 1000);
}

TEST(LoadNewsTest, MissingCollectionFails) {
  store::Database db;
  EXPECT_FALSE(LoadNews(db).ok());
}

TEST(LoadTweetsTest, JoinsFollowerMetadata) {
  store::Database db = MakeDb();
  auto tweets = LoadTweets(db);
  ASSERT_TRUE(tweets.ok());
  ASSERT_EQ(tweets->size(), 2u);
  const TweetRecord& influencer_tweet = (*tweets)[0];
  EXPECT_EQ(influencer_tweet.id, 100);
  EXPECT_EQ(influencer_tweet.followers, 5000);
  EXPECT_EQ(influencer_tweet.follower_class, 2);
  EXPECT_EQ(influencer_tweet.follower_bucket,
            datagen::FollowerBucket7(5000));
  const TweetRecord& small_tweet = (*tweets)[1];
  EXPECT_EQ(small_tweet.followers, 50);
  EXPECT_EQ(small_tweet.follower_class, 0);
}

TEST(LoadTweetsTest, UnknownUserGetsZeroFollowers) {
  store::Database db = MakeDb();
  db.Get("tweets")->Insert(store::MakeObject({{"tweet_id", int64_t{102}},
                                              {"user_id", int64_t{77}},
                                              {"text", "orphan"},
                                              {"created", int64_t{1300}},
                                              {"likes", int64_t{1}},
                                              {"retweets", int64_t{0}}}));
  auto tweets = LoadTweets(db);
  ASSERT_TRUE(tweets.ok());
  EXPECT_EQ((*tweets)[2].followers, 0);
  EXPECT_EQ((*tweets)[2].follower_class, 0);
}

TEST(LoadTweetsTest, MissingCollectionsFail) {
  store::Database db;
  EXPECT_FALSE(LoadTweets(db).ok());
  db.GetOrCreate("tweets");
  EXPECT_FALSE(LoadTweets(db).ok());  // still no users
}

TEST(PreprocessTest, CorporaAlignWithRecords) {
  store::Database db = MakeDb();
  auto news = LoadNews(db);
  auto tweets = LoadTweets(db);
  ASSERT_TRUE(news.ok() && tweets.ok());

  corpus::Corpus news_tm = BuildNewsTM(*news);
  corpus::Corpus news_ed = BuildNewsED(*news);
  corpus::Corpus twitter_ed = BuildTwitterED(*tweets);

  EXPECT_EQ(news_tm.size(), news->size());
  EXPECT_EQ(news_ed.size(), news->size());
  EXPECT_EQ(twitter_ed.size(), tweets->size());
  // Alignment: external ids and timestamps carried over.
  EXPECT_EQ(news_ed.doc(0).external_id, 10);
  EXPECT_EQ(news_ed.doc(0).timestamp, 1000);
  EXPECT_EQ(twitter_ed.doc(1).external_id, 101);
  EXPECT_EQ(twitter_ed.doc(1).timestamp, 1200);
  // NewsTM applied lemmatization + stopword removal; NewsED did not.
  EXPECT_EQ(news_tm.vocabulary().Get("the"), corpus::kUnknownTerm);
  EXPECT_NE(news_ed.vocabulary().Get("again"), corpus::kUnknownTerm);
  // TwitterED kept the hashtag word.
  EXPECT_NE(twitter_ed.vocabulary().Get("brexit"), corpus::kUnknownTerm);
}

TEST(RoundTripTest, WorldThroughStoreAndBack) {
  datagen::WorldOptions opts;
  opts.seed = 77;
  opts.num_users = 50;
  opts.num_articles = 40;
  opts.num_tweets = 120;
  datagen::World world = datagen::GenerateWorld(opts);
  store::Database db;
  world.LoadInto(db);
  auto news = LoadNews(db);
  auto tweets = LoadTweets(db);
  ASSERT_TRUE(news.ok() && tweets.ok());
  EXPECT_EQ(news->size(), world.articles.size());
  EXPECT_EQ(tweets->size(), world.tweets.size());
  // The store preserves engagement values and the join recovers follower
  // classes identical to the generator's ground truth.
  for (size_t i = 0; i < tweets->size(); ++i) {
    EXPECT_EQ((*tweets)[i].likes, world.tweets[i].likes);
    EXPECT_EQ((*tweets)[i].follower_class,
              world.users[world.tweets[i].user].follower_class);
  }
}

}  // namespace
}  // namespace newsdiff::core
