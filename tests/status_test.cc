#include "common/status.h"

#include <gtest/gtest.h>

namespace newsdiff {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing doc");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing doc");
  EXPECT_EQ(s.ToString(), "NotFound: missing doc");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::Internal("boom"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ArrowAccess) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

/// Instrumented type that records how it was propagated.
struct CopyCounter {
  int copies = 0;
  int moves = 0;
  CopyCounter() = default;
  CopyCounter(const CopyCounter& o) : copies(o.copies + 1), moves(o.moves) {}
  CopyCounter(CopyCounter&& o) noexcept
      : copies(o.copies), moves(o.moves + 1) {}
  CopyCounter& operator=(const CopyCounter&) = default;
  CopyCounter& operator=(CopyCounter&&) = default;
};

TEST(StatusOrTest, ValueOrOnRvalueMovesInsteadOfCopying) {
  StatusOr<CopyCounter> v{CopyCounter{}};
  CopyCounter out = std::move(v).value_or(CopyCounter{});
  EXPECT_EQ(out.copies, 0);  // OK path must not copy the contained value
}

TEST(StatusOrTest, ValueOrOnLvalueCopiesOnce) {
  StatusOr<CopyCounter> v{CopyCounter{}};
  CopyCounter out = v.value_or(CopyCounter{});
  EXPECT_EQ(out.copies, 1);  // the lvalue overload cannot avoid the copy
}

TEST(StatusOrTest, ValueOrFallbackConvertsHeterogeneousTypes) {
  StatusOr<std::string> err(Status::NotFound("nope"));
  // const char* fallback converts; no std::string temp needed at the call.
  EXPECT_EQ(err.value_or("fallback"), "fallback");
  StatusOr<std::string> okay(std::string("present"));
  EXPECT_EQ(okay.value_or("fallback"), "present");
  EXPECT_EQ(std::move(okay).value_or("fallback"), "present");
}

Status FailsThenPropagates(bool fail) {
  auto inner = [&]() -> Status {
    if (fail) return Status::IoError("inner");
    return Status::OK();
  };
  NEWSDIFF_RETURN_IF_ERROR(inner());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status s = FailsThenPropagates(true);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace newsdiff
