// Tests for the load harness (src/loadgen): histogram geometry, seeded
// trace determinism, NURand/Zipf hot-key skew, phase semantics, and an
// end-to-end open-loop driver run against a real Engine. Suite names carry
// the `Loadgen` prefix: the sanitizer CI jobs select them by that regex.
#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/world.h"
#include "loadgen/driver.h"
#include "loadgen/histogram.h"
#include "loadgen/workload.h"
#include "store/database.h"

namespace newsdiff::loadgen {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LoadgenHistogram, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_nanos(), 0u);
  EXPECT_EQ(h.min_nanos(), 0u);
  EXPECT_EQ(h.PercentileNanos(0.5), 0.0);
  EXPECT_EQ(h.MeanNanos(), 0.0);
}

TEST(LoadgenHistogram, RecordsCountSumMinMax) {
  LatencyHistogram h;
  h.Record(1'000'000);   // 1ms
  h.Record(2'000'000);   // 2ms
  h.Record(10'000'000);  // 10ms
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min_nanos(), 1'000'000u);
  EXPECT_EQ(h.max_nanos(), 10'000'000u);
  EXPECT_NEAR(h.MeanNanos(), (1.0 + 2.0 + 10.0) / 3.0 * 1e6, 1.0);
}

TEST(LoadgenHistogram, PercentileIsBucketUpperBoundWithinResolution) {
  LatencyHistogram h;
  // 100 samples at exactly 5ms: every percentile resolves to the bucket
  // holding 5ms, whose upper bound is within one log-step (~7.5%).
  for (int i = 0; i < 100; ++i) h.Record(5'000'000);
  for (double p : {0.5, 0.99, 0.999}) {
    const double v = h.PercentileNanos(p);
    EXPECT_GE(v, 5.0e6 * 0.999) << p;
    EXPECT_LE(v, 5.0e6 * 1.08) << p;
  }
}

TEST(LoadgenHistogram, PercentilesAreMonotoneAndOrderIndependent) {
  LatencyHistogram forward;
  LatencyHistogram backward;
  std::vector<uint64_t> samples;
  for (uint64_t i = 1; i <= 1000; ++i) samples.push_back(i * 37'000);
  for (uint64_t s : samples) forward.Record(s);
  std::reverse(samples.begin(), samples.end());
  for (uint64_t s : samples) backward.Record(s);
  double prev = 0.0;
  for (double p : {0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = forward.PercentileNanos(p);
    EXPECT_GE(v, prev);
    EXPECT_EQ(v, backward.PercentileNanos(p)) << p;
    prev = v;
  }
}

TEST(LoadgenHistogram, UnderflowAndOverflowClampIntoEdgeBuckets) {
  LatencyHistogram h;
  h.Record(0);                       // below 1us -> bucket 0
  h.Record(500);                     // still bucket 0
  h.Record(3'600'000'000'000ULL);    // 1 hour -> overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(LatencyHistogram::BucketFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketFor(999), 0u);
  EXPECT_EQ(LatencyHistogram::BucketFor(3'600'000'000'000ULL),
            LatencyHistogram::kNumBuckets - 1);
  // The overflow percentile clamps to the observed max, not infinity.
  EXPECT_EQ(h.PercentileNanos(1.0), 3.6e12);
}

TEST(LoadgenHistogram, MergeEqualsRecordingEverySample) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (uint64_t i = 1; i <= 500; ++i) {
    const uint64_t sample = i * 91'000;
    if (i % 2 == 0) {
      a.Record(sample);
    } else {
      b.Record(sample);
    }
    combined.Record(sample);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max_nanos(), combined.max_nanos());
  EXPECT_EQ(a.min_nanos(), combined.min_nanos());
  for (double p : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.PercentileNanos(p), combined.PercentileNanos(p)) << p;
  }
}

TEST(LoadgenHistogram, BucketBoundariesAreMonotone) {
  uint64_t prev = 0;
  for (size_t i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const uint64_t upper = LatencyHistogram::BucketUpperNanos(i);
    EXPECT_GT(upper, prev) << i;
    prev = upper;
  }
}

// ---------------------------------------------------------------------------
// WorkloadGenerator

WorkloadOptions SmallWorkload(uint64_t seed = 7) {
  WorkloadOptions options;
  options.seed = seed;
  options.num_users = 300;
  options.phases = StandardPhases(/*rate=*/400.0, /*seconds=*/2.0);
  return options;
}

TEST(LoadgenWorkload, SameSeedYieldsIdenticalTrace) {
  const WorkloadGenerator generator(SmallWorkload());
  const std::vector<Request> a = generator.GenerateTrace();
  const std::vector<Request> b = generator.GenerateTrace();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(TraceHash(a), TraceHash(b));
  // And a second generator built from equal options agrees too.
  const WorkloadGenerator again(SmallWorkload());
  EXPECT_EQ(TraceHash(again.GenerateTrace()), TraceHash(a));
}

TEST(LoadgenWorkload, DifferentSeedsDiverge) {
  const std::vector<Request> a =
      WorkloadGenerator(SmallWorkload(7)).GenerateTrace();
  const std::vector<Request> b =
      WorkloadGenerator(SmallWorkload(8)).GenerateTrace();
  EXPECT_NE(TraceHash(a), TraceHash(b));
}

TEST(LoadgenWorkload, ArrivalsAreSortedAndSeqDense) {
  const std::vector<Request> trace =
      WorkloadGenerator(SmallWorkload()).GenerateTrace();
  ASSERT_FALSE(trace.empty());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].seq, i);
    if (i > 0) {
      EXPECT_GE(trace[i].arrival_nanos, trace[i - 1].arrival_nanos);
    }
  }
}

TEST(LoadgenWorkload, OfferedRateMatchesPoissonExpectation) {
  WorkloadOptions options;
  options.seed = 11;
  PhaseSpec steady;
  steady.duration_seconds = 10.0;
  steady.arrival_rate = 500.0;
  options.phases = {steady};
  const std::vector<Request> trace =
      WorkloadGenerator(options).GenerateTrace();
  // Poisson(5000): 5 sigma is ~354.
  EXPECT_NEAR(static_cast<double>(trace.size()), 5000.0, 360.0);
}

TEST(LoadgenWorkload, MixRatiosAreRespected) {
  WorkloadOptions options;
  options.seed = 13;
  PhaseSpec steady;
  steady.duration_seconds = 20.0;
  steady.arrival_rate = 400.0;
  options.phases = {steady};
  const std::vector<Request> trace =
      WorkloadGenerator(options).GenerateTrace();
  size_t counts[kNumOpClasses] = {0, 0, 0, 0};
  for (const Request& r : trace) ++counts[static_cast<size_t>(r.op)];
  const double n = static_cast<double>(trace.size());
  EXPECT_NEAR(counts[0] / n, 0.20, 0.03);  // tweet_ingest
  EXPECT_NEAR(counts[1] / n, 0.10, 0.03);  // article_upsert
  EXPECT_NEAR(counts[2] / n, 0.45, 0.03);  // query_trending
  EXPECT_NEAR(counts[3] / n, 0.25, 0.03);  // predict_interest
}

TEST(LoadgenWorkload, TopicsAreHotKeySkewed) {
  WorkloadOptions options;
  options.seed = 17;
  PhaseSpec steady;
  steady.duration_seconds = 20.0;
  steady.arrival_rate = 500.0;
  options.phases = {steady};
  const WorkloadGenerator generator(options);
  const std::vector<Request> trace = generator.GenerateTrace();
  std::map<uint32_t, size_t> by_topic;
  for (const Request& r : trace) ++by_topic[r.topic];
  // The Zipf rank-1 topic (rotated by C) must be the hottest, and carry
  // far more than the uniform share (1/12 ~ 8.3%).
  const uint32_t hot = generator.HotTopic();
  size_t hottest_count = 0;
  uint32_t hottest_topic = 0;
  for (const auto& [topic, count] : by_topic) {
    if (count > hottest_count) {
      hottest_count = count;
      hottest_topic = topic;
    }
  }
  EXPECT_EQ(hottest_topic, hot);
  EXPECT_GT(static_cast<double>(hottest_count) /
                static_cast<double>(trace.size()),
            0.20);
}

TEST(LoadgenWorkload, UsersAreNURandSkewed) {
  WorkloadOptions options = SmallWorkload(19);
  const std::vector<Request> trace =
      WorkloadGenerator(options).GenerateTrace();
  std::map<uint32_t, size_t> by_user;
  for (const Request& r : trace) {
    EXPECT_LT(r.user, options.num_users);
    ++by_user[r.user];
  }
  // The NURand OR-bias concentrates mass: the most-hit decile of users
  // must absorb well above a uniform decile's share.
  std::vector<size_t> counts;
  for (const auto& [user, count] : by_user) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  size_t top_decile = 0;
  size_t total = 0;
  const size_t decile = std::max<size_t>(1, options.num_users / 10);
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i < decile) top_decile += counts[i];
    total += counts[i];
  }
  EXPECT_GT(static_cast<double>(top_decile) / static_cast<double>(total),
            0.2);
}

TEST(LoadgenWorkload, FlashCrowdPhaseConcentratesOnTheHotTopic) {
  const WorkloadGenerator generator(SmallWorkload(23));
  const std::vector<Request> trace = generator.GenerateTrace();
  const uint32_t hot = generator.HotTopic();
  size_t steady_total = 0, steady_hot = 0, flash_total = 0, flash_hot = 0;
  for (const Request& r : trace) {
    if (r.phase == 0) {
      ++steady_total;
      if (r.topic == hot) ++steady_hot;
    } else if (r.phase == 1) {
      ++flash_total;
      if (r.topic == hot) ++flash_hot;
    }
  }
  ASSERT_GT(steady_total, 0u);
  ASSERT_GT(flash_total, 0u);
  const double steady_share =
      static_cast<double>(steady_hot) / static_cast<double>(steady_total);
  const double flash_share =
      static_cast<double>(flash_hot) / static_cast<double>(flash_total);
  // hot_topic_boost=0.6 forces ~60% on top of the baseline Zipf share.
  EXPECT_GT(flash_share, steady_share + 0.2);
  EXPECT_GT(flash_share, 0.55);
}

TEST(LoadgenWorkload, OutageGeneratesNoArticleUpserts) {
  const WorkloadGenerator generator(SmallWorkload(29));
  const std::vector<Request> trace = generator.GenerateTrace();
  size_t outage_total = 0;
  for (const Request& r : trace) {
    if (r.phase != 2) continue;
    ++outage_total;
    EXPECT_NE(r.op, OpClass::kArticleUpsert) << r.seq;
  }
  EXPECT_GT(outage_total, 0u);
}

TEST(LoadgenWorkload, BurstPhaseRaisesArrivalDensity) {
  const WorkloadGenerator generator(SmallWorkload(31));
  const std::vector<Request> trace = generator.GenerateTrace();
  // StandardPhases(400, 2.0): steady 2s @ 400/s, flash 1s @ 1200/s.
  size_t steady = 0, flash = 0;
  for (const Request& r : trace) {
    if (r.phase == 0) ++steady;
    if (r.phase == 1) ++flash;
  }
  const double steady_rate = static_cast<double>(steady) / 2.0;
  const double flash_rate = static_cast<double>(flash) / 1.0;
  EXPECT_GT(flash_rate, steady_rate * 2.0);
}

TEST(LoadgenWorkload, NURandStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t v = NURand(rng, 1023, 0, 2999, 259);
    EXPECT_LT(v, 3000u);
  }
  for (int i = 0; i < 1000; ++i) {
    const uint32_t v = NURand(rng, 255, 10, 20, 7);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(LoadgenWorkload, TextSynthesisProducesNonEmptyQueries) {
  const std::vector<Request> trace =
      WorkloadGenerator(SmallWorkload(37)).GenerateTrace();
  for (const Request& r : trace) {
    EXPECT_FALSE(r.text.empty()) << r.seq;
    if (r.op == OpClass::kArticleUpsert) {
      EXPECT_FALSE(r.body.empty()) << r.seq;
    } else {
      EXPECT_TRUE(r.body.empty()) << r.seq;
    }
  }
}

// ---------------------------------------------------------------------------
// LoadDriver end to end (a real Engine over a small world)

class LoadgenDriverFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::WorldOptions world_options;
    world_options.num_articles = 250;
    world_options.num_tweets = 700;
    world_options.num_users = 150;
    world_ = datagen::GenerateWorld(world_options);
    world_.LoadInto(db_);
    engine_.emplace(EngineOptions{});
    ASSERT_TRUE(engine_->BuildIndex(db_).ok());
  }

  datagen::World world_;
  store::Database db_;
  std::optional<Engine> engine_;
};

TEST_F(LoadgenDriverFixture, ReplaysEveryRequestWithoutErrors) {
  WorkloadOptions workload;
  workload.seed = 41;
  workload.num_users = 150;
  PhaseSpec steady;
  steady.duration_seconds = 1.0;
  steady.arrival_rate = 200.0;
  workload.phases = {steady};
  const std::vector<Request> trace =
      WorkloadGenerator(workload).GenerateTrace();
  ASSERT_FALSE(trace.empty());

  const size_t tweets_before = db_.GetOrCreate("tweets").size();
  const size_t news_before = db_.GetOrCreate("news").size();
  const EngineStatsSnapshot stats_before = engine_->stats();

  DriverOptions driver_options;
  driver_options.threads = 4;
  LoadDriver driver(*engine_, db_, driver_options);
  const RunReport report = driver.Run(trace);

  EXPECT_EQ(report.issued, trace.size());
  EXPECT_EQ(report.errors, 0u);
  size_t per_class_issued = 0;
  size_t expected[kNumOpClasses] = {0, 0, 0, 0};
  for (const Request& r : trace) ++expected[static_cast<size_t>(r.op)];
  for (size_t c = 0; c < kNumOpClasses; ++c) {
    EXPECT_EQ(report.per_class[c].issued, expected[c]) << c;
    per_class_issued += report.per_class[c].issued;
    EXPECT_EQ(report.per_class[c].latency.count(),
              report.per_class[c].issued);
  }
  EXPECT_EQ(per_class_issued, trace.size());

  // Ingests really landed in the store.
  EXPECT_EQ(db_.GetOrCreate("tweets").size(),
            tweets_before +
                expected[static_cast<size_t>(OpClass::kTweetIngest)]);
  EXPECT_EQ(db_.GetOrCreate("news").size(),
            news_before +
                expected[static_cast<size_t>(OpClass::kArticleUpsert)]);

  // The Engine's stats hook saw exactly the query traffic.
  const EngineStatsSnapshot stats_after = engine_->stats();
  EXPECT_EQ(stats_after.trending_queries - stats_before.trending_queries,
            expected[static_cast<size_t>(OpClass::kQueryTrending)]);
  EXPECT_EQ(
      stats_after.interest_predictions - stats_before.interest_predictions,
      expected[static_cast<size_t>(OpClass::kPredictInterest)]);
  EXPECT_EQ(stats_after.serving_errors, stats_before.serving_errors);

  EXPECT_GT(report.offered_rate, 0.0);
  EXPECT_GT(report.achieved_rate, 0.0);
  EXPECT_GT(report.AchievedRatio(), 0.0);
  EXPECT_LE(report.AchievedRatio(), 1.0);
}

TEST_F(LoadgenDriverFixture, BackgroundIndexSwapUnderLoadIsClean) {
  WorkloadOptions workload;
  workload.seed = 43;
  workload.num_users = 150;
  PhaseSpec steady;
  steady.duration_seconds = 1.2;
  steady.arrival_rate = 250.0;
  workload.phases = {steady};
  const std::vector<Request> trace =
      WorkloadGenerator(workload).GenerateTrace();

  DriverOptions driver_options;
  driver_options.threads = 4;
  LoadDriver driver(*engine_, db_, driver_options);
  const uint64_t swaps_before = engine_->stats().index_swaps;
  std::thread refresher([&] {
    // Holding the driver's db mutex: ingests pause while the rebuild
    // reads the collections; queries keep flowing against the old
    // generation until the swap.
    std::lock_guard<std::mutex> lock(driver.db_mutex());
    ASSERT_TRUE(engine_->BuildIndex(db_).ok());
  });
  const RunReport report = driver.Run(trace);
  refresher.join();

  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.issued, trace.size());
  EXPECT_EQ(engine_->stats().index_swaps, swaps_before + 1);
}

TEST_F(LoadgenDriverFixture, SloEvaluationFlagsSaturation) {
  // A fabricated report that missed its schedule badly must fail the
  // ratio bound, and one with slow p99 must name the class and bound.
  RunReport report;
  report.scheduled_seconds = 1.0;
  report.elapsed_seconds = 2.0;  // ratio 0.5
  SloSpec slo;
  std::string why;
  EXPECT_FALSE(report.SloOk(slo, &why));
  EXPECT_EQ(why, "achieved/offered ratio");

  report.elapsed_seconds = 1.0;
  for (int i = 0; i < 1000; ++i) {
    report.per_class[2].latency.Record(1'000'000);  // 1ms
  }
  report.per_class[2].latency.Record(400'000'000);  // one 400ms straggler
  EXPECT_TRUE(report.SloOk(slo, &why)) << why;  // p999 over 1001 samples...
  for (int i = 0; i < 20; ++i) {
    report.per_class[2].latency.Record(400'000'000);  // now p99 breaks too
  }
  EXPECT_FALSE(report.SloOk(slo, &why));
  EXPECT_EQ(why, "query_trending p99");
}

TEST_F(LoadgenDriverFixture, SaturationSearchStopsAtTheBreakingRate) {
  WorkloadOptions base;
  base.seed = 47;
  base.num_users = 150;
  DriverOptions driver_options;
  driver_options.threads = 2;
  LoadDriver driver(*engine_, db_, driver_options);
  // An impossible SLO (p99 <= 0.000001ms) breaks on the first step: the
  // search must report it as the breaking rate and sustain nothing.
  SloSpec impossible;
  impossible.p50_ms = 1e-6;
  impossible.p99_ms = 1e-6;
  impossible.p999_ms = 1e-6;
  const SaturationResult broke =
      SaturationSearch(driver, base, impossible, /*start_rate=*/50.0,
                       /*growth=*/2.0, /*max_steps=*/3,
                       /*window_seconds=*/0.3);
  ASSERT_EQ(broke.steps.size(), 1u);
  EXPECT_EQ(broke.max_sustained_rate, 0.0);
  EXPECT_EQ(broke.breaking_rate, 50.0);
  EXPECT_FALSE(broke.steps[0].slo_ok);

  // A permissive SLO walks all steps and sustains the last rate.
  SloSpec permissive;
  permissive.p50_ms = 1e9;
  permissive.p99_ms = 1e9;
  permissive.p999_ms = 1e9;
  permissive.min_achieved_ratio = 0.0;
  const SaturationResult held =
      SaturationSearch(driver, base, permissive, /*start_rate=*/50.0,
                       /*growth=*/2.0, /*max_steps=*/3,
                       /*window_seconds=*/0.3);
  ASSERT_EQ(held.steps.size(), 3u);
  EXPECT_EQ(held.breaking_rate, 0.0);
  EXPECT_EQ(held.max_sustained_rate, 200.0);
}

}  // namespace
}  // namespace newsdiff::loadgen
