#include "embed/word2vec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace newsdiff::embed {
namespace {

/// Two word "communities" that never co-occur: co-occurring words must end
/// up more similar than cross-community pairs.
std::vector<std::vector<std::string>> CommunityCorpus(uint64_t seed,
                                                      size_t sentences) {
  Rng rng(seed);
  std::vector<std::string> red = {"apple", "cherry", "ruby", "crimson"};
  std::vector<std::string> blue = {"ocean", "sky", "sapphire", "navy"};
  std::vector<std::vector<std::string>> corpus;
  for (size_t s = 0; s < sentences; ++s) {
    const auto& pool = s % 2 == 0 ? red : blue;
    std::vector<std::string> sent;
    for (int w = 0; w < 8; ++w) {
      sent.push_back(pool[rng.NextBelow(pool.size())]);
    }
    corpus.push_back(std::move(sent));
  }
  return corpus;
}

TEST(Word2VecTest, RejectsZeroDimension) {
  Word2VecOptions opts;
  opts.dimension = 0;
  EXPECT_FALSE(TrainWord2Vec({{"a", "b"}}, opts).ok());
}

TEST(Word2VecTest, RejectsEmptyVocabulary) {
  Word2VecOptions opts;
  opts.min_count = 100;
  EXPECT_FALSE(TrainWord2Vec({{"a", "b"}}, opts).ok());
}

TEST(Word2VecTest, VectorsHaveRequestedDimension) {
  Word2VecOptions opts;
  opts.dimension = 17;
  opts.min_count = 1;
  opts.epochs = 1;
  auto vectors = TrainWord2Vec(CommunityCorpus(1, 50), opts);
  ASSERT_TRUE(vectors.ok());
  EXPECT_EQ(vectors->dimension(), 17u);
  EXPECT_EQ(vectors->size(), 8u);
  const std::vector<double>* v = vectors->Get("apple");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->size(), 17u);
}

TEST(Word2VecTest, MinCountDropsRareWords) {
  Word2VecOptions opts;
  opts.min_count = 2;
  opts.epochs = 1;
  auto vectors = TrainWord2Vec(
      {{"common", "common", "rare"}, {"common", "other", "other"}}, opts);
  ASSERT_TRUE(vectors.ok());
  EXPECT_TRUE(vectors->Contains("common"));
  EXPECT_FALSE(vectors->Contains("rare"));
}

TEST(Word2VecTest, DeterministicForSeed) {
  Word2VecOptions opts;
  opts.dimension = 16;
  opts.min_count = 1;
  opts.epochs = 2;
  auto corpus = CommunityCorpus(2, 60);
  auto v1 = TrainWord2Vec(corpus, opts);
  auto v2 = TrainWord2Vec(corpus, opts);
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_EQ(*v1->Get("apple"), *v2->Get("apple"));
}

TEST(Word2VecTest, CooccurringWordsCloserThanCross) {
  Word2VecOptions opts;
  opts.dimension = 32;
  opts.min_count = 1;
  opts.epochs = 10;
  opts.window = 4;
  opts.subsample = 0.0;
  auto vectors = TrainWord2Vec(CommunityCorpus(3, 400), opts);
  ASSERT_TRUE(vectors.ok());
  double within = vectors->Similarity("apple", "cherry");
  double cross = vectors->Similarity("apple", "ocean");
  EXPECT_GT(within, cross);
}

TEST(Word2VecTest, CbowModeAlsoLearnsCommunities) {
  Word2VecOptions opts;
  opts.dimension = 32;
  opts.min_count = 1;
  opts.epochs = 10;
  opts.mode = Word2VecMode::kCbow;
  opts.subsample = 0.0;
  auto vectors = TrainWord2Vec(CommunityCorpus(4, 400), opts);
  ASSERT_TRUE(vectors.ok());
  EXPECT_GT(vectors->Similarity("sky", "navy"),
            vectors->Similarity("sky", "cherry"));
}

TEST(WordVectorsTest, SimilarityOfMissingWordIsZero) {
  WordVectors empty;
  EXPECT_EQ(empty.Similarity("a", "b"), 0.0);
  std::unordered_map<std::string, std::vector<double>> table;
  table["a"] = {1.0, 0.0};
  WordVectors vectors(2, std::move(table));
  EXPECT_EQ(vectors.Similarity("a", "missing"), 0.0);
  EXPECT_EQ(vectors.Get("missing"), nullptr);
}

TEST(WordVectorsTest, MostSimilarExcludesSelfAndRanks) {
  std::unordered_map<std::string, std::vector<double>> table;
  table["query"] = {1.0, 0.0};
  table["close"] = {0.9, 0.1};
  table["far"] = {-1.0, 0.0};
  table["mid"] = {0.5, 0.5};
  WordVectors vectors(2, std::move(table));
  auto similar = vectors.MostSimilar("query", 2);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0].first, "close");
  EXPECT_EQ(similar[1].first, "mid");
  EXPECT_TRUE(vectors.MostSimilar("missing", 3).empty());
}

/// Property sweep over both training modes: training runs, covers the
/// vocabulary, and is deterministic.
class Word2VecModeSweep : public ::testing::TestWithParam<Word2VecMode> {};

TEST_P(Word2VecModeSweep, TrainsAndCoversVocabulary) {
  Word2VecOptions opts;
  opts.dimension = 12;
  opts.min_count = 1;
  opts.epochs = 2;
  opts.mode = GetParam();
  auto vectors = TrainWord2Vec(CommunityCorpus(5, 40), opts);
  ASSERT_TRUE(vectors.ok());
  EXPECT_EQ(vectors->size(), 8u);
  for (const char* w : {"apple", "cherry", "ocean", "navy"}) {
    EXPECT_TRUE(vectors->Contains(w)) << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, Word2VecModeSweep,
                         ::testing::Values(Word2VecMode::kSkipGram,
                                           Word2VecMode::kCbow));

}  // namespace
}  // namespace newsdiff::embed
