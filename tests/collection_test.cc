#include "store/collection.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace newsdiff::store {
namespace {

Value Doc(int64_t user, int64_t likes, const std::string& text) {
  return MakeObject({{"user_id", user}, {"likes", likes}, {"text", text}});
}

class CollectionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    coll_ = std::make_unique<Collection>("tweets");
    coll_->Insert(Doc(1, 50, "brexit vote"));
    coll_->Insert(Doc(1, 500, "trade war tariffs"));
    coll_->Insert(Doc(2, 1500, "huawei ban"));
    coll_->Insert(Doc(3, 10, "coffee morning"));
  }
  std::unique_ptr<Collection> coll_;
};

TEST_F(CollectionFixture, InsertAssignsSequentialIds) {
  EXPECT_EQ(coll_->size(), 4u);
  StatusOr<Value> doc = coll_->Get(0);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("_id")->AsInt(), 0);
  EXPECT_EQ(coll_->Get(3)->Find("_id")->AsInt(), 3);
}

TEST_F(CollectionFixture, InsertRejectsNonObjects) {
  EXPECT_FALSE(coll_->Insert(Value(5)).ok());
  EXPECT_FALSE(coll_->Insert(Value("str")).ok());
  EXPECT_FALSE(coll_->Insert(Value(Array{})).ok());
}

TEST_F(CollectionFixture, InsertOverridesCallerId) {
  Value doc = MakeObject({{"_id", int64_t{999}}, {"x", 1}});
  StatusOr<DocId> id = coll_->Insert(std::move(doc));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 4);
  EXPECT_EQ(coll_->Get(4)->Find("_id")->AsInt(), 4);
}

TEST_F(CollectionFixture, GetMissing) {
  EXPECT_FALSE(coll_->Get(99).ok());
  EXPECT_FALSE(coll_->Get(-1).ok());
}

TEST_F(CollectionFixture, FindEq) {
  auto docs = coll_->Find(Filter().Eq("user_id", Value(int64_t{1})));
  EXPECT_EQ(docs.size(), 2u);
}

TEST_F(CollectionFixture, FindNe) {
  auto docs = coll_->Find(Filter().Ne("user_id", Value(int64_t{1})));
  EXPECT_EQ(docs.size(), 2u);
}

TEST_F(CollectionFixture, NeMatchesMissingField) {
  coll_->Insert(MakeObject({{"other", 1}}));
  auto docs = coll_->Find(Filter().Ne("user_id", Value(int64_t{1})));
  EXPECT_EQ(docs.size(), 3u);
}

TEST_F(CollectionFixture, RangeOperators) {
  EXPECT_EQ(coll_->Count(Filter().Lt("likes", Value(int64_t{100}))), 2u);
  EXPECT_EQ(coll_->Count(Filter().Lte("likes", Value(int64_t{50}))), 2u);
  EXPECT_EQ(coll_->Count(Filter().Gt("likes", Value(int64_t{1000}))), 1u);
  EXPECT_EQ(coll_->Count(Filter().Gte("likes", Value(int64_t{500}))), 2u);
}

TEST_F(CollectionFixture, ConjunctionSemantics) {
  auto docs = coll_->Find(Filter()
                              .Eq("user_id", Value(int64_t{1}))
                              .Gt("likes", Value(int64_t{100})));
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].Find("likes")->AsInt(), 500);
}

TEST_F(CollectionFixture, ExistsAndContains) {
  EXPECT_EQ(coll_->Count(Filter().Exists("text")), 4u);
  EXPECT_EQ(coll_->Count(Filter().Exists("nope")), 0u);
  EXPECT_EQ(coll_->Count(Filter().Contains("text", "war")), 1u);
  EXPECT_EQ(coll_->Count(Filter().Contains("text", "e")), 4u);
  EXPECT_EQ(coll_->Count(Filter().Contains("likes", "5")), 0u);  // non-string
}

TEST_F(CollectionFixture, FindOne) {
  StatusOr<Value> doc =
      coll_->FindOne(Filter().Eq("user_id", Value(int64_t{2})));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("likes")->AsInt(), 1500);
  EXPECT_FALSE(coll_->FindOne(Filter().Eq("user_id", Value(int64_t{42}))).ok());
}

TEST_F(CollectionFixture, ForEachEarlyStop) {
  size_t seen = 0;
  coll_->ForEach(Filter(), [&](DocId, const Value&) {
    ++seen;
    return seen < 2;
  });
  EXPECT_EQ(seen, 2u);
}

TEST_F(CollectionFixture, UpdateSet) {
  size_t n = coll_->UpdateSet(Filter().Eq("user_id", Value(int64_t{1})),
                              "flag", Value(true));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(coll_->Count(Filter().Eq("flag", Value(true))), 2u);
}

TEST_F(CollectionFixture, RemoveAndSize) {
  size_t n = coll_->Remove(Filter().Lt("likes", Value(int64_t{100})));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(coll_->size(), 2u);
  // Removed ids are gone.
  EXPECT_FALSE(coll_->Get(0).ok());
  // Remaining docs still addressable.
  EXPECT_TRUE(coll_->Get(1).ok());
}

TEST_F(CollectionFixture, IndexedEqualityMatchesScan) {
  coll_->CreateIndex("user_id");
  EXPECT_TRUE(coll_->HasIndex("user_id"));
  auto docs = coll_->Find(Filter().Eq("user_id", Value(int64_t{1})));
  EXPECT_EQ(docs.size(), 2u);
  // Index stays correct across update and remove.
  coll_->UpdateSet(Filter().Eq("user_id", Value(int64_t{1})), "user_id",
                   Value(int64_t{9}));
  EXPECT_EQ(coll_->Count(Filter().Eq("user_id", Value(int64_t{1}))), 0u);
  EXPECT_EQ(coll_->Count(Filter().Eq("user_id", Value(int64_t{9}))), 2u);
  coll_->Remove(Filter().Eq("user_id", Value(int64_t{9})));
  EXPECT_EQ(coll_->Count(Filter().Eq("user_id", Value(int64_t{9}))), 0u);
}

TEST_F(CollectionFixture, IndexCreatedAfterInserts) {
  coll_->CreateIndex("likes");
  EXPECT_EQ(coll_->Count(Filter().Eq("likes", Value(int64_t{1500}))), 1u);
}

TEST_F(CollectionFixture, AllPreservesInsertionOrder) {
  auto docs = coll_->All();
  ASSERT_EQ(docs.size(), 4u);
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(docs[i].Find("_id")->AsInt(), static_cast<int64_t>(i));
  }
}

/// Property: for random data, indexed equality queries return exactly the
/// same documents as a full scan with the same filter.
class IndexEquivalenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexEquivalenceSweep, IndexedEqualsScan) {
  Rng rng(GetParam());
  Collection indexed("indexed");
  Collection scanned("scanned");
  indexed.CreateIndex("k");
  for (int i = 0; i < 300; ++i) {
    Value doc = MakeObject({{"k", static_cast<int64_t>(rng.NextBelow(20))},
                            {"v", static_cast<int64_t>(i)}});
    indexed.Insert(doc);
    scanned.Insert(doc);
  }
  // Mutate both identically.
  indexed.Remove(Filter().Eq("k", Value(int64_t{3})));
  scanned.Remove(Filter().Eq("k", Value(int64_t{3})));
  for (int64_t k = 0; k < 20; ++k) {
    auto a = indexed.Find(Filter().Eq("k", Value(k)));
    auto b = scanned.Find(Filter().Eq("k", Value(k)));
    ASSERT_EQ(a.size(), b.size()) << "k=" << k;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i].Find("v")->Equals(*b[i].Find("v")));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalenceSweep,
                         ::testing::Values(1ull, 7ull, 2024ull));

}  // namespace
}  // namespace newsdiff::store
