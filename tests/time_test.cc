#include "common/time.h"

#include <gtest/gtest.h>

namespace newsdiff {
namespace {

TEST(TimeTest, EpochFormats) {
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00:00");
}

TEST(TimeTest, KnownTimestamp) {
  // 2019-04-01 00:00:00 UTC.
  EXPECT_EQ(FormatTimestamp(1554076800), "2019-04-01 00:00:00");
}

TEST(TimeTest, ParseKnown) {
  EXPECT_EQ(ParseTimestamp("2019-04-01 00:00:00"), 1554076800);
  EXPECT_EQ(ParseTimestamp("1970-01-01 00:00:01"), 1);
}

TEST(TimeTest, ParseRejectsMalformed) {
  EXPECT_EQ(ParseTimestamp("not a date"), -1);
  EXPECT_EQ(ParseTimestamp("2019-13-01 00:00:00"), -1);
  EXPECT_EQ(ParseTimestamp("2019-01-32 00:00:00"), -1);
  EXPECT_EQ(ParseTimestamp("2019-01-01 24:00:00"), -1);
  EXPECT_EQ(ParseTimestamp(""), -1);
}

TEST(TimeTest, DayOfWeekKnownDates) {
  // 1970-01-01 was a Thursday (index 3, Monday = 0).
  EXPECT_EQ(DayOfWeek(0), 3);
  // 2019-04-01 was a Monday.
  EXPECT_EQ(DayOfWeek(1554076800), 0);
  // 2019-04-07 was a Sunday.
  EXPECT_EQ(DayOfWeek(1554076800 + 6 * kSecondsPerDay), 6);
}

TEST(TimeTest, DayOfWeekWrapsWeekly) {
  UnixSeconds t = 1554076800;
  EXPECT_EQ(DayOfWeek(t), DayOfWeek(t + 7 * kSecondsPerDay));
  EXPECT_EQ(DayOfWeek(t), DayOfWeek(t + 70 * kSecondsPerDay));
}

TEST(TimeTest, WallTimerAdvances) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

/// Property sweep: Format/Parse round-trips across a spread of timestamps
/// (leap years, month boundaries, end of year).
class TimestampRoundTrip : public ::testing::TestWithParam<UnixSeconds> {};

TEST_P(TimestampRoundTrip, FormatThenParseIsIdentity) {
  UnixSeconds t = GetParam();
  EXPECT_EQ(ParseTimestamp(FormatTimestamp(t)), t);
}

INSTANTIATE_TEST_SUITE_P(
    Timestamps, TimestampRoundTrip,
    ::testing::Values(0, 1, 86399, 86400, 951782400 /* 2000-02-29 */,
                      1077926399, 1554076800, 1577836799 /* 2019-12-31 */,
                      1582934400 /* 2020-02-29 */, 1609459200, 4102444800));

}  // namespace
}  // namespace newsdiff
