#include "datagen/feeds.h"

#include <set>

#include <gtest/gtest.h>

namespace newsdiff::datagen {
namespace {

World SmallWorld() {
  WorldOptions opts;
  opts.seed = 21;
  opts.num_users = 100;
  opts.num_articles = 250;
  opts.num_tweets = 700;
  opts.duration_days = 30;
  return GenerateWorld(opts);
}

TEST(NewsApiClientTest, ReturnsNewestFirstUpToLimit) {
  World world = SmallWorld();
  NewsApiClient client(world);
  UnixSeconds now = world.options.start_time + 30 * kSecondsPerDay;
  auto page = client.FetchLatest(now);
  ASSERT_LE(page.size(), NewsApiClient::kPageLimit);
  ASSERT_FALSE(page.empty());
  for (size_t i = 1; i < page.size(); ++i) {
    EXPECT_GE(page[i - 1].published, page[i].published);
  }
  EXPECT_LE(page[0].published, now);
}

TEST(NewsApiClientTest, TruncatesBodyToFirstParagraph) {
  World world = SmallWorld();
  NewsApiClient client(world);
  auto page =
      client.FetchLatest(world.options.start_time + 30 * kSecondsPerDay);
  ASSERT_FALSE(page.empty());
  ArticleScraper scraper(world);
  auto body = scraper.FetchBody(page[0].article_id);
  ASSERT_TRUE(body.ok());
  EXPECT_LT(page[0].first_paragraph.size(), body->size());
  EXPECT_EQ(body->substr(0, page[0].first_paragraph.size()),
            page[0].first_paragraph);
}

TEST(NewsApiClientTest, PaginationWalksBackwards) {
  World world = SmallWorld();
  NewsApiClient client(world);
  UnixSeconds now = world.options.start_time + 30 * kSecondsPerDay;
  auto first = client.FetchLatest(now);
  ASSERT_EQ(first.size(), NewsApiClient::kPageLimit);
  auto second = client.FetchLatest(now, first.back().published);
  ASSERT_FALSE(second.empty());
  EXPECT_LT(second.front().published, first.back().published);
  // No overlap between pages.
  std::set<int64_t> ids;
  for (const auto& h : first) ids.insert(h.article_id);
  for (const auto& h : second) EXPECT_EQ(ids.count(h.article_id), 0u);
}

TEST(ScraperTest, UnknownIdFails) {
  World world = SmallWorld();
  ArticleScraper scraper(world);
  EXPECT_FALSE(scraper.FetchBody(999999).ok());
}

TEST(TwitterClientTest, TimeRangeAndOrdering) {
  World world = SmallWorld();
  TwitterClient client(world);
  UnixSeconds t0 = world.options.start_time;
  auto page = client.Search({}, t0, t0 + 5 * kSecondsPerDay);
  ASSERT_FALSE(page.empty());
  for (size_t i = 1; i < page.size(); ++i) {
    EXPECT_LE(page[i - 1].created, page[i].created);
  }
  for (const auto& t : page) {
    EXPECT_GE(t.created, t0);
    EXPECT_LE(t.created, t0 + 5 * kSecondsPerDay);
  }
}

TEST(TwitterClientTest, KeywordFilter) {
  World world = SmallWorld();
  TwitterClient client(world);
  UnixSeconds t0 = world.options.start_time;
  auto page =
      client.Search({"tariff"}, t0, t0 + 30 * kSecondsPerDay);
  for (const auto& t : page) {
    EXPECT_NE(t.text.find("tariff"), std::string::npos);
  }
}

TEST(TwitterClientTest, FollowerMetadataJoined) {
  World world = SmallWorld();
  TwitterClient client(world);
  auto page = client.Search({}, world.options.start_time,
                            world.options.start_time + 30 * kSecondsPerDay);
  ASSERT_FALSE(page.empty());
  for (const auto& t : page) {
    EXPECT_EQ(t.author_followers,
              world.users[static_cast<size_t>(t.user_id)].followers);
  }
}

TEST(FeedCrawlerTest, IngestsEverythingExactlyOnce) {
  World world = SmallWorld();
  store::Database db;
  FeedCrawler crawler(world, db);
  UnixSeconds end = world.options.start_time + 31 * kSecondsPerDay;
  auto stats = crawler.CrawlUntil(end);
  EXPECT_TRUE(stats.status.ok());
  EXPECT_EQ(stats.articles, world.articles.size());
  EXPECT_EQ(stats.tweets, world.tweets.size());
  EXPECT_GT(stats.cycles, 300u);  // 30 days of 2-hour cycles

  ASSERT_NE(db.Get("news"), nullptr);
  ASSERT_NE(db.Get("tweets"), nullptr);
  EXPECT_EQ(db.Get("news")->size(), world.articles.size());
  EXPECT_EQ(db.Get("tweets")->size(), world.tweets.size());

  // No duplicates: every article id distinct.
  std::set<int64_t> ids;
  for (const store::Value& doc : db.Get("news")->All()) {
    EXPECT_TRUE(ids.insert(doc.Find("article_id")->AsInt()).second);
  }
}

TEST(FeedCrawlerTest, IncrementalCrawlsDoNotDuplicate) {
  World world = SmallWorld();
  store::Database db;
  FeedCrawler crawler(world, db);
  UnixSeconds t0 = world.options.start_time;
  auto first = crawler.CrawlUntil(t0 + 10 * kSecondsPerDay);
  auto second = crawler.CrawlUntil(t0 + 10 * kSecondsPerDay);  // no-op
  EXPECT_EQ(second.articles, 0u);
  EXPECT_EQ(second.tweets, 0u);
  auto third = crawler.CrawlUntil(t0 + 31 * kSecondsPerDay);
  EXPECT_EQ(first.articles + third.articles, world.articles.size());
  EXPECT_EQ(first.tweets + third.tweets, world.tweets.size());
  EXPECT_EQ(db.Get("tweets")->size(), world.tweets.size());
}

TEST(FeedCrawlerTest, CrawledStoreMatchesDirectLoad) {
  World world = SmallWorld();
  store::Database crawled;
  FeedCrawler crawler(world, crawled);
  crawler.CrawlUntil(world.options.start_time + 31 * kSecondsPerDay);

  store::Database direct;
  world.LoadInto(direct);

  // Same tweet set with identical engagement values.
  auto crawled_docs = crawled.Get("tweets")->All();
  auto direct_docs = direct.Get("tweets")->All();
  ASSERT_EQ(crawled_docs.size(), direct_docs.size());
  for (size_t i = 0; i < crawled_docs.size(); ++i) {
    EXPECT_TRUE(crawled_docs[i]
                    .Find("tweet_id")
                    ->Equals(*direct_docs[i].Find("tweet_id")));
    EXPECT_TRUE(
        crawled_docs[i].Find("likes")->Equals(*direct_docs[i].Find("likes")));
  }
}

}  // namespace
}  // namespace newsdiff::datagen
