#include "event/mabed.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace newsdiff::event {
namespace {

/// Builds a corpus with background chatter plus one planted burst of
/// `burst_word` (with companions) inside [burst_start, burst_end].
corpus::Corpus PlantedBurstCorpus(UnixSeconds start, UnixSeconds end,
                                  UnixSeconds burst_start,
                                  UnixSeconds burst_end,
                                  const std::string& burst_word,
                                  const std::vector<std::string>& companions,
                                  uint64_t seed) {
  Rng rng(seed);
  corpus::Corpus corp;
  const char* background[] = {"alpha", "beta",  "gamma", "delta",
                              "epsilon", "zeta", "eta",   "theta"};
  // Background documents spread over the whole window.
  for (int i = 0; i < 400; ++i) {
    std::vector<std::string> doc;
    for (int w = 0; w < 8; ++w) {
      doc.push_back(background[rng.NextBelow(8)]);
    }
    UnixSeconds t = start + static_cast<int64_t>(
                                rng.NextBelow(static_cast<uint64_t>(end - start)));
    corp.AddDocument(doc, t);
  }
  // Burst documents concentrated in the planted interval.
  for (int i = 0; i < 120; ++i) {
    std::vector<std::string> doc = {burst_word};
    for (const std::string& c : companions) {
      if (rng.Bernoulli(0.8)) doc.push_back(c);
    }
    for (int w = 0; w < 4; ++w) {
      doc.push_back(background[rng.NextBelow(8)]);
    }
    UnixSeconds t =
        burst_start + static_cast<int64_t>(rng.NextBelow(
                          static_cast<uint64_t>(burst_end - burst_start)));
    corp.AddDocument(doc, t);
  }
  return corp;
}

TEST(MabedTest, EmptyCorpusRejected) {
  corpus::Corpus corp;
  Mabed mabed{MabedOptions{}};
  EXPECT_FALSE(mabed.Detect(corp).ok());
}

TEST(MabedTest, DetectsPlantedBurst) {
  const UnixSeconds day = kSecondsPerDay;
  corpus::Corpus corp = PlantedBurstCorpus(
      0, 30 * day, 10 * day, 13 * day, "explosion",
      {"fire", "rescue", "downtown"}, 42);
  MabedOptions opts;
  opts.time_slice_seconds = 6 * kSecondsPerHour;
  opts.max_events = 5;
  opts.min_main_doc_freq = 5;
  opts.min_support = 10;
  Mabed mabed(opts);
  auto events = mabed.Detect(corp);
  ASSERT_TRUE(events.ok());
  ASSERT_FALSE(events->empty());
  const Event& top = (*events)[0];
  EXPECT_EQ(top.main_word, "explosion");
  // Interval covers (roughly) the planted window.
  EXPECT_LE(top.start_time, 11 * day);
  EXPECT_GE(top.end_time, 12 * day);
  EXPECT_GE(top.support, 50u);
  // Companions appear among related words.
  size_t companions_found = 0;
  for (const std::string& w : top.related_words) {
    if (w == "fire" || w == "rescue" || w == "downtown") ++companions_found;
  }
  EXPECT_GE(companions_found, 2u);
}

TEST(MabedTest, RelatedWeightsSortedAndBounded) {
  const UnixSeconds day = kSecondsPerDay;
  corpus::Corpus corp = PlantedBurstCorpus(
      0, 20 * day, 5 * day, 8 * day, "verdict", {"court", "judge"}, 7);
  MabedOptions opts;
  opts.time_slice_seconds = 6 * kSecondsPerHour;
  opts.max_events = 3;
  opts.min_main_doc_freq = 5;
  Mabed mabed(opts);
  auto events = mabed.Detect(corp);
  ASSERT_TRUE(events.ok());
  for (const Event& ev : *events) {
    for (size_t i = 0; i < ev.related_weights.size(); ++i) {
      EXPECT_GE(ev.related_weights[i], opts.min_related_weight);
      EXPECT_LE(ev.related_weights[i], 1.0);
      if (i > 0) EXPECT_LE(ev.related_weights[i], ev.related_weights[i - 1]);
    }
    EXPECT_LE(ev.related_words.size(), opts.max_related_words);
  }
}

TEST(MabedTest, MinSupportFiltersSmallEvents) {
  const UnixSeconds day = kSecondsPerDay;
  corpus::Corpus corp = PlantedBurstCorpus(
      0, 20 * day, 5 * day, 8 * day, "verdict", {"court"}, 8);
  MabedOptions opts;
  opts.time_slice_seconds = 6 * kSecondsPerHour;
  opts.min_main_doc_freq = 5;
  opts.min_support = 100000;  // impossible
  Mabed mabed(opts);
  auto events = mabed.Detect(corp);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

TEST(MabedTest, StopwordMainsFiltered) {
  Rng rng(11);
  corpus::Corpus corp;
  // "the" bursts, but is a stopword; "launch" bursts too.
  for (int i = 0; i < 200; ++i) {
    std::vector<std::string> doc = {"filler", "words"};
    UnixSeconds t = rng.NextBelow(20) * kSecondsPerDay;
    corp.AddDocument(doc, t);
  }
  for (int i = 0; i < 60; ++i) {
    corp.AddDocument({"the", "launch", "rocket"},
                     5 * kSecondsPerDay +
                         static_cast<int64_t>(rng.NextBelow(
                             static_cast<uint64_t>(kSecondsPerDay))));
  }
  MabedOptions opts;
  opts.time_slice_seconds = 6 * kSecondsPerHour;
  opts.min_main_doc_freq = 5;
  opts.min_support = 10;
  Mabed mabed(opts);
  auto events = mabed.Detect(corp);
  ASSERT_TRUE(events.ok());
  for (const Event& ev : *events) {
    EXPECT_NE(ev.main_word, "the");
  }
}

TEST(MabedTest, StatsPopulated) {
  const UnixSeconds day = kSecondsPerDay;
  corpus::Corpus corp = PlantedBurstCorpus(
      0, 20 * day, 5 * day, 8 * day, "verdict", {"court"}, 12);
  MabedOptions opts;
  opts.time_slice_seconds = 6 * kSecondsPerHour;
  opts.min_main_doc_freq = 5;
  Mabed mabed(opts);
  ASSERT_TRUE(mabed.Detect(corp).ok());
  EXPECT_GT(mabed.stats().candidate_events, 0u);
  EXPECT_GE(mabed.stats().partition_seconds, 0.0);
  EXPECT_GE(mabed.stats().detect_seconds, 0.0);
}

TEST(RelatedWordWeightTest, PerfectCorrelationIsOne) {
  std::vector<double> main = {1, 3, 2, 5, 4, 6};
  EXPECT_NEAR(RelatedWordWeight(main, main), 1.0, 1e-12);
}

TEST(RelatedWordWeightTest, PerfectAnticorrelationIsZero) {
  std::vector<double> main = {1, 3, 2, 5, 4, 6};
  std::vector<double> anti;
  for (double v : main) anti.push_back(10.0 - v);
  EXPECT_NEAR(RelatedWordWeight(main, anti), 0.0, 1e-12);
}

TEST(RelatedWordWeightTest, ScaleInvariant) {
  std::vector<double> a = {1, 4, 2, 8, 3};
  std::vector<double> b = {2, 8, 4, 16, 6};
  EXPECT_NEAR(RelatedWordWeight(a, b), 1.0, 1e-12);
}

TEST(RelatedWordWeightTest, DegenerateSeriesYieldZero) {
  std::vector<double> flat = {2, 2, 2, 2};
  std::vector<double> varying = {1, 2, 3, 4};
  EXPECT_EQ(RelatedWordWeight(flat, varying), 0.0);
  EXPECT_EQ(RelatedWordWeight(varying, flat), 0.0);
}

TEST(RelatedWordWeightTest, ShortOrMismatchedSeries) {
  EXPECT_EQ(RelatedWordWeight({1, 2}, {1, 2}), 0.0);
  EXPECT_EQ(RelatedWordWeight({1, 2, 3}, {1, 2}), 0.0);
  EXPECT_EQ(RelatedWordWeight({}, {}), 0.0);
}

TEST(RelatedWordWeightTest, WeightInUnitInterval) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a(10), b(10);
    for (int i = 0; i < 10; ++i) {
      a[i] = rng.Uniform(0, 20);
      b[i] = rng.Uniform(0, 20);
    }
    double w = RelatedWordWeight(a, b);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(DocumentBelongsToEventTest, RuleComponents) {
  corpus::Corpus corp;
  size_t d = corp.AddDocument({"quake", "rescue", "city", "filler"},
                              /*timestamp=*/1000);
  const corpus::Document& doc = corp.doc(d);

  Event ev;
  ev.main_term = corp.vocabulary().Get("quake");
  ev.main_word = "quake";
  ev.start_time = 500;
  ev.end_time = 1500;
  ev.related_terms = {corp.vocabulary().Get("rescue"),
                      corp.vocabulary().Get("city"),
                      corp.vocabulary().GetOrAdd("absent1"),
                      corp.vocabulary().GetOrAdd("absent2"),
                      corp.vocabulary().GetOrAdd("absent3")};

  // In interval, has main word, 2/5 = 40% >= 20% related words.
  EXPECT_TRUE(Mabed::DocumentBelongsToEvent(doc, ev, 0.2));
  // Too-high related requirement fails.
  EXPECT_FALSE(Mabed::DocumentBelongsToEvent(doc, ev, 0.9));

  // Outside the interval.
  Event late = ev;
  late.start_time = 2000;
  late.end_time = 3000;
  EXPECT_FALSE(Mabed::DocumentBelongsToEvent(doc, late, 0.2));

  // Missing main word.
  Event other = ev;
  other.main_term = corp.vocabulary().GetOrAdd("different");
  EXPECT_FALSE(Mabed::DocumentBelongsToEvent(doc, other, 0.2));

  // No related words: main word alone suffices.
  Event bare = ev;
  bare.related_terms.clear();
  EXPECT_TRUE(Mabed::DocumentBelongsToEvent(doc, bare, 0.2));
}

/// Property sweep over slice widths: the planted burst is found regardless
/// of slicing granularity.
class MabedSliceWidthSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(MabedSliceWidthSweep, PlantedBurstSurvivesSlicing) {
  const UnixSeconds day = kSecondsPerDay;
  corpus::Corpus corp = PlantedBurstCorpus(
      0, 30 * day, 12 * day, 15 * day, "eruption", {"ash", "lava"}, 99);
  MabedOptions opts;
  opts.time_slice_seconds = GetParam();
  opts.max_events = 5;
  opts.min_main_doc_freq = 5;
  opts.min_support = 10;
  Mabed mabed(opts);
  auto events = mabed.Detect(corp);
  ASSERT_TRUE(events.ok());
  bool found = false;
  for (const Event& ev : *events) {
    if (ev.main_word == "eruption") found = true;
  }
  EXPECT_TRUE(found);
}

INSTANTIATE_TEST_SUITE_P(SliceWidths, MabedSliceWidthSweep,
                         ::testing::Values(30 * kSecondsPerMinute,
                                           60 * kSecondsPerMinute,
                                           6 * kSecondsPerHour,
                                           kSecondsPerDay));

}  // namespace
}  // namespace newsdiff::event
