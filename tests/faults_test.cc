// Robustness tests for the fault-injected feeds and the hardened crawler:
// under seeded fault injection the crawl must converge to exactly the
// fault-free store contents, survive a mid-cycle kill-and-restart via its
// durable cursors, and degrade gracefully on permanent scrape failures.
#include "datagen/faults.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/collection.h"
#include "datagen/feeds.h"
#include "datagen/world.h"
#include "store/json.h"

namespace newsdiff::datagen {
namespace {

World SmallWorld() {
  WorldOptions opts;
  opts.seed = 21;
  opts.num_users = 100;
  opts.num_articles = 250;
  opts.num_tweets = 700;
  opts.duration_days = 30;
  return GenerateWorld(opts);
}

/// Fault mix with >= 10% transient-failure rate plus payload-level chaos.
FaultOptions ChaosOptions(uint64_t seed) {
  FaultOptions f;
  f.seed = seed;
  f.transient_failure_rate = 0.08;
  f.rate_limit_rate = 0.04;
  f.timeout_rate = 0.03;
  f.corrupt_body_rate = 0.06;
  f.duplicate_page_rate = 0.10;
  f.shuffle_page_rate = 0.10;
  return f;
}

CrawlerOptions FastCrawlerOptions() {
  CrawlerOptions o;
  o.retry.max_attempts = 8;
  return o;
}

/// Serialised contents of a collection, including insertion order and
/// "_id"s — equal strings mean byte-identical stores.
std::string Fingerprint(store::Database& db, const std::string& name) {
  store::Collection* coll = db.Get(name);
  if (coll == nullptr) return "<missing>";
  std::string out;
  for (const store::Value& doc : coll->All()) {
    out += store::ToJson(doc);
    out += '\n';
  }
  return out;
}

/// Crawls with fault-injected feeds, calling CrawlUntil repeatedly until it
/// reports a completed (OK) crawl; returns the accumulated stats.
FeedCrawler::CrawlStats CrawlToCompletion(FeedCrawler& crawler,
                                          UnixSeconds end) {
  FeedCrawler::CrawlStats total;
  for (int round = 0; round < 50; ++round) {
    FeedCrawler::CrawlStats s = crawler.CrawlUntil(end);
    total.articles += s.articles;
    total.tweets += s.tweets;
    total.cycles += s.cycles;
    total.retries += s.retries;
    total.transient_failures += s.transient_failures;
    total.rate_limited += s.rate_limited;
    total.timeouts += s.timeouts;
    total.breaker_trips += s.breaker_trips;
    total.corrupt_payloads += s.corrupt_payloads;
    total.duplicate_pages += s.duplicate_pages;
    total.degraded_articles += s.degraded_articles;
    total.dead_lettered += s.dead_lettered;
    total.status = s.status;
    if (s.status.ok()) return total;
  }
  ADD_FAILURE() << "crawl did not converge: " << total.status.ToString();
  return total;
}

TEST(FaultInjectorTest, SameSeedSameFaultSequence) {
  FaultInjector a(ChaosOptions(99));
  FaultInjector b(ChaosOptions(99));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.NextFault().code(), b.NextFault().code());
  }
  EXPECT_EQ(a.counters().unavailable, b.counters().unavailable);
  EXPECT_EQ(a.counters().rate_limited, b.counters().rate_limited);
  EXPECT_EQ(a.counters().timeouts, b.counters().timeouts);
}

TEST(FaultInjectorTest, PermanentVerdictIsStablePerId) {
  FaultOptions opts;
  opts.seed = 5;
  opts.permanent_body_failure_rate = 0.3;
  FaultInjector a(opts);
  FaultInjector b(opts);
  size_t failing = 0;
  for (int64_t id = 0; id < 200; ++id) {
    EXPECT_EQ(a.PermanentlyFails(id), b.PermanentlyFails(id));
    if (a.PermanentlyFails(id)) ++failing;
  }
  EXPECT_GT(failing, 30u);  // roughly 30% of 200
  EXPECT_LT(failing, 90u);
}

TEST(FaultInjectorTest, CorruptedBodiesAlwaysFailTheIntegrityCheck) {
  World world = SmallWorld();
  DirectBodyFetcher direct(world);
  FaultInjector injector(ChaosOptions(3));
  for (const NewsArticle& a : world.articles) {
    StatusOr<ScrapedBody> body = direct.FetchBody(a.id);
    ASSERT_TRUE(body.ok());
    EXPECT_TRUE(body->Valid());
    ScrapedBody corrupted = *body;
    corrupted.text = injector.CorruptPayload(corrupted.text);
    EXPECT_FALSE(corrupted.Valid()) << "article " << a.id;
  }
}

TEST(FaultyCrawlTest, ConvergesToFaultFreeStoreContents) {
  World world = SmallWorld();
  UnixSeconds end = world.options.start_time + 31 * kSecondsPerDay;

  store::Database clean_db;
  FeedCrawler clean(world, clean_db);
  auto clean_stats = clean.CrawlUntil(end);
  ASSERT_TRUE(clean_stats.status.ok());

  store::Database faulty_db;
  ManualClock clock;
  FaultInjector injector(ChaosOptions(17), &clock);
  DirectNewsFeed direct_news(world);
  DirectBodyFetcher direct_scraper(world);
  DirectTweetFeed direct_twitter(world);
  FaultyNewsFeed news(direct_news, injector);
  FaultyBodyFetcher scraper(direct_scraper, injector);
  FaultyTweetFeed twitter(direct_twitter, injector);
  FeedCrawler crawler(world, faulty_db, news, scraper, twitter, clock,
                      FastCrawlerOptions());
  auto stats = CrawlToCompletion(crawler, end);
  ASSERT_TRUE(stats.status.ok()) << stats.status.ToString();

  // The fault injector actually did inject (and the crawler retried).
  EXPECT_GT(stats.transient_failures + stats.rate_limited + stats.timeouts,
            0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(injector.counters().ops, 0u);

  // Store contents converge to the fault-free crawl: same documents, same
  // order, no duplicates, full bodies everywhere.
  EXPECT_EQ(stats.articles, world.articles.size());
  EXPECT_EQ(stats.tweets, world.tweets.size());
  EXPECT_EQ(Fingerprint(faulty_db, "news"), Fingerprint(clean_db, "news"));
  EXPECT_EQ(Fingerprint(faulty_db, "tweets"),
            Fingerprint(clean_db, "tweets"));
  EXPECT_EQ(Fingerprint(faulty_db, "users"), Fingerprint(clean_db, "users"));

  std::set<int64_t> ids;
  for (const store::Value& doc : faulty_db.Get("news")->All()) {
    EXPECT_TRUE(ids.insert(doc.Find("article_id")->AsInt()).second);
  }
}

TEST(FaultyCrawlTest, HardOutageAbortsGracefullyThenResumes) {
  World world = SmallWorld();
  UnixSeconds end = world.options.start_time + 31 * kSecondsPerDay;

  store::Database clean_db;
  FeedCrawler clean(world, clean_db);
  clean.CrawlUntil(end);

  store::Database db;
  ManualClock clock;
  DirectNewsFeed direct_news(world);
  DirectBodyFetcher direct_scraper(world);
  DirectTweetFeed direct_twitter(world);

  // Phase 1: the upstream dies for good after 120 calls, mid-cycle.
  FaultOptions outage;
  outage.seed = 4;
  outage.fail_all_after_ops = 120;
  FaultInjector dying(outage, &clock);
  FaultyNewsFeed news1(direct_news, dying);
  FaultyBodyFetcher scraper1(direct_scraper, dying);
  FaultyTweetFeed twitter1(direct_twitter, dying);
  FeedCrawler::CrawlStats first;
  {
    FeedCrawler crawler(world, db, news1, scraper1, twitter1, clock,
                        FastCrawlerOptions());
    first = crawler.CrawlUntil(end);
  }  // crawler destroyed: the "kill"
  EXPECT_FALSE(first.status.ok());
  EXPECT_TRUE(IsRetryable(first.status.code()));
  EXPECT_GE(first.breaker_trips, 1u);
  EXPECT_LT(first.articles, world.articles.size());

  // Phase 2: a fresh crawler over the same store resumes from the durable
  // cursors once the upstream is healthy again.
  FeedCrawler resumed(world, db);
  auto second = resumed.CrawlUntil(end);
  ASSERT_TRUE(second.status.ok());

  // No re-ingestion: the two crawls partition the corpus exactly.
  EXPECT_EQ(first.articles + second.articles, world.articles.size());
  EXPECT_EQ(first.tweets + second.tweets, world.tweets.size());
  EXPECT_EQ(Fingerprint(db, "news"), Fingerprint(clean_db, "news"));
  EXPECT_EQ(Fingerprint(db, "tweets"), Fingerprint(clean_db, "tweets"));
  EXPECT_EQ(Fingerprint(db, "users"), Fingerprint(clean_db, "users"));
}

TEST(FaultyCrawlTest, MidCrawlRestartIsByteIdenticalUnderChaos) {
  World world = SmallWorld();
  UnixSeconds mid = world.options.start_time + 13 * kSecondsPerDay + 4321;
  UnixSeconds end = world.options.start_time + 31 * kSecondsPerDay;

  // Uninterrupted chaotic crawl.
  store::Database one_shot_db;
  {
    ManualClock clock;
    FaultInjector injector(ChaosOptions(23), &clock);
    DirectNewsFeed dn(world);
    DirectBodyFetcher ds(world);
    DirectTweetFeed dt(world);
    FaultyNewsFeed news(dn, injector);
    FaultyBodyFetcher scraper(ds, injector);
    FaultyTweetFeed twitter(dt, injector);
    FeedCrawler crawler(world, one_shot_db, news, scraper, twitter, clock,
                        FastCrawlerOptions());
    auto stats = CrawlToCompletion(crawler, end);
    ASSERT_TRUE(stats.status.ok());
  }

  // Same chaos, but killed at `mid` and restarted with a brand-new crawler
  // (fresh injector state, fresh breakers) over the same store.
  store::Database restarted_db;
  {
    ManualClock clock;
    FaultInjector injector(ChaosOptions(29), &clock);
    DirectNewsFeed dn(world);
    DirectBodyFetcher ds(world);
    DirectTweetFeed dt(world);
    FaultyNewsFeed news(dn, injector);
    FaultyBodyFetcher scraper(ds, injector);
    FaultyTweetFeed twitter(dt, injector);
    FeedCrawler crawler(world, restarted_db, news, scraper, twitter, clock,
                        FastCrawlerOptions());
    auto stats = CrawlToCompletion(crawler, mid);
    ASSERT_TRUE(stats.status.ok());
  }
  {
    ManualClock clock;
    FaultInjector injector(ChaosOptions(31), &clock);
    DirectNewsFeed dn(world);
    DirectBodyFetcher ds(world);
    DirectTweetFeed dt(world);
    FaultyNewsFeed news(dn, injector);
    FaultyBodyFetcher scraper(ds, injector);
    FaultyTweetFeed twitter(dt, injector);
    FeedCrawler crawler(world, restarted_db, news, scraper, twitter, clock,
                        FastCrawlerOptions());
    auto stats = CrawlToCompletion(crawler, end);
    ASSERT_TRUE(stats.status.ok());
  }

  EXPECT_EQ(Fingerprint(restarted_db, "news"),
            Fingerprint(one_shot_db, "news"));
  EXPECT_EQ(Fingerprint(restarted_db, "tweets"),
            Fingerprint(one_shot_db, "tweets"));
  EXPECT_EQ(Fingerprint(restarted_db, "users"),
            Fingerprint(one_shot_db, "users"));
}

TEST(DeadLetterTest, PermanentScrapeFailuresDegradeGracefully) {
  World world = SmallWorld();
  UnixSeconds end = world.options.start_time + 31 * kSecondsPerDay;

  store::Database db;
  ManualClock clock;
  FaultOptions opts;
  opts.seed = 11;
  opts.permanent_body_failure_rate = 0.2;
  FaultInjector injector(opts, &clock);
  DirectNewsFeed dn(world);
  DirectBodyFetcher ds(world);
  DirectTweetFeed dt(world);
  FaultyNewsFeed news(dn, injector);
  FaultyBodyFetcher scraper(ds, injector);
  FaultyTweetFeed twitter(dt, injector);
  FeedCrawler crawler(world, db, news, scraper, twitter, clock,
                      FastCrawlerOptions());
  auto stats = CrawlToCompletion(crawler, end);
  ASSERT_TRUE(stats.status.ok());

  // Nothing is dropped: every article lands, some degraded.
  EXPECT_EQ(db.Get("news")->size(), world.articles.size());
  EXPECT_GT(stats.degraded_articles, 0u);
  EXPECT_EQ(stats.degraded_articles, stats.dead_lettered);

  // The dead-letter collection names exactly the degraded articles.
  store::Collection* dead = db.Get(FeedCrawler::kDeadLetterCollection);
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->size(), stats.dead_lettered);
  std::set<int64_t> dead_ids;
  for (const store::Value& doc : dead->All()) {
    dead_ids.insert(doc.Find("article_id")->AsInt());
    EXPECT_EQ(doc.Find("code")->AsString(), "NotFound");
  }

  // Degraded docs carry the flag and only the first paragraph as body.
  size_t degraded_docs = 0;
  for (const store::Value& doc : db.Get("news")->All()) {
    const store::Value* flag = doc.Find("degraded");
    int64_t id = doc.Find("article_id")->AsInt();
    if (flag != nullptr && flag->bool_value()) {
      ++degraded_docs;
      EXPECT_TRUE(dead_ids.count(id));
      EXPECT_TRUE(injector.PermanentlyFails(id));
      // The fallback body is a strict prefix of the real article body.
      for (const NewsArticle& a : world.articles) {
        if (a.id != id) continue;
        const std::string body = doc.Find("body")->AsString();
        EXPECT_LT(body.size(), a.body.size());
        EXPECT_EQ(a.body.substr(0, body.size()), body);
      }
    } else {
      EXPECT_FALSE(dead_ids.count(id));
    }
  }
  EXPECT_EQ(degraded_docs, stats.degraded_articles);

  // And the typed loader surfaces the flag to the pipeline.
  auto records = core::LoadNews(db);
  ASSERT_TRUE(records.ok());
  size_t degraded_records = 0;
  for (const core::NewsRecord& rec : *records) {
    if (rec.degraded) ++degraded_records;
  }
  EXPECT_EQ(degraded_records, stats.degraded_articles);
}

TEST(FaultyCrawlTest, DuplicateAndShuffledPagesAreHandled) {
  // A dense world: enough volume per 2-hour cycle that both feeds serve
  // full pages, which is the precondition for injected duplicate delivery.
  WorldOptions wopts;
  wopts.seed = 7;
  wopts.num_users = 100;
  wopts.num_articles = 3000;
  wopts.num_tweets = 6000;
  wopts.duration_days = 2;
  World world = GenerateWorld(wopts);
  UnixSeconds end = world.options.start_time + 3 * kSecondsPerDay;

  store::Database clean_db;
  FeedCrawler clean(world, clean_db);
  clean.CrawlUntil(end);

  store::Database db;
  ManualClock clock;
  FaultOptions fopts;
  fopts.seed = 13;
  fopts.duplicate_page_rate = 0.5;
  fopts.shuffle_page_rate = 0.5;
  FaultInjector injector(fopts, &clock);
  DirectNewsFeed dn(world);
  DirectBodyFetcher ds(world);
  DirectTweetFeed dt(world);
  FaultyNewsFeed news(dn, injector);
  FaultyBodyFetcher scraper(ds, injector);
  FaultyTweetFeed twitter(dt, injector);
  FeedCrawler crawler(world, db, news, scraper, twitter, clock,
                      FastCrawlerOptions());
  auto stats = CrawlToCompletion(crawler, end);
  ASSERT_TRUE(stats.status.ok());

  // Duplicates were actually served, detected, and discarded; reordered
  // pages were re-sorted before ingestion — the store is still exact.
  EXPECT_GT(injector.counters().duplicated, 0u);
  EXPECT_GT(injector.counters().shuffled, 0u);
  EXPECT_GT(stats.duplicate_pages, 0u);
  EXPECT_EQ(Fingerprint(db, "news"), Fingerprint(clean_db, "news"));
  EXPECT_EQ(Fingerprint(db, "tweets"), Fingerprint(clean_db, "tweets"));
}

TEST(FaultyCrawlTest, CleanCrawlPersistsDurableCursorState) {
  World world = SmallWorld();
  store::Database db;
  FeedCrawler crawler(world, db);
  auto stats =
      crawler.CrawlUntil(world.options.start_time + 5 * kSecondsPerDay);
  EXPECT_TRUE(stats.status.ok());
  store::Collection* state = db.Get(FeedCrawler::kStateCollection);
  ASSERT_NE(state, nullptr);
  auto doc = state->FindOne(
      store::Filter().Eq("key", store::Value("crawler")));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("cursor")->AsInt(),
            world.options.start_time + 5 * kSecondsPerDay);
}

}  // namespace
}  // namespace newsdiff::datagen
