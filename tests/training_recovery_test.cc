// Self-healing training: divergence rollback with learning-rate backoff,
// checksummed atomic training checkpoints, and deterministic resume that
// reproduces an uninterrupted run bit-for-bit.
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "common/file_io.h"
#include "datagen/faults.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/serialize.h"

namespace newsdiff::nn {
namespace {

namespace fs = std::filesystem;

void MakeBlobs(size_t per_class, size_t classes, size_t dim, uint64_t seed,
               la::Matrix* x, std::vector<int>* y) {
  Rng rng(seed);
  x->Resize(per_class * classes, dim);
  y->assign(per_class * classes, 0);
  size_t row = 0;
  for (size_t c = 0; c < classes; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      double* out = x->RowPtr(row);
      for (size_t d = 0; d < dim; ++d) {
        double center = (d % classes == c) ? 3.0 : 0.0;
        out[d] = rng.Gaussian(center, 0.5);
      }
      (*y)[row] = static_cast<int>(c);
      ++row;
    }
  }
}

Model MakeModel(uint64_t seed = 5) {
  Rng rng(seed);
  Model m(4);
  m.Add(std::make_unique<Dense>(4, 8, rng));
  m.Add(std::make_unique<Activation>(ActivationKind::kRelu));
  m.Add(std::make_unique<Dense>(8, 2, rng));
  return m;
}

std::vector<double> FlattenParams(Model& m) {
  std::vector<double> out;
  for (const Param& p : m.Parameters()) {
    out.insert(out.end(), p.value->data().begin(), p.value->data().end());
  }
  return out;
}

bool AllFinite(Model& m) {
  for (const Param& p : m.Parameters()) {
    for (double v : p.value->data()) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

class TrainingRecoveryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_training_recovery_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    MakeBlobs(40, 2, 4, 21, &x_, &y_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string ckpt() const { return (dir_ / "train.ckpt").string(); }

  FitOptions BaseFit() const {
    FitOptions fit;
    fit.epochs = 6;
    fit.batch_size = 16;
    fit.seed = 77;
    fit.early_stopping.enabled = false;
    fit.recovery.enabled = true;
    return fit;
  }

  fs::path dir_;
  la::Matrix x_;
  std::vector<int> y_;
};

TEST_F(TrainingRecoveryFixture, InjectedNanEpochRolledBackAndHealed) {
  Model model = MakeModel();
  Sgd sgd({0.1, 0.0});
  FitOptions fit = BaseFit();
  bool injected = false;
  fit.recovery.corrupt_epoch_hook = [&](size_t epoch) {
    if (epoch == 2 && !injected) {
      injected = true;
      return true;
    }
    return false;
  };
  StatusOr<FitHistory> h = model.Fit(x_, y_, sgd, fit);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_TRUE(injected);
  EXPECT_EQ(h->rollbacks, 1u);
  EXPECT_DOUBLE_EQ(h->final_lr_scale, 0.5);
  EXPECT_EQ(h->epochs_run, fit.epochs);
  for (double loss : h->train_loss) EXPECT_TRUE(std::isfinite(loss));
  EXPECT_TRUE(AllFinite(model))
      << "NaN poisoning leaked into the final weights";
}

TEST_F(TrainingRecoveryFixture, ExplodingLossBackedOffUntilTrainable) {
  Model model = MakeModel();
  // Absurd step size with momentum and no clipping: the first attempts blow
  // the loss past the explosion threshold (or to inf outright) until the
  // backoff has halved the rate into finite territory.
  Sgd sgd({1e6, 0.9});
  FitOptions fit = BaseFit();
  fit.clip_norm = 0.0;
  fit.recovery.explode_factor = 2.0;
  fit.recovery.max_rollbacks = 40;
  StatusOr<FitHistory> h = model.Fit(x_, y_, sgd, fit);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_GT(h->rollbacks, 0u);
  EXPECT_LT(h->final_lr_scale, 1.0);
  EXPECT_EQ(h->epochs_run, fit.epochs);
  ASSERT_FALSE(h->train_loss.empty());
  for (double loss : h->train_loss) EXPECT_TRUE(std::isfinite(loss));
  EXPECT_TRUE(AllFinite(model));
}

TEST_F(TrainingRecoveryFixture, UnhealableDivergenceGivesUpWithError) {
  Model model = MakeModel();
  Sgd sgd({0.1, 0.0});
  FitOptions fit = BaseFit();
  fit.recovery.max_rollbacks = 3;
  fit.recovery.corrupt_epoch_hook = [](size_t) { return true; };  // always
  StatusOr<FitHistory> h = model.Fit(x_, y_, sgd, fit);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kInternal);
}

TEST_F(TrainingRecoveryFixture, ResumeReproducesUninterruptedRunExactly) {
  FitOptions fit = BaseFit();
  fit.epochs = 8;

  // Uninterrupted reference run.
  Model reference = MakeModel();
  Adam ref_opt(AdamOptions{});
  StatusOr<FitHistory> ref = reference.Fit(x_, y_, ref_opt, fit);
  ASSERT_TRUE(ref.ok());

  // Interrupted run: 4 epochs, checkpointing each one, then the process
  // "dies" (the Model object is discarded).
  {
    Model first_half = MakeModel();
    Adam opt(AdamOptions{});
    FitOptions half = fit;
    half.epochs = 4;
    half.recovery.checkpoint_path = ckpt();
    StatusOr<FitHistory> h = first_half.Fit(x_, y_, opt, half);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->checkpoints_written, 4u);
  }

  // Restarted process: fresh model + fresh optimizer at the original
  // learning rate, resuming from the checkpoint.
  Model resumed = MakeModel();
  Adam res_opt(AdamOptions{});
  FitOptions resume = fit;
  resume.recovery.checkpoint_path = ckpt();
  resume.recovery.resume = true;
  StatusOr<FitHistory> h = resumed.Fit(x_, y_, res_opt, resume);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->resumed_from_epoch, 4u);
  EXPECT_EQ(h->epochs_run, 8u);

  std::vector<double> want = FlattenParams(reference);
  std::vector<double> got = FlattenParams(resumed);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got[i]) << "weight " << i << " differs after resume";
  }
}

TEST_F(TrainingRecoveryFixture, CheckpointEveryNWritesExpectedCount) {
  Model model = MakeModel();
  Sgd sgd({0.1, 0.0});
  FitOptions fit = BaseFit();
  fit.epochs = 5;
  fit.recovery.checkpoint_path = ckpt();
  fit.recovery.checkpoint_every = 2;
  StatusOr<FitHistory> h = model.Fit(x_, y_, sgd, fit);
  ASSERT_TRUE(h.ok());
  // Epochs 2 and 4, plus the final epoch regardless of cadence.
  EXPECT_EQ(h->checkpoints_written, 3u);
  EXPECT_TRUE(fs::exists(ckpt()));
  EXPECT_FALSE(fs::exists(ckpt() + ".tmp")) << "temp file leaked";
}

TEST_F(TrainingRecoveryFixture, DamagedCheckpointIgnoredTrainsFromScratch) {
  {
    Model model = MakeModel();
    Sgd sgd({0.1, 0.0});
    FitOptions fit = BaseFit();
    fit.recovery.checkpoint_path = ckpt();
    ASSERT_TRUE(model.Fit(x_, y_, sgd, fit).ok());
  }
  // Truncate the checkpoint: the CRC trailer must reject it.
  std::string bytes;
  {
    std::ifstream in(ckpt(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(ckpt(), std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 2);
  }

  Model model = MakeModel();
  Sgd sgd({0.1, 0.0});
  FitOptions fit = BaseFit();
  fit.recovery.checkpoint_path = ckpt();
  fit.recovery.resume = true;
  StatusOr<FitHistory> h = model.Fit(x_, y_, sgd, fit);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->resumed_from_epoch, 0u) << "damaged checkpoint was trusted";
  EXPECT_EQ(h->epochs_run, fit.epochs);
}

TEST_F(TrainingRecoveryFixture, TruncatedOrFlippedWeightsFileRejected) {
  const std::string path = (dir_ / "weights.txt").string();
  Model model = MakeModel();
  ASSERT_TRUE(SaveWeights(model, path).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }

  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() - bytes.size() / 3);
  }
  Model reload1 = MakeModel();
  Status truncated = LoadWeights(reload1, path);
  EXPECT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.code(), StatusCode::kParseError);

  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x08;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << flipped;
  }
  Model reload2 = MakeModel();
  Status damaged = LoadWeights(reload2, path);
  EXPECT_FALSE(damaged.ok());
  EXPECT_NE(damaged.message().find("checksum"), std::string::npos)
      << damaged.ToString();

  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  Model reload3 = MakeModel();
  EXPECT_TRUE(LoadWeights(reload3, path).ok());
}

TEST_F(TrainingRecoveryFixture, SaveWeightsRenameFailureLeavesOldFileIntact) {
  const std::string path = (dir_ / "weights.txt").string();
  Model original = MakeModel(5);
  ASSERT_TRUE(SaveWeights(original, path).ok());
  std::vector<double> want = FlattenParams(original);

  Model replacement = MakeModel(99);
  datagen::StorageFaultOptions fopts;
  fopts.rename_failure_rate = 1.0;
  datagen::FaultyFileIo faulty(DefaultFileIo(), fopts);
  EXPECT_FALSE(SaveWeights(replacement, path, &faulty).ok());

  // The interrupted save never touched the committed file.
  Model reloaded = MakeModel(5);
  ASSERT_TRUE(LoadWeights(reloaded, path).ok());
  std::vector<double> got = FlattenParams(reloaded);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(want[i], got[i]);
}

}  // namespace
}  // namespace newsdiff::nn
