#include "core/report.h"

#include <gtest/gtest.h>

#include "store/json.h"

namespace newsdiff::core {
namespace {

PipelineResult SmallResult() {
  PipelineResult r;
  r.news.resize(3);
  r.tweets.resize(5);

  topic::Topic t;
  t.id = 0;
  t.keywords = {"brexit", "vote"};
  t.weights = {0.9, 0.4};
  r.topics.push_back(t);

  event::Event ne;
  ne.main_word = "election";
  ne.related_words = {"vote"};
  ne.related_weights = {0.8};
  ne.start_time = 1554076800;
  ne.end_time = 1554163200;
  ne.support = 12;
  r.news_events.push_back(ne);

  event::Event te;
  te.main_word = "brexit";
  te.related_words = {"leave"};
  te.related_weights = {0.7};
  te.start_time = 1554080000;
  te.end_time = 1554170000;
  r.twitter_events.push_back(te);

  r.trending.push_back({0, 0, 0.85});
  r.correlations.push_back({0, 0, 0.7});
  r.topic_seconds = 1.5;
  return r;
}

TEST(ReportTest, TopLevelCounts) {
  store::Value report = BuildReport(SmallResult());
  EXPECT_EQ(report.Find("articles")->AsInt(), 3);
  EXPECT_EQ(report.Find("tweets")->AsInt(), 5);
}

TEST(ReportTest, TopicsRendered) {
  store::Value report = BuildReport(SmallResult());
  const store::Value* topics = report.Find("topics");
  ASSERT_NE(topics, nullptr);
  ASSERT_EQ(topics->array().size(), 1u);
  const store::Value& topic = topics->array()[0];
  EXPECT_EQ(topic.Find("keywords")->array()[0].AsString(), "brexit");
}

TEST(ReportTest, EventsCarryFormattedTimes) {
  store::Value report = BuildReport(SmallResult());
  const store::Value& ev = report.Find("news_events")->array()[0];
  EXPECT_EQ(ev.Find("label")->AsString(), "election");
  EXPECT_EQ(ev.Find("start")->AsString(), "2019-04-01 00:00:00");
  EXPECT_EQ(ev.Find("support")->AsInt(), 12);
}

TEST(ReportTest, TrendingLinksEchoes) {
  store::Value report = BuildReport(SmallResult());
  const store::Value& trending =
      report.Find("trending_news_topics")->array()[0];
  EXPECT_EQ(trending.Find("news_event")->AsString(), "election");
  const store::Value* echoes = trending.Find("twitter_echoes");
  ASSERT_NE(echoes, nullptr);
  ASSERT_EQ(echoes->array().size(), 1u);
  EXPECT_EQ(echoes->array()[0].Find("twitter_event")->AsString(), "brexit");
  EXPECT_DOUBLE_EQ(echoes->array()[0].Find("similarity")->AsDouble(), 0.7);
}

TEST(ReportTest, TimingsIncluded) {
  store::Value report = BuildReport(SmallResult());
  const store::Value* timings = report.Find("timings_seconds");
  ASSERT_NE(timings, nullptr);
  EXPECT_DOUBLE_EQ(timings->Find("topics")->AsDouble(), 1.5);
}

TEST(ReportTest, JsonSerialisesAndParses) {
  std::string json = ReportJson(SmallResult());
  StatusOr<store::Value> parsed = store::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("articles")->AsInt(), 3);
}

}  // namespace
}  // namespace newsdiff::core
