// Replication tests: the WAL tailer's anomaly handling (torn tails that
// complete, durable damage abandoned like recovery would), replica catch-up
// and bounded staleness, the prune-race resync, fenced promotion that locks
// a stale writer out of the shared log, an every-byte-flip fuzz over the
// promotion record, and the supervisor's follower mode.
#include "store/replication.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/retry.h"
#include "core/supervisor.h"
#include "datagen/faults.h"
#include "store/database.h"
#include "store/json.h"
#include "store/lease.h"
#include "store/replica.h"

namespace newsdiff::store {
namespace {

namespace fs = std::filesystem;

constexpr size_t kFrameHeaderBytes = 8;  // u32le length + u32le CRC-32

uint32_t ReadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

class ReplicationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_replication_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  std::string ReadRaw(const std::string& name) const {
    std::ifstream in(dir_ / name, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void WriteRaw(const std::string& name, const std::string& bytes) const {
    std::ofstream out(dir_ / name, std::ios::trunc | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

/// Canonical byte dump of the whole store, slot layout included: equality
/// with the writer means the replica reproduced its state bit for bit.
std::string Fingerprint(const Database& db) {
  std::string out;
  for (const std::string& name : db.CollectionNames()) {
    const Collection* coll = db.Get(name);
    out += "== " + name + " slots=" + std::to_string(coll->slot_count()) + "\n";
    for (const Value& doc : coll->All()) {
      out += ToJson(doc) + "\n";
    }
  }
  return out;
}

/// Scripted mutation `j`: the same deterministic insert/upsert/remove mix
/// the WAL crash sweeps use, one log record per step.
void ApplyOp(Database& db, int j) {
  Collection& articles = db.GetOrCreate("articles");
  if (j % 7 == 3 && j >= 3) {
    StatusOr<DocId> id = articles.Upsert(
        Filter().Eq("k", Value(static_cast<int64_t>(j - 3))),
        MakeObject({{"k", static_cast<int64_t>(j - 3)},
                    {"v", static_cast<int64_t>(j * 100)}}));
    ASSERT_TRUE(id.ok());
  } else if (j % 5 == 4 && (j - 1) % 7 != 3) {
    size_t removed =
        articles.Remove(Filter().Eq("k", Value(static_cast<int64_t>(j - 1))));
    ASSERT_EQ(removed, 1u);
  } else {
    StatusOr<DocId> id = articles.Insert(MakeObject(
        {{"k", static_cast<int64_t>(j)}, {"v", static_cast<int64_t>(j)}}));
    ASSERT_TRUE(id.ok());
  }
}

constexpr int kScriptOps = 40;

/// states[m] is the fingerprint after m scripted ops — every state a
/// replica may legally expose while following the scripted writer.
std::vector<std::string> ReferenceStates() {
  std::vector<std::string> states;
  Database db;
  states.push_back(Fingerprint(db));
  for (int j = 0; j < kScriptOps; ++j) {
    ApplyOp(db, j);
    states.push_back(Fingerprint(db));
  }
  return states;
}

TEST_F(ReplicationFixture, TailerFollowsLiveAppends) {
  Database db;
  WalOptions wal;
  wal.sync_every_records = 1;
  ASSERT_TRUE(db.AttachWal(dir(), wal).ok());

  Database rdb;
  Replica rep(dir(), &rdb);
  ASSERT_TRUE(rep.Bootstrap().ok());

  // Lock-step interleaving: after every synced writer op one poll must
  // reproduce the writer's state exactly.
  for (int j = 0; j < kScriptOps; ++j) {
    ApplyOp(db, j);
    ASSERT_TRUE(rep.Poll().ok());
    ASSERT_EQ(Fingerprint(rdb), Fingerprint(db)) << "after op " << j;
  }
  EXPECT_TRUE(rep.stats().caught_up);
  EXPECT_EQ(rep.stats().bytes_behind, 0u);
  EXPECT_EQ(rep.stats().records_applied, static_cast<size_t>(kScriptOps));
  EXPECT_EQ(rep.stats().resyncs, 0u);
}

TEST_F(ReplicationFixture, TailerWaitsOutATornTailUntilTheAppendCompletes) {
  WalRecord header;
  header.type = WalRecord::Type::kSegmentHeader;
  header.collection = "articles";
  header.base_generation = 0;
  header.part = 1;
  header.slot_count = 0;
  WalRecord put;
  put.type = WalRecord::Type::kPut;
  put.id = 0;
  put.doc_json = "{\"_id\":0,\"k\":7}";
  const std::string h = EncodeWalRecord(header);
  const std::string p = EncodeWalRecord(put);
  const std::string name = WalSegmentFileName("articles", 0, 1);

  // An append in flight: the put's last bytes have not landed yet.
  WriteRaw(name, h + p.substr(0, p.size() - 3));

  WalTailer tailer(dir(), 0);
  size_t puts = 0;
  auto apply = [&](const std::string& collection, const WalRecord& record) {
    EXPECT_EQ(collection, "articles");
    if (record.type == WalRecord::Type::kPut) ++puts;
    return Status::OK();
  };
  // The tailer takes the header, then parks at the incomplete frame
  // instead of guessing — poll after poll, without declaring damage.
  ASSERT_TRUE(tailer.Poll(apply).ok());
  ASSERT_TRUE(tailer.Poll(apply).ok());
  EXPECT_EQ(puts, 0u);
  EXPECT_EQ(tailer.stats().records_delivered, 1u);
  EXPECT_GE(tailer.stats().torn_waits, 2u);
  EXPECT_GT(tailer.stats().bytes_behind, 0u);
  EXPECT_EQ(tailer.stats().damaged_segments, 0u);

  // The append completes; the very next poll delivers the frame.
  WriteRaw(name, h + p);
  ASSERT_TRUE(tailer.Poll(apply).ok());
  EXPECT_EQ(puts, 1u);
  EXPECT_EQ(tailer.stats().records_delivered, 2u);
  EXPECT_EQ(tailer.stats().bytes_behind, 0u);
}

TEST_F(ReplicationFixture, TailerAbandonsDurableDamageLikeRecoveryWould) {
  WalRecord header;
  header.type = WalRecord::Type::kSegmentHeader;
  header.collection = "articles";
  header.base_generation = 0;
  header.part = 1;
  header.slot_count = 0;
  WalRecord put;
  put.type = WalRecord::Type::kPut;
  put.id = 0;
  put.doc_json = "{\"_id\":0,\"k\":7}";
  const std::string h = EncodeWalRecord(header);
  std::string rotten = EncodeWalRecord(put);
  rotten[kFrameHeaderBytes + 2] ^= 0x5a;  // payload no longer matches its CRC
  const std::string name = WalSegmentFileName("articles", 0, 1);
  WriteRaw(name, h + rotten);

  WalTailer tailer(dir(), 0);
  size_t puts = 0;
  auto apply = [&](const std::string&, const WalRecord& record) {
    if (record.type == WalRecord::Type::kPut) ++puts;
    return Status::OK();
  };
  // One rejected read could be in-transit rot; only the same bytes
  // rejected on `max_reject_polls` consecutive polls prove the file
  // itself is damaged.
  ASSERT_TRUE(tailer.Poll(apply).ok());
  EXPECT_EQ(tailer.stats().damaged_segments, 0u);
  ASSERT_TRUE(tailer.Poll(apply).ok());
  EXPECT_EQ(tailer.stats().damaged_segments, 0u);
  ASSERT_TRUE(tailer.Poll(apply).ok());
  EXPECT_EQ(tailer.stats().damaged_segments, 1u);

  // Abandoned means abandoned: bytes appended after the damage are never
  // trusted, exactly as recovery stops its scan at the first bad frame.
  WriteRaw(name, h + rotten + EncodeWalRecord(put));
  ASSERT_TRUE(tailer.Poll(apply).ok());
  EXPECT_EQ(puts, 0u);
  EXPECT_EQ(tailer.stats().records_delivered, 1u);  // the header only
}

TEST_F(ReplicationFixture, TailerFollowsCheckpointRotationAndNewCollections) {
  Database db;
  WalOptions wal;
  wal.sync_every_records = 1;
  ASSERT_TRUE(db.AttachWal(dir(), wal).ok());

  Database rdb;
  Replica rep(dir(), &rdb);

  for (int j = 0; j < kScriptOps; ++j) {
    ApplyOp(db, j);
    if (j == 10) {
      // A second collection born mid-stream: its segment appears in a
      // later listing and the tailer must pick it up from its header.
      ASSERT_TRUE(db.GetOrCreate("tweets")
                      .Insert(MakeObject({{"t", static_cast<int64_t>(1)}}))
                      .ok());
    }
    if (j == 15 || j == 30) {
      ASSERT_TRUE(db.Checkpoint().ok());  // rotate every log mid-follow
    }
    ASSERT_TRUE(rep.Poll().ok());
    ASSERT_EQ(Fingerprint(rdb), Fingerprint(db)) << "after op " << j;
  }
  EXPECT_TRUE(rep.stats().caught_up);
  // The first checkpoint prunes the pre-checkpoint segments immediately
  // (their records are all in the sole retained generation), so a tailer
  // mid-segment resyncs once; the second checkpoint keeps the previous
  // base retained and is followed in-stream, no resync.
  EXPECT_EQ(rep.stats().resyncs, 1u);
  EXPECT_EQ(rep.stats().checkpoint_generation, 2u);
  ASSERT_NE(rep.tailer_stats(), nullptr);
  EXPECT_GE(rep.tailer_stats()->segments_tracked, 2u);
}

TEST_F(ReplicationFixture, ReplicaResyncsCleanlyWhenPruningOutrunsTheTail) {
  const std::vector<std::string> states = ReferenceStates();

  Database db;
  WalOptions wal;
  wal.sync_every_records = 1;
  ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
  SnapshotOptions snap;
  snap.retain_generations = 1;  // aggressive pruning

  Database rdb;
  Replica rep(dir(), &rdb);

  for (int j = 0; j < kScriptOps; ++j) {
    ApplyOp(db, j);
    // The replica only polls at the edges; in between, two checkpoints
    // under retain_generations=1 prune the segments its cursor sits in.
    if (j < 5 || j > 36) {
      ASSERT_TRUE(rep.Poll().ok());
      // Whatever the poll observed — catch-up, a pruned cursor, a resync —
      // the exposed state is always some exact prefix of the writer's
      // history, never a half-pruned splice.
      EXPECT_NE(std::find(states.begin(), states.end(), Fingerprint(rdb)),
                states.end())
          << "after op " << j;
    }
    if (j == 19 || j == 34) {
      ASSERT_TRUE(db.Checkpoint(snap).ok());
    }
  }
  ASSERT_TRUE(rep.Poll().ok());
  EXPECT_GE(rep.stats().resyncs, 1u);
  EXPECT_TRUE(rep.stats().caught_up);
  EXPECT_EQ(Fingerprint(rdb), Fingerprint(db));
}

TEST_F(ReplicationFixture, ReplicaStalenessGrowsWhileReadsFail) {
  Database db;
  WalOptions wal;
  wal.sync_every_records = 1;
  ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
  for (int j = 0; j < 5; ++j) ApplyOp(db, j);

  ManualClock clock;
  // Dry run: count the io operations bootstrap plus one clean catch-up
  // poll cost, so the real run's crash point lands exactly after them.
  size_t setup_ops = 0;
  {
    datagen::FaultyFileIo probe(DefaultFileIo(), {});
    ReplicaOptions opts;
    opts.snapshot.io = &probe;
    opts.clock = &clock;
    Database rdb;
    Replica rep(dir(), &rdb, opts);
    ASSERT_TRUE(rep.Poll().ok());
    ASSERT_TRUE(rep.stats().caught_up);
    setup_ops = probe.counters().ops;
  }

  datagen::StorageFaultOptions faults;
  faults.crash_after_ops = setup_ops;  // healthy bootstrap, then darkness
  datagen::FaultyFileIo io(DefaultFileIo(), faults);
  ReplicaOptions opts;
  opts.snapshot.io = &io;
  opts.clock = &clock;
  Database rdb;
  Replica rep(dir(), &rdb, opts);
  ASSERT_TRUE(rep.Poll().ok());
  EXPECT_TRUE(rep.stats().caught_up);
  EXPECT_EQ(rep.stats().staleness_ms, 0);

  // Every subsequent read fails. The polls stay OK (transient faults are
  // retried), but none of them can prove the replica is current, so the
  // staleness clock keeps running — the bounded-staleness contract.
  clock.Advance(250);
  ASSERT_TRUE(rep.Poll().ok());
  EXPECT_FALSE(rep.stats().caught_up);
  EXPECT_EQ(rep.stats().staleness_ms, 250);
  clock.Advance(250);
  ASSERT_TRUE(rep.Poll().ok());
  EXPECT_EQ(rep.stats().staleness_ms, 500);
  ASSERT_NE(rep.tailer_stats(), nullptr);
  EXPECT_GE(rep.tailer_stats()->read_failures, 2u);
}

TEST_F(ReplicationFixture, PromoteFencesTheStaleWriterAndKeepsItsSyncedPrefix) {
  ManualClock clock;
  LeaseOptions writer_lease_opts;
  writer_lease_opts.clock = &clock;
  writer_lease_opts.owner = "writer";
  writer_lease_opts.ttl_ms = 1'000;
  StatusOr<Lease> writer_lease = Lease::Acquire(dir(), writer_lease_opts);
  ASSERT_TRUE(writer_lease.ok());

  WalOptions wal;
  wal.sync_every_records = 1;
  wal.clock = &clock;
  wal.write_gate = [&]() { return writer_lease->Check(); };
  Database db;
  ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
  for (int j = 0; j < 10; ++j) ApplyOp(db, j);
  ASSERT_TRUE(db.WalSync().ok());

  ReplicaOptions ropts;
  ropts.clock = &clock;
  Database rdb;
  Replica rep(dir(), &rdb, ropts);
  ASSERT_TRUE(rep.Poll().ok());
  ASSERT_EQ(Fingerprint(rdb), Fingerprint(db));
  // A second replica keeps watching throughout the failover.
  Database odb;
  Replica observer(dir(), &odb, ropts);
  ASSERT_TRUE(observer.Poll().ok());

  // The writer goes silent (partition, crash — indistinguishable); its
  // lease expires and the replica takes over with a higher fencing token.
  clock.Advance(2'000);
  LeaseOptions promote_opts;
  promote_opts.owner = "replica";
  promote_opts.ttl_ms = 1'000;
  StatusOr<uint64_t> token = rep.Promote(promote_opts);
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  EXPECT_EQ(*token, 2u);
  EXPECT_TRUE(rep.promoted());
  // The promoted store is exactly the writer's acknowledged synced prefix.
  EXPECT_EQ(Fingerprint(rdb), Fingerprint(db));

  // The partitioned writer wakes up and tries to keep going: in-memory
  // writes still work, but its next group-commit sync dies at the write
  // gate — nothing it buffered after the takeover can reach the log.
  const size_t synced_before = db.wal()->stats().records_synced;
  ApplyOp(db, 10);
  EXPECT_EQ(db.WalSync().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.wal()->stats().records_synced, synced_before);

  // The promoted replica is the writer now.
  ASSERT_TRUE(rdb.GetOrCreate("articles")
                  .Insert(MakeObject({{"k", static_cast<int64_t>(100)}}))
                  .ok());
  ASSERT_TRUE(rdb.WalSync().ok());
  ASSERT_TRUE(rep.RenewLease().ok());

  // The observer follows straight through the takeover: it sees the
  // promotion record (ordering the leadership change by token) and then
  // the new writer's appends.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(observer.Poll().ok());
  EXPECT_EQ(observer.stats().fencing_token, 2u);
  EXPECT_EQ(Fingerprint(odb), Fingerprint(rdb));

  // Cold recovery of the directory agrees with the promoted writer — the
  // fenced writer's post-takeover buffer left no trace on disk.
  Database recovered;
  SnapshotLoadReport report;
  ASSERT_TRUE(
      recovered.RecoverWal(dir(), SnapshotOptions{}, WalOptions{}, &report)
          .ok());
  EXPECT_EQ(Fingerprint(recovered), Fingerprint(rdb));
  // The promotion is re-announced in the post-takeover generation, so even
  // cold recovery (which never saw the pruned pre-checkpoint log) learns
  // the fencing token.
  EXPECT_EQ(report.wal_fencing_token, 2u);
}

TEST_F(ReplicationFixture, PromotionRecordEveryByteFlipIsPrefixOrFlagged) {
  // Build a log whose middle frame is a promotion record, with a synced
  // put on either side.
  {
    Database db;
    WalOptions wal;
    wal.sync_every_records = 1;
    ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
    Collection& articles = db.GetOrCreate("articles");
    ASSERT_TRUE(articles.Insert(MakeObject({{"k", static_cast<int64_t>(0)}})).ok());
    ASSERT_TRUE(articles.Insert(MakeObject({{"k", static_cast<int64_t>(1)}})).ok());
    ASSERT_TRUE(db.wal()->LogPromotion("articles", 7, "promoted writer").ok());
    ASSERT_TRUE(articles.Insert(MakeObject({{"k", static_cast<int64_t>(2)}})).ok());
    ASSERT_TRUE(db.WalSync().ok());
  }
  // Reference states: the prefix before the promotion record (two puts)
  // and the full log (three).
  Database two;
  ASSERT_TRUE(two.GetOrCreate("articles")
                  .Insert(MakeObject({{"k", static_cast<int64_t>(0)}}))
                  .ok());
  ASSERT_TRUE(two.GetOrCreate("articles")
                  .Insert(MakeObject({{"k", static_cast<int64_t>(1)}}))
                  .ok());
  Database three;
  for (int64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(three.GetOrCreate("articles").Insert(MakeObject({{"k", k}})).ok());
  }
  const std::string prefix_fp = Fingerprint(two);
  const std::string full_fp = Fingerprint(three);

  const std::string name = WalSegmentFileName("articles", 0, 1);
  const std::string pristine = ReadRaw(name);
  // Locate the promotion frame.
  size_t promo_begin = 0, promo_end = 0;
  for (size_t pos = 0; pos + kFrameHeaderBytes <= pristine.size();) {
    const uint32_t length = ReadU32Le(pristine.data() + pos);
    ASSERT_LE(pos + kFrameHeaderBytes + length, pristine.size());
    StatusOr<WalRecord> record =
        ParseWalPayload(pristine.substr(pos + kFrameHeaderBytes, length));
    ASSERT_TRUE(record.ok());
    if (record->type == WalRecord::Type::kPromotion) {
      promo_begin = pos;
      promo_end = pos + kFrameHeaderBytes + length;
    }
    pos += kFrameHeaderBytes + length;
  }
  ASSERT_GT(promo_end, 0u);

  // Flip every byte of the framed promotion record in turn. Recovery must
  // come up as a legal prefix of the log with the damage flagged — never
  // with a silently divergent fencing token or a corrupted document.
  for (size_t i = promo_begin; i < promo_end; ++i) {
    std::string damaged = pristine;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x5a);
    WriteRaw(name, damaged);
    Database recovered;
    SnapshotLoadReport report;
    ASSERT_TRUE(
        recovered.RecoverWal(dir(), SnapshotOptions{}, WalOptions{}, &report)
            .ok())
        << "flip at byte " << i;
    const std::string got = Fingerprint(recovered);
    if (got == full_fp) {
      // The flip was detected yet replay still completed — impossible:
      // replay stops at the first damaged frame, so the put after the
      // promotion record cannot have been applied.
      ADD_FAILURE() << "flip at byte " << i << " replayed past the damage";
    } else {
      EXPECT_EQ(got, prefix_fp) << "flip at byte " << i;
      EXPECT_GE(report.wal_records_rejected + report.wal_records_truncated, 1u)
          << "flip at byte " << i << " was not flagged";
      EXPECT_EQ(report.wal_fencing_token, 0u)
          << "flip at byte " << i << " forged a fencing token";
    }
  }

  // Undamaged control: the token lands and all three puts replay.
  WriteRaw(name, pristine);
  Database recovered;
  SnapshotLoadReport report;
  ASSERT_TRUE(
      recovered.RecoverWal(dir(), SnapshotOptions{}, WalOptions{}, &report)
          .ok());
  EXPECT_EQ(Fingerprint(recovered), full_fp);
  EXPECT_EQ(report.wal_fencing_token, 7u);
}

TEST_F(ReplicationFixture, SupervisorFollowerReplicatesAndPromotes) {
  ManualClock clock;
  LeaseOptions writer_lease_opts;
  writer_lease_opts.clock = &clock;
  writer_lease_opts.owner = "writer";
  writer_lease_opts.ttl_ms = 1'000;
  StatusOr<Lease> writer_lease = Lease::Acquire(dir(), writer_lease_opts);
  ASSERT_TRUE(writer_lease.ok());
  WalOptions wal;
  wal.sync_every_records = 1;
  wal.clock = &clock;
  wal.write_gate = [&]() { return writer_lease->Check(); };
  Database db;
  ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
  for (int j = 0; j < 10; ++j) ApplyOp(db, j);
  ASSERT_TRUE(db.WalSync().ok());

  core::SupervisorOptions opts;
  opts.snapshot_dir = dir();
  opts.clock = &clock;
  opts.use_wal = true;
  opts.lease_enabled = true;
  opts.lease.owner = "follower";
  opts.lease.ttl_ms = 1'000;
  core::PipelineSupervisor supervisor(core::Pipeline(core::PipelineOptions{}),
                                      opts);
  // Standby: a follower supervisor mirrors the writer's store for reads.
  Database rdb;
  ASSERT_TRUE(supervisor.Follow(rdb).ok());
  ASSERT_TRUE(supervisor.PollFollower().ok());
  ASSERT_NE(supervisor.replica(), nullptr);
  EXPECT_TRUE(supervisor.replica()->stats().caught_up);
  EXPECT_EQ(Fingerprint(rdb), Fingerprint(db));

  // Failover: the writer misses its renewals; the follower takes over.
  clock.Advance(2'000);
  StatusOr<uint64_t> token = supervisor.PromoteFollower();
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  EXPECT_EQ(*token, 2u);
  EXPECT_EQ(Fingerprint(rdb), Fingerprint(db));

  // The stale writer is locked out; the promoted follower owns the log.
  ApplyOp(db, 10);
  EXPECT_EQ(db.WalSync().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(rdb.GetOrCreate("articles")
                  .Insert(MakeObject({{"k", static_cast<int64_t>(99)}}))
                  .ok());
  ASSERT_TRUE(rdb.WalSync().ok());
}

}  // namespace
}  // namespace newsdiff::store
