#include "common/strings.h"

#include <gtest/gtest.h>

namespace newsdiff {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, DropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(SplitJoinTest, RoundTrip) {
  std::string input = "alpha beta gamma";
  EXPECT_EQ(Join(Split(input, ' '), " "), input);
}

TEST(StripTest, Whitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripAsciiWhitespace("hi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("\t\n"), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(ToLowerTest, OnlyAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo123"), "hello123");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StartsEndsTest, Prefixes) {
  EXPECT_TRUE(StartsWith("https://x", "https://"));
  EXPECT_FALSE(StartsWith("http", "https"));
  EXPECT_TRUE(EndsWith("file.jsonl", ".jsonl"));
  EXPECT_FALSE(EndsWith(".json", ".jsonl"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(IsDigitsTest, Basics) {
  EXPECT_TRUE(IsDigits("2019"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits("-1"));
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(0.756, 2), "0.76");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

TEST(Fnv1aTest, StableAndDistinct) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
  // Known FNV-1a 64-bit value for the empty string.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
}

}  // namespace
}  // namespace newsdiff
