#include "text/phrases.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace newsdiff::text {
namespace {

std::vector<std::vector<std::string>> CollocationCorpus() {
  std::vector<std::vector<std::string>> sentences;
  // "prime minister" always together; "spoke" and "today" are frequent but
  // mostly apart; "big dog" is adjacent only once.
  for (int i = 0; i < 30; ++i) {
    sentences.push_back({"prime", "minister", "spoke", "loudly"});
    sentences.push_back({"today", "crowd", "saw", "spoke"});
    sentences.push_back({"big", "crowd", "today", "dog"});
  }
  sentences.push_back({"big", "dog"});
  sentences.push_back({"spoke", "today"});
  return sentences;
}

TEST(PhrasesTest, LearnsTightCollocation) {
  PhraseModel::Options opts;
  opts.min_count = 5;
  opts.threshold = 5.0;
  PhraseModel model(opts);
  model.Train(CollocationCorpus());
  EXPECT_TRUE(model.IsPhrase("prime", "minister"));
  EXPECT_FALSE(model.IsPhrase("big", "dog"));      // adjacent only once
  EXPECT_FALSE(model.IsPhrase("spoke", "today"));  // frequent words, rare
                                                   // as a pair
  EXPECT_GE(model.PhraseCount(), 1u);
}

TEST(PhrasesTest, ApplyJoinsNonOverlapping) {
  PhraseModel::Options opts;
  opts.min_count = 5;
  opts.threshold = 5.0;
  PhraseModel model(opts);
  model.Train(CollocationCorpus());
  auto out = model.Apply({"the", "prime", "minister", "spoke"});
  EXPECT_EQ(out, (std::vector<std::string>{"the", "prime_minister",
                                           "spoke"}));
  // Untouched streams pass through.
  auto same = model.Apply({"nothing", "matches", "here"});
  EXPECT_EQ(same.size(), 3u);
  EXPECT_TRUE(model.Apply({}).empty());
}

TEST(PhrasesTest, StopwordsNeverJoinByDefault) {
  std::vector<std::vector<std::string>> sentences;
  for (int i = 0; i < 50; ++i) sentences.push_back({"of", "course", "yes"});
  PhraseModel::Options opts;
  opts.min_count = 3;
  opts.threshold = 1.0;
  PhraseModel model(opts);
  model.Train(sentences);
  EXPECT_FALSE(model.IsPhrase("of", "course"));

  PhraseModel::Options permissive = opts;
  permissive.skip_stopwords = false;
  PhraseModel loose(permissive);
  loose.Train(sentences);
  EXPECT_TRUE(loose.IsPhrase("of", "course"));
}

TEST(PhrasesTest, MinCountGuards) {
  std::vector<std::vector<std::string>> sentences = {
      {"rare", "pair"}, {"rare", "pair"}};
  PhraseModel::Options opts;
  opts.min_count = 5;
  PhraseModel model(opts);
  model.Train(sentences);
  EXPECT_FALSE(model.IsPhrase("rare", "pair"));
  EXPECT_EQ(model.PhraseCount(), 0u);
}

TEST(PhrasesTest, PhrasesListMatchesPredicate) {
  PhraseModel::Options opts;
  opts.min_count = 5;
  opts.threshold = 5.0;
  PhraseModel model(opts);
  model.Train(CollocationCorpus());
  auto phrases = model.Phrases();
  EXPECT_EQ(phrases.size(), model.PhraseCount());
  EXPECT_NE(std::find(phrases.begin(), phrases.end(), "prime_minister"),
            phrases.end());
}

TEST(PhrasesTest, IncrementalTrainingAccumulates) {
  PhraseModel::Options opts;
  opts.min_count = 5;
  // Score for a 6-occurrence bigram in this tiny corpus is ~1, so use a
  // sub-1 threshold: the test targets the count accumulation, not scoring.
  opts.threshold = 0.4;
  PhraseModel model(opts);
  std::vector<std::vector<std::string>> half = {
      {"prime", "minister", "x"}, {"prime", "minister", "y"},
      {"prime", "minister", "z"}};
  model.Train(half);
  EXPECT_FALSE(model.IsPhrase("prime", "minister"));  // below min_count
  model.Train(half);
  EXPECT_TRUE(model.IsPhrase("prime", "minister"));
}

}  // namespace
}  // namespace newsdiff::text
