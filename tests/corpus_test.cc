#include "corpus/corpus.h"

#include <gtest/gtest.h>

#include "corpus/weighting.h"

namespace newsdiff::corpus {
namespace {

TEST(VocabularyTest, GetOrAddAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(v.GetOrAdd("a"), 0u);
  EXPECT_EQ(v.GetOrAdd("b"), 1u);
  EXPECT_EQ(v.GetOrAdd("a"), 0u);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.Term(0), "a");
  EXPECT_EQ(v.Term(1), "b");
}

TEST(VocabularyTest, GetMissingReturnsSentinel) {
  Vocabulary v;
  EXPECT_EQ(v.Get("nope"), kUnknownTerm);
  v.GetOrAdd("yes");
  EXPECT_EQ(v.Get("yes"), 0u);
}

TEST(CorpusTest, AddDocumentBuildsCountsAndFrequencies) {
  Corpus corp;
  corp.AddDocument({"a", "b", "a", "c", "a"});
  corp.AddDocument({"b", "c"});
  EXPECT_EQ(corp.size(), 2u);
  EXPECT_EQ(corp.total_tokens(), 7u);

  const Vocabulary& v = corp.vocabulary();
  uint32_t a = v.Get("a"), b = v.Get("b"), c = v.Get("c");
  EXPECT_EQ(v.doc_freq(a), 1u);
  EXPECT_EQ(v.doc_freq(b), 2u);
  EXPECT_EQ(v.doc_freq(c), 2u);
  EXPECT_EQ(v.term_freq(a), 3u);
  EXPECT_EQ(v.term_freq(b), 2u);

  const Document& d0 = corp.doc(0);
  EXPECT_EQ(d0.length, 5u);
  EXPECT_EQ(d0.tokens.size(), 5u);
  // Counts are sorted by term id and summed.
  ASSERT_EQ(d0.counts.size(), 3u);
  for (size_t i = 1; i < d0.counts.size(); ++i) {
    EXPECT_LT(d0.counts[i - 1].term, d0.counts[i].term);
  }
  for (const TermCount& tc : d0.counts) {
    if (tc.term == a) EXPECT_EQ(tc.count, 3u);
  }
}

TEST(CorpusTest, MetadataStored) {
  Corpus corp;
  size_t idx = corp.AddDocument({"x"}, /*timestamp=*/1234, /*external_id=*/77);
  EXPECT_EQ(corp.doc(idx).timestamp, 1234);
  EXPECT_EQ(corp.doc(idx).external_id, 77);
}

TEST(CorpusTest, EmptyDocumentAllowed) {
  Corpus corp;
  corp.AddDocument({});
  EXPECT_EQ(corp.doc(0).length, 0u);
  EXPECT_TRUE(corp.doc(0).counts.empty());
}

TEST(IdfTest, MatchesEquation2) {
  Corpus corp;
  corp.AddDocument({"common", "rare"});
  corp.AddDocument({"common"});
  corp.AddDocument({"common"});
  corp.AddDocument({"common"});
  uint32_t common = corp.vocabulary().Get("common");
  uint32_t rare = corp.vocabulary().Get("rare");
  // IDF = log2(n / n_ij): log2(4/4) = 0, log2(4/1) = 2.
  EXPECT_DOUBLE_EQ(Idf(corp, common), 0.0);
  EXPECT_DOUBLE_EQ(Idf(corp, rare), 2.0);
}

TEST(DtmTest, TfSchemeRawCounts) {
  Corpus corp;
  corp.AddDocument({"a", "a", "b"});
  corp.AddDocument({"b"});
  DtmOptions opts;
  opts.scheme = WeightingScheme::kTf;
  DocumentTermMatrix dtm = BuildDocumentTermMatrix(corp, opts);
  EXPECT_EQ(dtm.matrix.rows(), 2u);
  EXPECT_EQ(dtm.matrix.cols(), 2u);
  uint32_t col_a = 0;
  for (size_t c = 0; c < dtm.column_terms.size(); ++c) {
    if (corp.vocabulary().Term(dtm.column_terms[c]) == "a") {
      col_a = static_cast<uint32_t>(c);
    }
  }
  EXPECT_DOUBLE_EQ(dtm.matrix.At(0, col_a), 2.0);  // Eq. (1)
}

TEST(DtmTest, TfIdfMatchesEquation3) {
  Corpus corp;
  corp.AddDocument({"a", "a", "b"});
  corp.AddDocument({"b"});
  DtmOptions opts;
  opts.scheme = WeightingScheme::kTfIdf;
  DocumentTermMatrix dtm = BuildDocumentTermMatrix(corp, opts);
  // a appears only in doc 0: tf=2, idf=log2(2/1)=1 -> 2.
  // b appears in both docs: idf = log2(2/2) = 0 -> weight 0 (kept as 0).
  uint32_t a = corp.vocabulary().Get("a");
  size_t col_a = 0;
  for (size_t c = 0; c < dtm.column_terms.size(); ++c) {
    if (dtm.column_terms[c] == a) col_a = c;
  }
  EXPECT_DOUBLE_EQ(dtm.matrix.At(0, col_a), 2.0);
}

TEST(DtmTest, NormalizedRowsHaveUnitNorm) {
  Corpus corp;
  corp.AddDocument({"a", "a", "b", "c"});
  corp.AddDocument({"b", "d"});
  corp.AddDocument({"e", "f", "a"});
  DocumentTermMatrix dtm = BuildDocumentTermMatrix(corp, DtmOptions{});
  for (size_t r = 0; r < dtm.matrix.rows(); ++r) {
    double sq = 0.0;
    for (size_t c = 0; c < dtm.matrix.cols(); ++c) {
      double v = dtm.matrix.At(r, c);
      sq += v * v;
    }
    if (sq > 0.0) {
      EXPECT_NEAR(sq, 1.0, 1e-9) << "row " << r;  // Eq. (4)-(5)
    }
  }
}

TEST(DtmTest, MinDocFreqFilters) {
  Corpus corp;
  corp.AddDocument({"common", "rare"});
  corp.AddDocument({"common"});
  DtmOptions opts;
  opts.scheme = WeightingScheme::kTf;
  opts.min_doc_freq = 2;
  DocumentTermMatrix dtm = BuildDocumentTermMatrix(corp, opts);
  EXPECT_EQ(dtm.column_terms.size(), 1u);
  EXPECT_EQ(corp.vocabulary().Term(dtm.column_terms[0]), "common");
}

TEST(DtmTest, MaxDocFractionFilters) {
  Corpus corp;
  corp.AddDocument({"everywhere", "x"});
  corp.AddDocument({"everywhere", "y"});
  corp.AddDocument({"everywhere", "z"});
  corp.AddDocument({"everywhere"});
  DtmOptions opts;
  opts.scheme = WeightingScheme::kTf;
  opts.max_doc_fraction = 0.9;
  DocumentTermMatrix dtm = BuildDocumentTermMatrix(corp, opts);
  for (uint32_t t : dtm.column_terms) {
    EXPECT_NE(corp.vocabulary().Term(t), "everywhere");
  }
}

/// Property sweep: the normalized scheme always produces rows with norm
/// 0 or 1, for random corpora.
class DtmNormSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DtmNormSweep, RowsUnitOrZero) {
  Rng rng(GetParam());
  Corpus corp;
  const char* words[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
  for (int d = 0; d < 30; ++d) {
    std::vector<std::string> doc;
    size_t len = rng.NextBelow(12);
    for (size_t i = 0; i < len; ++i) {
      doc.push_back(words[rng.NextBelow(8)]);
    }
    corp.AddDocument(doc);
  }
  DocumentTermMatrix dtm = BuildDocumentTermMatrix(corp, DtmOptions{});
  for (size_t r = 0; r < dtm.matrix.rows(); ++r) {
    double sq = 0.0;
    for (size_t p = dtm.matrix.row_ptr()[r]; p < dtm.matrix.row_ptr()[r + 1];
         ++p) {
      sq += dtm.matrix.values()[p] * dtm.matrix.values()[p];
    }
    EXPECT_TRUE(sq == 0.0 || std::abs(sq - 1.0) < 1e-9) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtmNormSweep,
                         ::testing::Values(3ull, 5ull, 8ull, 13ull));

}  // namespace
}  // namespace newsdiff::corpus
