// Tests for the thread-local scratch-buffer arena (common/arena.h): reuse,
// non-aliasing of concurrent checkouts, stats, trim semantics, and (in the
// ParallelArena suite, which runs under tsan in CI) per-worker isolation
// when pool threads check out buffers simultaneously.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/parallel.h"

namespace newsdiff {
namespace {

TEST(ArenaTest, AcquireReturnsAlignedWritableStorage) {
  Arena arena;
  ArenaBuffer buf = arena.Acquire(100);
  ASSERT_TRUE(buf.valid());
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 0u);
  for (size_t i = 0; i < buf.size(); ++i) buf.data()[i] = double(i);
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf.data()[i], double(i));
}

TEST(ArenaTest, ReleaseThenAcquireReusesTheSameStorage) {
  Arena arena;
  ArenaBuffer first = arena.Acquire(100);
  double* mem = first.data();
  first.Release();
  // 80 fits the 128-capacity slot the first checkout created.
  ArenaBuffer second = arena.Acquire(80);
  EXPECT_EQ(second.data(), mem);
  EXPECT_EQ(arena.fresh_allocations(), 1u);
  EXPECT_EQ(arena.reuses(), 1u);
  EXPECT_EQ(arena.buffer_count(), 1u);
}

TEST(ArenaTest, ConcurrentCheckoutsNeverAlias) {
  Arena arena;
  std::vector<ArenaBuffer> bufs;
  const size_t sizes[] = {64, 64, 200, 10, 512};
  for (size_t s : sizes) bufs.push_back(arena.Acquire(s));
  for (size_t i = 0; i < bufs.size(); ++i) {
    for (size_t j = i + 1; j < bufs.size(); ++j) {
      const double* ib = bufs[i].data();
      const double* ie = ib + bufs[i].size();
      const double* jb = bufs[j].data();
      const double* je = jb + bufs[j].size();
      EXPECT_TRUE(ie <= jb || je <= ib)
          << "buffers " << i << " and " << j << " overlap";
    }
  }
  EXPECT_EQ(arena.outstanding(), bufs.size());
  bufs.clear();
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(ArenaTest, BestFitPrefersTheSmallestSlotThatHolds) {
  Arena arena;
  ArenaBuffer big = arena.Acquire(1000);    // capacity 1024
  ArenaBuffer small = arena.Acquire(50);    // capacity 64
  double* small_mem = small.data();
  big.Release();
  small.Release();
  // A 60-double request fits both free slots; best-fit must pick the 64.
  ArenaBuffer again = arena.Acquire(60);
  EXPECT_EQ(again.data(), small_mem);
}

TEST(ArenaTest, ZeroSizedAcquireIsValid) {
  Arena arena;
  ArenaBuffer buf = arena.Acquire(0);
  EXPECT_TRUE(buf.valid());
  EXPECT_NE(buf.data(), nullptr);
}

TEST(ArenaTest, TrimIsANoOpWhileBuffersAreOutstanding) {
  Arena arena;
  ArenaBuffer held = arena.Acquire(32);
  arena.Trim();
  EXPECT_EQ(arena.buffer_count(), 1u);  // untouched: a handle is live
  held.Release();
  arena.Trim();
  EXPECT_EQ(arena.buffer_count(), 0u);
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena arena;
  ArenaBuffer a = arena.Acquire(16);
  double* mem = a.data();
  ArenaBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_EQ(b.data(), mem);
  EXPECT_EQ(arena.outstanding(), 1u);
  ArenaBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), mem);
  EXPECT_EQ(arena.outstanding(), 1u);
  c.Release();
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(ArenaTest, ThreadLocalReturnsTheSameInstanceOnOneThread) {
  EXPECT_EQ(&Arena::ThreadLocal(), &Arena::ThreadLocal());
}

// --- Pool-thread isolation, exercised under tsan via the Parallel regex. ---

TEST(ParallelArenaTest, WorkersCheckOutWriteAndVerifyIndependently) {
  Parallelism par;
  par.threads = 4;
  par.shards = 8;
  // Each shard checks out scratch from ITS OWN thread-local arena, fills it
  // with a shard-specific pattern, re-reads, and repeats. Any cross-thread
  // sharing of storage would trip the pattern check (and tsan).
  std::vector<int> failures(8, 0);
  ParallelFor(par, 8, [&](size_t shard, size_t begin, size_t end) {
    for (size_t item = begin; item < end; ++item) {
      for (size_t round = 0; round < 50; ++round) {
        Arena& arena = Arena::ThreadLocal();
        ArenaBuffer buf = arena.Acquire(256 + item * 16);
        double tag = static_cast<double>(shard * 1000 + round);
        for (size_t i = 0; i < buf.size(); ++i) buf.data()[i] = tag;
        for (size_t i = 0; i < buf.size(); ++i) {
          if (buf.data()[i] != tag) {
            failures[shard] = 1;
            return;
          }
        }
      }
    }
  });
  for (size_t s = 0; s < failures.size(); ++s) {
    EXPECT_EQ(failures[s], 0) << "shard " << s << " saw foreign writes";
  }
}

TEST(ParallelArenaTest, NestedCheckoutsInsideARegionDoNotAlias) {
  Parallelism par;
  par.threads = 4;
  std::vector<int> overlaps(4, 0);
  ParallelFor(par, 4, [&](size_t shard, size_t begin, size_t end) {
    if (begin == end) return;
    Arena& arena = Arena::ThreadLocal();
    ArenaBuffer x = arena.Acquire(128);
    ArenaBuffer y = arena.Acquire(128);
    const double* xb = x.data();
    const double* yb = y.data();
    if (!(xb + x.size() <= yb || yb + y.size() <= xb)) overlaps[shard] = 1;
  });
  for (size_t s = 0; s < overlaps.size(); ++s) {
    EXPECT_EQ(overlaps[s], 0) << "shard " << s;
  }
}

}  // namespace
}  // namespace newsdiff
