// Tests for the public serving facade (core/engine.h): EngineOptions view
// consistency, BuildIndex / LoadIndex / Recover round trips, and the
// QueryTrending / PredictInterest online paths. Suite names carry the
// `Engine` prefix: the asan/ubsan CI jobs select them by that regex.
#include "core/engine.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/collection.h"
#include "core/preprocess.h"
#include "datagen/world.h"
#include "index/index.h"
#include "store/database.h"
#include "text/pipeline.h"

namespace newsdiff {
namespace {

namespace fs = std::filesystem;

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_engine_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);

    datagen::WorldOptions world_options;
    world_options.num_articles = 400;
    world_options.num_tweets = 1200;
    world_options.num_users = 200;
    world_ = datagen::GenerateWorld(world_options);
    world_.LoadInto(db_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  EngineOptions IndexedOptions() const {
    EngineOptions options;
    options.index_dir = dir() + "/index";
    return options;
  }

  /// A query built from a planted news event's own burst keywords, so it
  /// is guaranteed to hit both corpora.
  std::string EventQuery() const {
    for (const datagen::PlantedEvent& e : world_.events) {
      if (!e.chatter && e.keywords.size() >= 2) {
        return e.keywords[0] + " " + e.keywords[1];
      }
    }
    return "market";
  }

  fs::path dir_;
  datagen::World world_;
  store::Database db_;
};

TEST_F(EngineFixture, OptionsViewsCarryTheAuthoritativeParallelism) {
  EngineOptions options;
  options.parallelism.threads = 7;
  options.parallelism.shards = 13;
  options.pipeline.parallelism.threads = 1;  // stale embedded copy
  options.predictor.parallelism.threads = 2;
  EXPECT_EQ(options.PipelineView().parallelism.threads, 7u);
  EXPECT_EQ(options.PipelineView().parallelism.shards, 13u);
  EXPECT_EQ(options.PredictorView().parallelism.threads, 7u);
}

TEST_F(EngineFixture, IndexDirDefaultsUnderSnapshotDir) {
  EngineOptions options;
  EXPECT_EQ(options.IndexDir(), "");
  options.supervisor.snapshot_dir = "/data/nd";
  EXPECT_EQ(options.IndexDir(), "/data/nd/index");
  options.index_dir = "/elsewhere";
  EXPECT_EQ(options.IndexDir(), "/elsewhere");
}

TEST_F(EngineFixture, QueryBeforeBuildIsFailedPrecondition) {
  Engine engine(EngineOptions{});
  StatusOr<std::vector<QueryHit>> hits = engine.QueryTrending("market", 5);
  EXPECT_EQ(hits.status().code(), StatusCode::kFailedPrecondition);
  StatusOr<InterestPrediction> prediction =
      engine.PredictInterest("market", 5);
  EXPECT_EQ(prediction.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineFixture, LoadIndexWithoutDirIsFailedPrecondition) {
  Engine engine(EngineOptions{});
  EXPECT_EQ(engine.LoadIndex().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(EngineFixture, BuildIndexReportsCorpusShapes) {
  Engine engine(EngineOptions{});  // in-memory only
  StatusOr<BuildIndexReport> report = engine.BuildIndex(db_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->news_docs, world_.articles.size());
  EXPECT_EQ(report->tweet_docs, world_.tweets.size());
  EXPECT_GT(report->news_terms, 0u);
  EXPECT_GT(report->tweet_terms, 0u);
  EXPECT_EQ(report->generation, 0u);  // no directory configured
  EXPECT_NE(engine.GetIndex("news"), nullptr);
  EXPECT_NE(engine.GetIndex("tweets"), nullptr);
  EXPECT_EQ(engine.GetIndex("nope"), nullptr);
}

TEST_F(EngineFixture, QueryTrendingRanksAndJoinsDocInfo) {
  Engine engine(EngineOptions{});
  ASSERT_TRUE(engine.BuildIndex(db_).ok());
  index::QueryStats stats;
  StatusOr<std::vector<QueryHit>> hits =
      engine.QueryTrending(EventQuery(), 5, &stats);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_FALSE(hits->empty());
  EXPECT_LE(hits->size(), 5u);
  EXPECT_GT(stats.terms_matched, 0u);
  for (size_t i = 0; i < hits->size(); ++i) {
    const QueryHit& h = (*hits)[i];
    EXPECT_GT(h.score, 0.0);
    EXPECT_GE(h.external_id, 0);  // joined from DocInfo
    EXPECT_GT(h.timestamp, 0);
    if (i > 0) {
      const QueryHit& prev = (*hits)[i - 1];
      EXPECT_TRUE(prev.score > h.score ||
                  (prev.score == h.score && prev.doc < h.doc));
    }
  }
}

TEST_F(EngineFixture, QueryTrendingMatchesBruteForceRanking) {
  Engine engine(EngineOptions{});
  ASSERT_TRUE(engine.BuildIndex(db_).ok());
  // Rebuild the same corpus the engine indexed and compare rankings.
  StatusOr<std::vector<core::NewsRecord>> news = core::LoadNews(db_);
  ASSERT_TRUE(news.ok());
  const corpus::Corpus corpus = core::BuildNewsED(*news);
  const std::string query = EventQuery();
  const std::vector<std::string> terms = text::PreprocessNewsED(query);
  std::vector<index::SearchResult> want =
      index::BruteForceTopK(corpus, engine.options().index, terms, 10);
  StatusOr<std::vector<QueryHit>> hits = engine.QueryTrending(query, 10);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*hits)[i].doc, want[i].doc);
    EXPECT_EQ((*hits)[i].score, want[i].score);  // bitwise
  }
}

TEST_F(EngineFixture, PredictInterestVotesOverNeighbourClasses) {
  Engine engine(EngineOptions{});
  ASSERT_TRUE(engine.BuildIndex(db_).ok());
  StatusOr<InterestPrediction> prediction =
      engine.PredictInterest(EventQuery(), 25);
  ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
  ASSERT_FALSE(prediction->neighbors.empty());
  ASSERT_EQ(prediction->class_weights.size(), 3u);  // Table-2 classes
  double total = 0.0;
  for (double w : prediction->class_weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(
      prediction->confidence,
      prediction->class_weights[static_cast<size_t>(
          prediction->predicted_class)]);
  for (double w : prediction->class_weights) {
    EXPECT_LE(w, prediction->confidence + 1e-12);
  }
  // Neighbour labels are Table-2 classes.
  for (const QueryHit& h : prediction->neighbors) {
    EXPECT_GE(h.label, 0.0);
    EXPECT_LE(h.label, 2.0);
  }
}

TEST_F(EngineFixture, PredictInterestWithNoMatchesIsNotFound) {
  Engine engine(EngineOptions{});
  ASSERT_TRUE(engine.BuildIndex(db_).ok());
  StatusOr<InterestPrediction> prediction =
      engine.PredictInterest("zz_unindexed_gibberish_token", 10);
  EXPECT_EQ(prediction.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineFixture, BuildPersistsAndASecondEngineLoads) {
  Engine writer(IndexedOptions());
  StatusOr<BuildIndexReport> report = writer.BuildIndex(db_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->generation, 1u);
  EXPECT_EQ(writer.index_generation(), 1u);

  Engine reader(IndexedOptions());
  StatusOr<index::IndexLoadReport> loaded = reader.LoadIndex();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 1u);

  const std::string query = EventQuery();
  StatusOr<std::vector<QueryHit>> want = writer.QueryTrending(query, 10);
  StatusOr<std::vector<QueryHit>> got = reader.QueryTrending(query, 10);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ((*got)[i].doc, (*want)[i].doc);
    EXPECT_EQ((*got)[i].score, (*want)[i].score);
    EXPECT_EQ((*got)[i].external_id, (*want)[i].external_id);
  }
}

TEST_F(EngineFixture, RecoverOnFreshDeploymentIsOk) {
  EngineOptions options = IndexedOptions();
  options.supervisor.snapshot_dir = dir() + "/snapshots";
  Engine engine(options);
  store::Database db;
  ASSERT_TRUE(engine.Recover(db).ok());
  EXPECT_EQ(engine.index_generation(), 0u);
}

TEST_F(EngineFixture, RecoverPicksUpAPersistedIndex) {
  EngineOptions options = IndexedOptions();
  options.supervisor.snapshot_dir = dir() + "/snapshots";
  {
    Engine writer(options);
    ASSERT_TRUE(writer.BuildIndex(db_).ok());
  }
  Engine engine(options);
  store::Database db;
  ASSERT_TRUE(engine.Recover(db).ok());
  EXPECT_EQ(engine.index_generation(), 1u);
  StatusOr<std::vector<QueryHit>> hits =
      engine.QueryTrending(EventQuery(), 5);
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(hits->empty());
}

}  // namespace
}  // namespace newsdiff
