#include "text/lemmatizer.h"

#include <gtest/gtest.h>

namespace newsdiff::text {
namespace {

struct LemmaCase {
  const char* input;
  const char* expected;
};

class LemmatizerSweep : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(LemmatizerSweep, MapsToExpectedLemma) {
  EXPECT_EQ(Lemmatize(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Irregulars, LemmatizerSweep,
    ::testing::Values(LemmaCase{"was", "be"}, LemmaCase{"were", "be"},
                      LemmaCase{"has", "have"}, LemmaCase{"did", "do"},
                      LemmaCase{"went", "go"}, LemmaCase{"said", "say"},
                      LemmaCase{"thought", "think"}, LemmaCase{"men", "man"},
                      LemmaCase{"women", "woman"},
                      LemmaCase{"children", "child"},
                      LemmaCase{"better", "good"}, LemmaCase{"worst", "bad"},
                      LemmaCase{"lives", "life"}, LemmaCase{"won", "win"}));

INSTANTIATE_TEST_SUITE_P(
    Plurals, LemmatizerSweep,
    ::testing::Values(LemmaCase{"topics", "topic"},
                      LemmaCase{"parties", "party"},
                      LemmaCase{"boxes", "box"},
                      LemmaCase{"matches", "match"},
                      LemmaCase{"wishes", "wish"},
                      LemmaCase{"classes", "class"},
                      LemmaCase{"tariffs", "tariff"},
                      LemmaCase{"elections", "election"},
                      LemmaCase{"voters", "voter"}));

INSTANTIATE_TEST_SUITE_P(
    ProtectedEndings, LemmatizerSweep,
    ::testing::Values(LemmaCase{"class", "class"},
                      LemmaCase{"virus", "virus"},
                      LemmaCase{"crisis", "crisis"},
                      LemmaCase{"news", "news"},
                      LemmaCase{"series", "series"},
                      LemmaCase{"species", "species"}));

INSTANTIATE_TEST_SUITE_P(
    Verbs, LemmatizerSweep,
    ::testing::Values(LemmaCase{"voting", "vote"},
                      LemmaCase{"winning", "win"},
                      LemmaCase{"stopped", "stop"},
                      LemmaCase{"tried", "try"},
                      LemmaCase{"imposed", "impose"},
                      LemmaCase{"walked", "walk"},
                      LemmaCase{"running", "run"},
                      LemmaCase{"making", "make"}));

INSTANTIATE_TEST_SUITE_P(
    PassThrough, LemmatizerSweep,
    ::testing::Values(LemmaCase{"brexit", "brexit"},
                      LemmaCase{"the", "the"}, LemmaCase{"a", "a"},
                      LemmaCase{"is", "be"},  // irregular even when short
                      LemmaCase{"king", "king"},
                      LemmaCase{"sing", "sing"},
                      LemmaCase{"red", "red"}));

TEST(LemmatizerTest, ShortTokensUntouched) {
  EXPECT_EQ(Lemmatize("ab"), "ab");
  EXPECT_EQ(Lemmatize(""), "");
}

TEST(LemmatizerTest, IdempotentOnCommonVocabulary) {
  // Applying the lemmatizer twice should be the same as once for typical
  // nouns (the lemma is a fixed point).
  for (const char* w : {"topics", "tariffs", "elections", "voters",
                        "parties", "companies"}) {
    std::string once = Lemmatize(w);
    EXPECT_EQ(Lemmatize(once), once) << w;
  }
}

}  // namespace
}  // namespace newsdiff::text
