#include "core/cross_validation.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace newsdiff::core {
namespace {

void MakeSeparable(size_t n, size_t dim, la::Matrix* x, std::vector<int>* y) {
  Rng rng(8);
  x->Resize(n, dim);
  y->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    int cls = static_cast<int>(i % 2);
    for (size_t d = 0; d < dim; ++d) {
      (*x)(i, d) = rng.Gaussian(d % 2 == static_cast<size_t>(cls) ? 2.0 : 0.0,
                                0.5);
    }
    (*y)[i] = cls;
  }
}

PredictorOptions FastOptions() {
  PredictorOptions o;
  o.max_epochs = 25;
  o.batch_size = 32;
  o.mlp_hidden = {8};
  o.num_classes = 2;
  o.max_restarts = 0;
  return o;
}

TEST(CrossValidationTest, RejectsBadInput) {
  la::Matrix x(10, 4);
  std::vector<int> y(10, 0);
  EXPECT_FALSE(
      CrossValidate(x, y, NetworkKind::kMlp1, FastOptions(), 1).ok());
  EXPECT_FALSE(
      CrossValidate(x, y, NetworkKind::kMlp1, FastOptions(), 10).ok());
  std::vector<int> wrong(9, 0);
  EXPECT_FALSE(
      CrossValidate(x, wrong, NetworkKind::kMlp1, FastOptions(), 2).ok());
}

TEST(CrossValidationTest, FoldsCoverAllAccuraciesHigh) {
  la::Matrix x;
  std::vector<int> y;
  MakeSeparable(200, 6, &x, &y);
  auto result = CrossValidate(x, y, NetworkKind::kMlp1, FastOptions(), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->folds, 5u);
  ASSERT_EQ(result->fold_accuracies.size(), 5u);
  for (double acc : result->fold_accuracies) {
    EXPECT_GT(acc, 0.85);
  }
  EXPECT_GT(result->mean_accuracy, 0.85);
  EXPECT_GE(result->stddev_accuracy, 0.0);
  EXPECT_LT(result->stddev_accuracy, 0.2);
}

TEST(CrossValidationTest, MeanMatchesFolds) {
  la::Matrix x;
  std::vector<int> y;
  MakeSeparable(120, 4, &x, &y);
  auto result = CrossValidate(x, y, NetworkKind::kMlp2, FastOptions(), 3);
  ASSERT_TRUE(result.ok());
  double sum = 0.0;
  for (double a : result->fold_accuracies) sum += a;
  EXPECT_NEAR(result->mean_accuracy, sum / 3.0, 1e-12);
}

TEST(CrossValidationTest, DeterministicForSeed) {
  la::Matrix x;
  std::vector<int> y;
  MakeSeparable(120, 4, &x, &y);
  auto r1 = CrossValidate(x, y, NetworkKind::kMlp1, FastOptions(), 4);
  auto r2 = CrossValidate(x, y, NetworkKind::kMlp1, FastOptions(), 4);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->fold_accuracies, r2->fold_accuracies);
}

}  // namespace
}  // namespace newsdiff::core
