#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace newsdiff {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 5.5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.5);
  }
}

TEST(RngTest, NextBelowCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanMatchesLambdaSmall) {
  Rng rng(31);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.15);
}

TEST(RngTest, PoissonLargeLambdaUsesNormalApprox) {
  Rng rng(37);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    int v = rng.Poisson(100.0);
    EXPECT_GE(v, 0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(41);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(43);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalZeroWeightNeverPicked) {
  Rng rng(47);
  std::vector<double> w = {0.0, 1.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.Categorical(w), 1u);
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(53);
  const int n = 50000;
  std::vector<int> counts(11, 0);
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.Zipf(10, 1.2);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 10u);
    ++counts[v];
  }
  // Rank 1 must dominate rank 10 heavily.
  EXPECT_GT(counts[1], counts[10] * 5);
  // Monotone-ish decrease between far-apart ranks.
  EXPECT_GT(counts[1], counts[5]);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(59);
  EXPECT_EQ(rng.Zipf(1, 1.5), 1u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(61);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleTinyVectors) {
  Rng rng(67);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(71);
  Rng b = a.Split();
  // The split stream should not replay the parent stream.
  Rng a2(71);
  (void)a2.NextU64();  // align with the Split() consumption
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

/// Property sweep: determinism and unit-interval bounds hold per seed.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, DeterministicAndBounded) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 200; ++i) {
    double va = a.NextDouble();
    double vb = b.NextDouble();
    EXPECT_EQ(va, vb);
    EXPECT_GE(va, 0.0);
    EXPECT_LT(va, 1.0);
  }
}

TEST_P(RngSeedSweep, MeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 2021ull,
                                           0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace newsdiff
