// Tests for the prediction module (§4.8/§5.6): network construction,
// optimizer selection, training on separable data, input validation.
#include <gtest/gtest.h>

#include "core/predictor.h"

namespace newsdiff::core {
namespace {

void MakeSeparable(size_t n, size_t dim, la::Matrix* x, std::vector<int>* y,
                   uint64_t seed = 3) {
  Rng rng(seed);
  x->Resize(n, dim);
  y->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    int cls = static_cast<int>(i % 3);
    double* row = x->RowPtr(i);
    for (size_t d = 0; d < dim; ++d) {
      row[d] = rng.Gaussian(d % 3 == static_cast<size_t>(cls) ? 2.5 : 0.0,
                            0.6);
    }
    (*y)[i] = cls;
  }
}

TEST(NetworkKindTest, NamesAndList) {
  EXPECT_STREQ(NetworkKindName(NetworkKind::kMlp1), "MLP 1");
  EXPECT_STREQ(NetworkKindName(NetworkKind::kCnn2), "CNN 2");
  EXPECT_EQ(AllNetworkKinds().size(), 4u);
}

TEST(BuildNetworkTest, ShapesFollowOptions) {
  PredictorOptions opts;
  opts.mlp_hidden = {32, 16};
  nn::Model mlp = BuildNetwork(NetworkKind::kMlp1, 300, opts);
  EXPECT_EQ(mlp.input_size(), 300u);
  EXPECT_EQ(mlp.output_size(), 3u);
  EXPECT_EQ(mlp.num_layers(), 5u);  // dense relu dense relu dense

  nn::Model cnn = BuildNetwork(NetworkKind::kCnn1, 308, opts);
  EXPECT_EQ(cnn.input_size(), 308u);
  EXPECT_EQ(cnn.output_size(), 3u);
  EXPECT_EQ(cnn.num_layers(), 6u);  // conv relu pool dense relu dense
}

TEST(BuildOptimizerTest, KindSelectsOptimizer) {
  PredictorOptions opts;
  EXPECT_EQ(BuildOptimizer(NetworkKind::kMlp1, opts)->Name(), "SGD");
  EXPECT_EQ(BuildOptimizer(NetworkKind::kCnn1, opts)->Name(), "SGD");
  EXPECT_EQ(BuildOptimizer(NetworkKind::kMlp2, opts)->Name(), "ADADELTA");
  EXPECT_EQ(BuildOptimizer(NetworkKind::kCnn2, opts)->Name(), "ADADELTA");
}

TEST(TrainAndEvaluateTest, RejectsBadInput) {
  la::Matrix x(5, 4);
  std::vector<int> y = {0, 1, 2};
  EXPECT_FALSE(TrainAndEvaluate(x, y, NetworkKind::kMlp1,
                                PredictorOptions{})
                   .ok());
  la::Matrix tiny(4, 4);
  std::vector<int> tiny_y = {0, 1, 2, 0};
  EXPECT_FALSE(TrainAndEvaluate(tiny, tiny_y, NetworkKind::kMlp1,
                                PredictorOptions{})
                   .ok());
}

TEST(TrainAndEvaluateTest, LearnsSeparableData) {
  la::Matrix x;
  std::vector<int> y;
  MakeSeparable(300, 12, &x, &y);
  PredictorOptions opts;
  opts.max_epochs = 40;
  opts.batch_size = 32;
  opts.mlp_hidden = {16};
  auto outcome = TrainAndEvaluate(x, y, NetworkKind::kMlp1, opts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->accuracy, 0.9);
  EXPECT_GE(outcome->average_accuracy, outcome->accuracy);
  EXPECT_EQ(outcome->train_size + outcome->test_size, 300u);
  EXPECT_NEAR(static_cast<double>(outcome->test_size) / 300.0, 0.2, 0.01);
}

TEST(TrainAndEvaluateTest, DeterministicForSeed) {
  la::Matrix x;
  std::vector<int> y;
  MakeSeparable(150, 8, &x, &y);
  PredictorOptions opts;
  opts.max_epochs = 15;
  opts.mlp_hidden = {8};
  auto o1 = TrainAndEvaluate(x, y, NetworkKind::kMlp2, opts);
  auto o2 = TrainAndEvaluate(x, y, NetworkKind::kMlp2, opts);
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_DOUBLE_EQ(o1->accuracy, o2->accuracy);
  EXPECT_EQ(o1->history.epochs_run, o2->history.epochs_run);
}

TEST(TrainAndEvaluateTest, StandardizationHelpsMixedScales) {
  // Feature 0 is the informative one but tiny in magnitude; feature 1 is
  // noise at a huge scale. Standardization should recover the signal.
  Rng rng(4);
  la::Matrix x(200, 2);
  std::vector<int> y(200);
  for (size_t i = 0; i < 200; ++i) {
    int cls = static_cast<int>(i % 3);
    x(i, 0) = 1e-3 * (cls + rng.Gaussian(0.0, 0.2));
    x(i, 1) = rng.Gaussian(0.0, 1000.0);
    y[i] = cls;
  }
  PredictorOptions with;
  with.max_epochs = 60;
  with.mlp_hidden = {8};
  with.standardize = true;
  PredictorOptions without = with;
  without.standardize = false;
  auto o_with = TrainAndEvaluate(x, y, NetworkKind::kMlp1, with);
  auto o_without = TrainAndEvaluate(x, y, NetworkKind::kMlp1, without);
  ASSERT_TRUE(o_with.ok() && o_without.ok());
  EXPECT_GT(o_with->accuracy, o_without->accuracy);
  EXPECT_GT(o_with->accuracy, 0.75);
}

/// Property sweep: every paper network configuration learns the separable
/// dataset well past the majority-class baseline.
class NetworkKindSweep : public ::testing::TestWithParam<NetworkKind> {};

TEST_P(NetworkKindSweep, LearnsSeparableData) {
  la::Matrix x;
  std::vector<int> y;
  MakeSeparable(240, 24, &x, &y, 7);
  PredictorOptions opts;
  opts.max_epochs = 40;
  opts.batch_size = 32;
  opts.mlp_hidden = {16};
  opts.cnn_filters = 4;
  opts.cnn_kernel = 5;
  opts.cnn_pool = 2;
  opts.cnn_dense = 8;
  auto outcome = TrainAndEvaluate(x, y, GetParam(), opts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->accuracy, 0.8)
      << NetworkKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Networks, NetworkKindSweep,
                         ::testing::ValuesIn(AllNetworkKinds()));

}  // namespace
}  // namespace newsdiff::core
