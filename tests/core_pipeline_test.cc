// Integration tests: the full architecture (Fig. 1) on a small synthetic
// world, checking the paper's qualitative findings end-to-end.
#include <filesystem>

#include <gtest/gtest.h>

#include "core/embedding_cache.h"
#include "core/pipeline.h"
#include "datagen/feeds.h"
#include "datagen/world.h"

namespace newsdiff::core {
namespace {

/// One shared small world + embedding store for all integration tests
/// (building them is the expensive part).
class PipelineIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions wopts;
    wopts.seed = 31;
    wopts.num_users = 400;
    wopts.num_articles = 900;
    wopts.num_tweets = 2600;
    wopts.duration_days = 90;
    wopts.num_news_events = 6;
    wopts.num_chatter_events = 3;
    world_ = new datagen::World(datagen::GenerateWorld(wopts));
    db_ = new store::Database();
    world_->LoadInto(*db_);

    PretrainedConfig cfg;
    cfg.dimension = 64;  // small store keeps the suite fast
    cfg.background_sentences = 2500;
    cfg.epochs = 2;
    auto store = LoadOrTrainPretrained("", cfg);
    ASSERT_TRUE(store.ok());
    store_ = new embed::PretrainedStore(std::move(store).value());

    PipelineOptions popts;
    popts.topics.num_topics = 8;
    popts.topics.nmf.max_iterations = 60;
    popts.news_mabed.max_events = 40;
    popts.twitter_mabed.max_events = 60;
    Pipeline pipeline(popts);
    auto result = pipeline.Run(*db_, *store_);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    result_ = new PipelineResult(std::move(result).value());
  }

  static void TearDownTestSuite() {
    delete result_;
    delete store_;
    delete db_;
    delete world_;
    result_ = nullptr;
    store_ = nullptr;
    db_ = nullptr;
    world_ = nullptr;
  }

  static datagen::World* world_;
  static store::Database* db_;
  static embed::PretrainedStore* store_;
  static PipelineResult* result_;
};

datagen::World* PipelineIntegration::world_ = nullptr;
store::Database* PipelineIntegration::db_ = nullptr;
embed::PretrainedStore* PipelineIntegration::store_ = nullptr;
PipelineResult* PipelineIntegration::result_ = nullptr;

TEST_F(PipelineIntegration, AllStagesProduceOutput) {
  EXPECT_EQ(result_->news.size(), 900u);
  EXPECT_EQ(result_->tweets.size(), 2600u);
  EXPECT_EQ(result_->degraded_news, 0u);  // nothing degraded on clean data
  EXPECT_EQ(result_->topics.size(), 8u);
  EXPECT_FALSE(result_->news_events.empty());
  EXPECT_FALSE(result_->twitter_events.empty());
  EXPECT_FALSE(result_->trending.empty());
  EXPECT_FALSE(result_->correlations.empty());
  EXPECT_FALSE(result_->assignments.empty());
}

TEST_F(PipelineIntegration, CorporaAlignWithRecords) {
  EXPECT_EQ(result_->news_tm.size(), result_->news.size());
  EXPECT_EQ(result_->news_ed.size(), result_->news.size());
  EXPECT_EQ(result_->twitter_ed.size(), result_->tweets.size());
}

TEST_F(PipelineIntegration, TrendingSimilaritiesAboveThreshold) {
  for (const TrendingNewsTopic& t : result_->trending) {
    EXPECT_GT(t.similarity, 0.7);
    EXPECT_LT(t.topic_id, result_->topics.size());
    EXPECT_LT(t.news_event, result_->news_events.size());
  }
}

TEST_F(PipelineIntegration, CorrelationsRespectConstraints) {
  for (const EventCorrelation& p : result_->correlations) {
    EXPECT_GT(p.similarity, 0.65);
    const event::Event& news_ev =
        result_->news_events[result_->trending[p.trending].news_event];
    const event::Event& twitter_ev =
        result_->twitter_events[p.twitter_event];
    EXPECT_GE(twitter_ev.start_time, news_ev.start_time);
    EXPECT_LE(twitter_ev.start_time,
              news_ev.start_time + 5 * kSecondsPerDay);
  }
}

TEST_F(PipelineIntegration, ReverseCorrelationIdentical) {
  auto reverse = CorrelateTwitterWithTrending(
      result_->trending, result_->news_events, result_->twitter_events,
      *store_, CorrelationOptions{});
  ASSERT_EQ(reverse.size(), result_->correlations.size());
  for (size_t i = 0; i < reverse.size(); ++i) {
    EXPECT_EQ(reverse[i].trending, result_->correlations[i].trending);
    EXPECT_EQ(reverse[i].twitter_event,
              result_->correlations[i].twitter_event);
  }
}

TEST_F(PipelineIntegration, UnrelatedPlusRelatedCoverAllEvents) {
  std::vector<bool> seen(result_->twitter_events.size(), false);
  for (size_t idx : result_->unrelated_twitter_events) {
    ASSERT_LT(idx, seen.size());
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
  size_t related = 0;
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) ++related;
  }
  EXPECT_EQ(related + result_->unrelated_twitter_events.size(),
            result_->twitter_events.size());
  EXPECT_EQ(related, result_->CorrelatedTwitterEventIndices().size());
}

TEST_F(PipelineIntegration, AssignmentsMeetMinimumSupport) {
  for (const EventTweetAssignment& a : result_->assignments) {
    EXPECT_GE(a.tweet_indices.size(), 10u);
    const event::Event& ev = result_->twitter_events[a.twitter_event];
    for (size_t tweet_idx : a.tweet_indices) {
      EXPECT_TRUE(event::Mabed::DocumentBelongsToEvent(
          result_->twitter_ed.doc(tweet_idx), ev, 0.2));
    }
  }
}

TEST_F(PipelineIntegration, DatasetsBuildForEveryVariantAndTrain) {
  TrainingDataset a1 =
      BuildDataset(DatasetVariant::kA1, result_->assignments,
                   result_->twitter_events, result_->twitter_ed,
                   result_->tweets, *store_);
  TrainingDataset a2 =
      BuildDataset(DatasetVariant::kA2, result_->assignments,
                   result_->twitter_events, result_->twitter_ed,
                   result_->tweets, *store_);
  ASSERT_GT(a1.x.rows(), 50u);
  EXPECT_EQ(a1.feature_dim, 64u);
  EXPECT_EQ(a2.feature_dim, 64u + 8u);

  PredictorOptions opts;
  opts.max_epochs = 40;
  opts.mlp_hidden = {24};
  auto o1 = TrainAndEvaluate(a1.x, a1.likes, NetworkKind::kMlp1, opts);
  auto o2 = TrainAndEvaluate(a2.x, a2.likes, NetworkKind::kMlp1, opts);
  ASSERT_TRUE(o1.ok() && o2.ok());
  // Both beat the trivial 1/3 baseline; metadata at least matches content.
  EXPECT_GT(o1->accuracy, 0.45);
  EXPECT_GE(o2->accuracy, o1->accuracy - 0.03);
}

TEST_F(PipelineIntegration, TimingsRecorded) {
  EXPECT_GT(result_->topic_seconds, 0.0);
  EXPECT_GT(result_->news_event_seconds, 0.0);
  EXPECT_GT(result_->twitter_event_seconds, 0.0);
  EXPECT_GE(result_->assignment_seconds, 0.0);
}

TEST(PipelineIntegration2, CrawledStoreGivesIdenticalAnalysis) {
  // The feed crawler (simulated NewsAPI/Twitter clients + scraper) must
  // produce a store whose analysis matches the direct bulk load.
  datagen::WorldOptions wopts;
  wopts.seed = 77;
  wopts.num_users = 200;
  wopts.num_articles = 400;
  wopts.num_tweets = 1200;
  wopts.duration_days = 40;
  wopts.num_news_events = 4;
  wopts.num_chatter_events = 2;
  datagen::World world = datagen::GenerateWorld(wopts);

  store::Database direct;
  world.LoadInto(direct);
  store::Database crawled;
  datagen::FeedCrawler crawler(world, crawled);
  crawler.CrawlUntil(wopts.start_time + 41 * kSecondsPerDay);

  PretrainedConfig cfg;
  cfg.dimension = 32;
  cfg.background_sentences = 1200;
  cfg.epochs = 1;
  auto store = LoadOrTrainPretrained("", cfg);
  ASSERT_TRUE(store.ok());

  PipelineOptions popts;
  popts.topics.num_topics = 6;
  popts.topics.nmf.max_iterations = 40;
  popts.news_mabed.max_events = 20;
  popts.twitter_mabed.max_events = 30;
  Pipeline pipeline(popts);
  auto a = pipeline.Run(direct, *store);
  auto b = pipeline.Run(crawled, *store);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->news.size(), b->news.size());
  EXPECT_EQ(a->tweets.size(), b->tweets.size());
  ASSERT_EQ(a->news_events.size(), b->news_events.size());
  for (size_t i = 0; i < a->news_events.size(); ++i) {
    EXPECT_EQ(a->news_events[i].main_word, b->news_events[i].main_word);
  }
  ASSERT_EQ(a->twitter_events.size(), b->twitter_events.size());
  EXPECT_EQ(a->correlations.size(), b->correlations.size());
}

TEST(PipelineErrorsTest, EmptyStoreFails) {
  store::Database db;
  PretrainedConfig cfg;
  cfg.dimension = 8;
  cfg.background_sentences = 200;
  cfg.epochs = 1;
  auto store = LoadOrTrainPretrained("", cfg);
  ASSERT_TRUE(store.ok());
  Pipeline pipeline{PipelineOptions{}};
  EXPECT_FALSE(pipeline.Run(db, *store).ok());
}

TEST(EmbeddingCacheTest, TrainSaveLoadRoundTrip) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "newsdiff_cache_test.txt").string();
  fs::remove(path);
  PretrainedConfig cfg;
  cfg.dimension = 16;
  cfg.background_sentences = 400;
  cfg.epochs = 1;
  auto first = LoadOrTrainPretrained(path, cfg);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(fs::exists(path));
  auto second = LoadOrTrainPretrained(path, cfg);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->size(), second->size());
  EXPECT_EQ(first->dimension(), second->dimension());
  // A dimension mismatch invalidates the cache and retrains.
  PretrainedConfig other = cfg;
  other.dimension = 8;
  auto retrained = LoadOrTrainPretrained(path, other);
  ASSERT_TRUE(retrained.ok());
  EXPECT_EQ(retrained->dimension(), 8u);
  fs::remove(path);
}

}  // namespace
}  // namespace newsdiff::core
