// Lease tests: single-writer exclusion over a store directory — contention
// fails fast, an expired lease is taken over, and the fencing token makes a
// stale writer's renewals (and, through the write gate, its WAL syncs)
// fail instead of interleaving with the new holder's writes.
#include "store/lease.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/retry.h"
#include "store/database.h"
#include "store/wal.h"

namespace newsdiff::store {
namespace {

namespace fs = std::filesystem;

class LeaseFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_lease_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  LeaseOptions With(Clock* clock, const std::string& owner) const {
    LeaseOptions options;
    options.clock = clock;
    options.owner = owner;
    return options;
  }

  fs::path dir_;
};

TEST(LeaseRecordTest, SerializeParseRoundTrip) {
  LeaseRecord record;
  record.owner = "pipeline-7";
  record.token = 42;
  record.expires_ms = 123456789;
  StatusOr<LeaseRecord> parsed = ParseLeaseRecord(SerializeLeaseRecord(record));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->owner, "pipeline-7");
  EXPECT_EQ(parsed->token, 42u);
  EXPECT_EQ(parsed->expires_ms, 123456789);
}

TEST(LeaseRecordTest, ParseRejectsDamage) {
  LeaseRecord record;
  record.owner = "w";
  record.token = 1;
  record.expires_ms = 1000;
  const std::string pristine = SerializeLeaseRecord(record);
  EXPECT_FALSE(ParseLeaseRecord("").ok());
  EXPECT_FALSE(ParseLeaseRecord("not a lease").ok());
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string damaged = pristine;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x2a);
    StatusOr<LeaseRecord> parsed = ParseLeaseRecord(damaged);
    if (!parsed.ok()) continue;  // detected, fine
    // The CRC trailer makes undetected single-byte damage impossible.
    ADD_FAILURE() << "flip at byte " << i << " parsed cleanly";
  }
}

TEST_F(LeaseFixture, LeaseFreshAcquireGetsTokenOne) {
  ManualClock clock;
  StatusOr<Lease> lease = Lease::Acquire(dir(), With(&clock, "a"));
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(lease->token(), 1u);
  EXPECT_TRUE(lease->Check().ok());
  EXPECT_TRUE(lease->Renew().ok());
}

TEST_F(LeaseFixture, LeaseContentionFailsFast) {
  ManualClock clock;
  StatusOr<Lease> holder = Lease::Acquire(dir(), With(&clock, "a"));
  ASSERT_TRUE(holder.ok());
  StatusOr<Lease> contender = Lease::Acquire(dir(), With(&clock, "b"));
  ASSERT_FALSE(contender.ok());
  EXPECT_EQ(contender.status().code(), StatusCode::kUnavailable);
  // The error tells the operator who holds it.
  EXPECT_NE(contender.status().message().find("a"), std::string::npos);
}

TEST_F(LeaseFixture, LeaseWaiterTakesOverOnceTtlExpires) {
  // One ManualClock shared by both writers: the waiter's poll sleeps
  // advance simulated time past the holder's expiry, at which point the
  // wait converts into a takeover.
  ManualClock clock;
  LeaseOptions a = With(&clock, "a");
  a.ttl_ms = 1'000;
  StatusOr<Lease> holder = Lease::Acquire(dir(), a);
  ASSERT_TRUE(holder.ok());

  LeaseOptions b = With(&clock, "b");
  b.wait_ms = 5'000;
  b.poll_ms = 100;
  StatusOr<Lease> waiter = Lease::Acquire(dir(), b);
  ASSERT_TRUE(waiter.ok());
  EXPECT_EQ(waiter->token(), 2u);
  // The dead holder's handle is now fenced.
  EXPECT_EQ(holder->Check().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LeaseFixture, LeaseExpiryTakeoverFencesTheStaleWriter) {
  ManualClock clock;
  LeaseOptions a = With(&clock, "a");
  a.ttl_ms = 1'000;
  StatusOr<Lease> stale = Lease::Acquire(dir(), a);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->token(), 1u);

  clock.Advance(1'500);  // "a" stops renewing; its lease expires
  StatusOr<Lease> takeover = Lease::Acquire(dir(), With(&clock, "b"));
  ASSERT_TRUE(takeover.ok());
  EXPECT_EQ(takeover->token(), 2u);

  // The old holder wakes up: every path it could write through must fail.
  Status check = stale->Check();
  EXPECT_EQ(check.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(check.message().find("fenced"), std::string::npos);
  EXPECT_EQ(stale->Renew().code(), StatusCode::kFailedPrecondition);
  // The new holder is unaffected.
  EXPECT_TRUE(takeover->Check().ok());
  EXPECT_TRUE(takeover->Renew().ok());
}

TEST_F(LeaseFixture, LeaseWriteGateStopsAFencedWalSync) {
  ManualClock clock;
  LeaseOptions a = With(&clock, "a");
  a.ttl_ms = 1'000;
  StatusOr<Lease> stale = Lease::Acquire(dir(), a);
  ASSERT_TRUE(stale.ok());

  WalOptions wal;
  wal.sync_every_records = 1;
  wal.write_gate = [&]() { return stale->Check(); };
  Database db;
  ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
  Collection& c = db.GetOrCreate("articles");
  ASSERT_TRUE(c.Insert(MakeObject({{"k", static_cast<int64_t>(0)}})).ok());
  ASSERT_TRUE(db.WalSync().ok());  // still the holder: writes flow

  clock.Advance(1'500);
  StatusOr<Lease> takeover = Lease::Acquire(dir(), With(&clock, "b"));
  ASSERT_TRUE(takeover.ok());

  // The stale writer keeps mutating its in-memory store, but nothing may
  // reach the shared log: the gate fails the sync before any append.
  const size_t synced_before = db.wal()->stats().records_synced;
  ASSERT_TRUE(c.Insert(MakeObject({{"k", static_cast<int64_t>(1)}})).ok());
  Status sync = db.WalSync();
  EXPECT_EQ(sync.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.wal()->stats().records_synced, synced_before);
}

TEST_F(LeaseFixture, LeaseReleaseLetsTheNextWriterAcquireImmediately) {
  ManualClock clock;
  StatusOr<Lease> first = Lease::Acquire(dir(), With(&clock, "a"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Release().ok());
  // No TTL wait: the file is gone, so "b" claims instantly. The token
  // high-water mark survives the release, so the fencing token still
  // advances past the released one.
  StatusOr<Lease> second = Lease::Acquire(dir(), With(&clock, "b"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->token(), 2u);
}

TEST_F(LeaseFixture, LeaseCorruptFileIsClaimable) {
  ManualClock clock;
  StatusOr<Lease> holder = Lease::Acquire(dir(), With(&clock, "a"));
  ASSERT_TRUE(holder.ok());
  {
    std::ofstream out(dir_ / Lease::FileName(),
                      std::ios::trunc | std::ios::binary);
    out << "garbage that is not a lease record";
  }
  // Corruption means the holder's last renewal never landed intact; the
  // file is treated as absent and claimed without waiting. The token
  // high-water mark keeps the fencing token monotonic even though the
  // incumbent's token is unreadable.
  StatusOr<Lease> next = Lease::Acquire(dir(), With(&clock, "b"));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->token(), 2u);
  EXPECT_EQ(holder->Check().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// TTL boundary semantics (see the contract in store/lease.h). Promotion
// correctness leans on these exact edges, so they are pinned here.

TEST_F(LeaseFixture, LeaseBoundaryTakeoverAllowedExactlyAtExpiry) {
  ManualClock clock;
  LeaseOptions a = With(&clock, "a");
  a.ttl_ms = 1'000;
  StatusOr<Lease> holder = Lease::Acquire(dir(), a);
  ASSERT_TRUE(holder.ok());

  // One tick before expiry the lease is still live: contention fails fast.
  clock.Advance(999);
  StatusOr<Lease> early = Lease::Acquire(dir(), With(&clock, "b"));
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kUnavailable);

  // At exactly `expires_ms` the holder is presumed dead: takeover allowed.
  clock.Advance(1);
  StatusOr<Lease> takeover = Lease::Acquire(dir(), With(&clock, "b"));
  ASSERT_TRUE(takeover.ok());
  EXPECT_EQ(takeover->token(), 2u);
  EXPECT_EQ(holder->Check().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LeaseFixture, LeaseBoundaryExpiredButUntakenStillBelongsToHolder) {
  ManualClock clock;
  LeaseOptions a = With(&clock, "a");
  a.ttl_ms = 1'000;
  StatusOr<Lease> holder = Lease::Acquire(dir(), a);
  ASSERT_TRUE(holder.ok());

  // Expiry alone does not fence: Check and Renew compare tokens only, so
  // the incumbent may resurrect its own expired lease right up until
  // someone else claims it.
  clock.Advance(5'000);
  EXPECT_TRUE(holder->Check().ok());
  ASSERT_TRUE(holder->Renew().ok());

  // The renewal restored a live TTL; a contender is locked out again.
  StatusOr<Lease> contender = Lease::Acquire(dir(), With(&clock, "b"));
  ASSERT_FALSE(contender.ok());
  EXPECT_EQ(contender.status().code(), StatusCode::kUnavailable);
}

TEST_F(LeaseFixture, LeaseBoundaryFencedRenewAndReleaseLeaveFileIntact) {
  ManualClock clock;
  LeaseOptions a = With(&clock, "a");
  a.ttl_ms = 1'000;
  StatusOr<Lease> stale = Lease::Acquire(dir(), a);
  ASSERT_TRUE(stale.ok());
  clock.Advance(1'000);
  StatusOr<Lease> takeover = Lease::Acquire(dir(), With(&clock, "b"));
  ASSERT_TRUE(takeover.ok());

  // The fenced holder can neither renew nor release: both check the token
  // first, so the new holder's lease file is never touched.
  EXPECT_EQ(stale->Renew().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(stale->Release().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(takeover->Check().ok());
  EXPECT_TRUE(takeover->Renew().ok());
}

TEST_F(LeaseFixture, LeaseBoundaryHighWaterKeepsTokensMonotonicThroughCorruption) {
  ManualClock clock;
  LeaseOptions a = With(&clock, "a");
  a.ttl_ms = 1'000;
  StatusOr<Lease> first = Lease::Acquire(dir(), a);  // token 1
  ASSERT_TRUE(first.ok());
  clock.Advance(1'000);
  LeaseOptions b = With(&clock, "b");
  b.ttl_ms = 1'000;
  StatusOr<Lease> second = Lease::Acquire(dir(), b);  // token 2 fences "a"
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->token(), 2u);

  // The lease file rots away entirely. Without the high-water mark the next
  // claimant would restart at token 1 — handing the long-fenced "a" its own
  // token back and re-opening split brain.
  {
    std::ofstream out(dir_ / Lease::FileName(),
                      std::ios::trunc | std::ios::binary);
    out << "garbage";
  }
  StatusOr<Lease> third = Lease::Acquire(dir(), With(&clock, "c"));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->token(), 3u);
  EXPECT_EQ(first->Check().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(second->Check().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LeaseFixture, LeaseBoundaryMissingHighWaterFallsBackToIncumbentToken) {
  ManualClock clock;
  LeaseOptions a = With(&clock, "a");
  a.ttl_ms = 1'000;
  StatusOr<Lease> first = Lease::Acquire(dir(), a);
  ASSERT_TRUE(first.ok());
  // A corrupt or missing mark is treated as absent; the incumbent's token
  // still bounds the claim, so fencing is preserved.
  fs::remove(dir_ / Lease::HighWaterFileName());
  clock.Advance(1'000);
  StatusOr<Lease> second = Lease::Acquire(dir(), With(&clock, "b"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->token(), 2u);
  EXPECT_EQ(first->Check().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace newsdiff::store
