// Deterministic fuzz-style robustness tests: parsers and tokenizers must
// never crash on arbitrary bytes, and whatever the JSON parser accepts must
// survive a re-serialisation round trip.
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/faults.h"
#include "store/json.h"
#include "store/snapshot.h"
#include "text/lemmatizer.h"
#include "text/ner.h"
#include "text/pipeline.h"

namespace newsdiff {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  size_t len = rng.NextBelow(max_len + 1);
  std::string s(len, '\0');
  for (char& c : s) c = static_cast<char>(rng.NextBelow(256));
  return s;
}

std::string RandomJsonish(Rng& rng, size_t max_len) {
  // Bytes drawn from JSON's structural alphabet: more likely to get deep
  // into the parser than raw bytes.
  static const char kAlphabet[] = "{}[]\",:0123456789.eE+-truefalsn \\u\n";
  size_t len = rng.NextBelow(max_len + 1);
  std::string s(len, '\0');
  for (char& c : s) c = kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
  return s;
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, JsonParserNeverCrashesAndAcceptedInputsRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    std::string input = trial % 2 == 0 ? RandomBytes(rng, 64)
                                       : RandomJsonish(rng, 64);
    StatusOr<store::Value> parsed = store::ParseJson(input);
    if (parsed.ok()) {
      // Anything accepted must survive serialise -> parse -> equality.
      std::string json = store::ToJson(*parsed);
      StatusOr<store::Value> again = store::ParseJson(json);
      ASSERT_TRUE(again.ok()) << "re-parse failed for: " << json;
      EXPECT_TRUE(again->Equals(*parsed)) << json;
    }
  }
}

// A random well-formed document, the kind a feed would actually serve.
store::Value RandomDocument(Rng& rng, int depth = 0) {
  switch (depth >= 3 ? rng.NextBelow(4) : rng.NextBelow(6)) {
    case 0:
      return store::Value();  // null
    case 1:
      return store::Value(rng.NextBelow(2) == 0);
    case 2:
      return store::Value(static_cast<int64_t>(rng.NextBelow(1u << 30)) -
                          (1 << 29));
    case 3: {
      std::string s(rng.NextBelow(12), '\0');
      static const char kChars[] =
          "abcdefghijklmnopqrstuvwxyz0123456789 \"\\\n\t";
      for (char& c : s) c = kChars[rng.NextBelow(sizeof(kChars) - 1)];
      return store::Value(std::move(s));
    }
    case 4: {
      store::Array arr;
      size_t n = rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i) {
        arr.push_back(RandomDocument(rng, depth + 1));
      }
      return store::Value(std::move(arr));
    }
    default: {
      store::Value obj;
      size_t n = rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i) {
        obj.Set("field" + std::to_string(i), RandomDocument(rng, depth + 1));
      }
      return obj.is_null() ? store::Value(store::Object{}) : obj;
    }
  }
}

TEST_P(FuzzSweep, CorruptedFeedPayloadsFailCleanlyWithParseError) {
  Rng rng(GetParam() + 3);
  datagen::FaultOptions fopts;
  fopts.seed = GetParam();
  datagen::FaultInjector injector(fopts);
  for (int trial = 0; trial < 400; ++trial) {
    std::string json = store::ToJson(RandomDocument(rng));
    std::string corrupted = injector.CorruptPayload(json);
    // Truncated / bit-flipped wire payloads must never crash the parser:
    // either it still parses (the damage hit only insignificant bytes or
    // produced a different valid document) or it reports kParseError.
    StatusOr<store::Value> parsed = store::ParseJson(corrupted);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError)
          << "input: " << corrupted;
      EXPECT_FALSE(parsed.status().message().empty());
    } else {
      std::string rejson = store::ToJson(*parsed);
      StatusOr<store::Value> again = store::ParseJson(rejson);
      ASSERT_TRUE(again.ok()) << rejson;
      EXPECT_TRUE(again->Equals(*parsed)) << rejson;
    }
  }
}

TEST_P(FuzzSweep, TextPipelinesNeverCrash) {
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = RandomBytes(rng, 120);
    // All three recipes plus the NER helpers on arbitrary bytes.
    auto a = text::PreprocessNewsTM(input);
    auto b = text::PreprocessNewsED(input);
    auto c = text::PreprocessTwitterED(input);
    auto entities = text::ExtractEntities(input);
    std::string folded = text::FoldEntities(input);
    // Tokens never contain raw whitespace.
    for (const auto& tokens : {a, b, c}) {
      for (const std::string& tok : tokens) {
        EXPECT_EQ(tok.find(' '), std::string::npos);
        EXPECT_FALSE(tok.empty());
      }
    }
  }
}

TEST_P(FuzzSweep, LemmatizerTotalOnArbitraryLowercase) {
  Rng rng(GetParam() + 2);
  for (int trial = 0; trial < 500; ++trial) {
    size_t len = rng.NextBelow(16);
    std::string word(len, 'a');
    for (char& c : word) {
      c = static_cast<char>('a' + rng.NextBelow(26));
    }
    std::string lemma = text::Lemmatize(word);
    EXPECT_FALSE(len > 0 && lemma.empty()) << word;
  }
}

store::Manifest RandomManifest(Rng& rng) {
  store::Manifest m;
  m.generation = rng.NextBelow(1u << 20) + 1;
  size_t n = rng.NextBelow(5);
  for (size_t i = 0; i < n; ++i) {
    store::ManifestEntry e;
    e.collection = "coll" + std::to_string(i);
    e.file = store::SnapshotCollectionFileName(e.collection, m.generation);
    e.docs = rng.NextBelow(10000);
    e.crc32 = static_cast<uint32_t>(rng.NextBelow(1u << 31));
    m.entries.push_back(std::move(e));
  }
  return m;
}

TEST_P(FuzzSweep, ManifestParserTotalOnArbitraryBytes) {
  Rng rng(GetParam() + 4);
  for (int trial = 0; trial < 400; ++trial) {
    std::string input = RandomBytes(rng, 200);
    StatusOr<store::Manifest> parsed = store::ParseManifest(input);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << input;
    }
  }
}

TEST_P(FuzzSweep, EverySingleByteFlipOfManifestIsRejected) {
  // The self-CRC must catch ANY one-byte change to a committed manifest —
  // this is what lets recovery trust a manifest that parses.
  Rng rng(GetParam() + 5);
  store::Manifest m = RandomManifest(rng);
  const std::string bytes = store::SerializeManifest(m);
  ASSERT_TRUE(store::ParseManifest(bytes).ok());
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (uint8_t flip : {0x01, 0x80}) {
      std::string damaged = bytes;
      damaged[pos] = static_cast<char>(damaged[pos] ^ flip);
      StatusOr<store::Manifest> parsed = store::ParseManifest(damaged);
      EXPECT_FALSE(parsed.ok())
          << "byte " << pos << " xor " << int(flip) << " went unnoticed";
    }
  }
}

TEST_P(FuzzSweep, WireCorruptedManifestsNeverCrashTheParser) {
  Rng rng(GetParam() + 6);
  datagen::FaultOptions fopts;
  fopts.seed = GetParam() + 7;
  datagen::FaultInjector injector(fopts);
  for (int trial = 0; trial < 200; ++trial) {
    store::Manifest m = RandomManifest(rng);
    std::string corrupted = injector.CorruptPayload(store::SerializeManifest(m));
    StatusOr<store::Manifest> parsed = store::ParseManifest(corrupted);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
      EXPECT_FALSE(parsed.status().message().empty());
    } else {
      // Accepted despite the mangling: the damage must have been a no-op
      // (CorruptPayload occasionally returns the payload unchanged).
      EXPECT_EQ(parsed->generation, m.generation);
      EXPECT_EQ(parsed->entries.size(), m.entries.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(101ull, 202ull, 303ull));

}  // namespace
}  // namespace newsdiff
