#include <gtest/gtest.h>

#include "store/collection.h"

namespace newsdiff::store {
namespace {

Collection Scored() {
  Collection coll("scored");
  coll.Insert(MakeObject({{"name", "c"}, {"score", 30}}));
  coll.Insert(MakeObject({{"name", "a"}, {"score", 10}}));
  coll.Insert(MakeObject({{"name", "d"}, {"score", 40}}));
  coll.Insert(MakeObject({{"name", "b"}, {"score", 20}}));
  return coll;
}

TEST(FindOptionsTest, SortAscendingAndDescending) {
  Collection coll = Scored();
  FindOptions asc;
  asc.sort_field = "score";
  auto docs = coll.Find(Filter(), asc);
  ASSERT_EQ(docs.size(), 4u);
  EXPECT_EQ(docs[0].Find("name")->AsString(), "a");
  EXPECT_EQ(docs[3].Find("name")->AsString(), "d");

  FindOptions desc = asc;
  desc.descending = true;
  docs = coll.Find(Filter(), desc);
  EXPECT_EQ(docs[0].Find("name")->AsString(), "d");
}

TEST(FindOptionsTest, SkipAndLimitPaginate) {
  Collection coll = Scored();
  FindOptions page;
  page.sort_field = "score";
  page.skip = 1;
  page.limit = 2;
  auto docs = coll.Find(Filter(), page);
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].Find("name")->AsString(), "b");
  EXPECT_EQ(docs[1].Find("name")->AsString(), "c");
}

TEST(FindOptionsTest, SkipPastEndYieldsEmpty) {
  Collection coll = Scored();
  FindOptions opts;
  opts.skip = 10;
  EXPECT_TRUE(coll.Find(Filter(), opts).empty());
}

TEST(FindOptionsTest, MissingSortFieldSortsFirst) {
  Collection coll = Scored();
  coll.Insert(MakeObject({{"name", "nosort"}}));
  FindOptions opts;
  opts.sort_field = "score";
  auto docs = coll.Find(Filter(), opts);
  EXPECT_EQ(docs.front().Find("name")->AsString(), "nosort");
}

TEST(FindOptionsTest, ProjectionKeepsIdAndSelected) {
  Collection coll = Scored();
  FindOptions opts;
  opts.projection = {"name"};
  auto docs = coll.Find(Filter(), opts);
  for (const Value& doc : docs) {
    EXPECT_NE(doc.Find("name"), nullptr);
    EXPECT_NE(doc.Find("_id"), nullptr);
    EXPECT_EQ(doc.Find("score"), nullptr);
  }
}

TEST(FindOptionsTest, CombinesWithFilter) {
  Collection coll = Scored();
  FindOptions opts;
  opts.sort_field = "score";
  opts.descending = true;
  opts.limit = 1;
  auto docs = coll.Find(Filter().Lt("score", Value(int64_t{35})), opts);
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].Find("name")->AsString(), "c");
}

TEST(CountByTest, GroupsAndCounts) {
  Collection coll("events");
  coll.Insert(MakeObject({{"theme", "brexit"}, {"likes", 1}}));
  coll.Insert(MakeObject({{"theme", "brexit"}, {"likes", 2}}));
  coll.Insert(MakeObject({{"theme", "tariffs"}, {"likes", 3}}));
  coll.Insert(MakeObject({{"likes", 4}}));  // missing theme
  auto groups = coll.CountBy(Filter(), "theme");
  EXPECT_EQ(groups["\"brexit\""], 2u);
  EXPECT_EQ(groups["\"tariffs\""], 1u);
  EXPECT_EQ(groups["null"], 1u);
}

TEST(CountByTest, RespectsFilter) {
  Collection coll("events");
  coll.Insert(MakeObject({{"theme", "a"}, {"likes", 10}}));
  coll.Insert(MakeObject({{"theme", "a"}, {"likes", 2000}}));
  auto groups =
      coll.CountBy(Filter().Gt("likes", Value(int64_t{100})), "theme");
  EXPECT_EQ(groups["\"a\""], 1u);
}

TEST(UpsertTest, InsertsWhenNoMatch) {
  Collection coll("state");
  auto id = coll.Upsert(Filter().Eq("key", Value("cursor")),
                        MakeObject({{"key", "cursor"}, {"value", 5}}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(coll.size(), 1u);
  EXPECT_EQ(coll.Get(*id)->Find("value")->AsInt(), 5);
}

TEST(UpsertTest, ReplacesExistingPreservingId) {
  Collection coll("state");
  coll.Insert(MakeObject({{"key", "cursor"}, {"value", 5}, {"old", true}}));
  auto id = coll.Upsert(Filter().Eq("key", Value("cursor")),
                        MakeObject({{"key", "cursor"}, {"value", 9}}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);
  EXPECT_EQ(coll.size(), 1u);
  StatusOr<Value> doc = coll.Get(0);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("value")->AsInt(), 9);
  EXPECT_EQ(doc->Find("old"), nullptr);  // full replacement
  EXPECT_EQ(doc->Find("_id")->AsInt(), 0);
}

TEST(UpsertTest, KeepsIndexesConsistent) {
  Collection coll("state");
  coll.CreateIndex("key");
  coll.Insert(MakeObject({{"key", "a"}, {"value", 1}}));
  coll.Upsert(Filter().Eq("key", Value("a")),
              MakeObject({{"key", "b"}, {"value", 2}}));
  EXPECT_EQ(coll.Count(Filter().Eq("key", Value("a"))), 0u);
  EXPECT_EQ(coll.Count(Filter().Eq("key", Value("b"))), 1u);
}

TEST(UpsertTest, RejectsNonObject) {
  Collection coll("state");
  EXPECT_FALSE(coll.Upsert(Filter(), Value(5)).ok());
}

}  // namespace
}  // namespace newsdiff::store
