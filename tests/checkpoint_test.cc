#include "core/checkpoint.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace newsdiff::core {
namespace {

PipelineResult MakeResult() {
  PipelineResult r;
  topic::Topic t;
  t.id = 3;
  t.keywords = {"brexit", "vote"};
  t.weights = {0.9, 0.5};
  r.topics.push_back(t);

  event::Event ne;
  ne.main_word = "election";
  ne.related_words = {"vote", "poll"};
  ne.related_weights = {0.9, 0.8};
  ne.start_time = 1000;
  ne.end_time = 2000;
  ne.magnitude = 42.5;
  ne.support = 17;
  r.news_events.push_back(ne);

  event::Event te;
  te.main_word = "brexit";
  te.related_words = {"leave"};
  te.related_weights = {0.75};
  te.start_time = 1500;
  te.end_time = 2500;
  r.twitter_events.push_back(te);

  r.trending.push_back({3, 0, 0.88});
  r.correlations.push_back({0, 0, 0.72});
  return r;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  PipelineResult result = MakeResult();
  store::Database db;
  ASSERT_TRUE(SaveCheckpoint(result, db).ok());

  auto loaded = LoadCheckpoint(db);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->topics.size(), 1u);
  EXPECT_EQ(loaded->topics[0].id, 3u);
  EXPECT_EQ(loaded->topics[0].keywords,
            (std::vector<std::string>{"brexit", "vote"}));
  EXPECT_DOUBLE_EQ(loaded->topics[0].weights[0], 0.9);

  ASSERT_EQ(loaded->news_events.size(), 1u);
  const event::Event& ne = loaded->news_events[0];
  EXPECT_EQ(ne.main_word, "election");
  EXPECT_EQ(ne.related_words, (std::vector<std::string>{"vote", "poll"}));
  EXPECT_EQ(ne.start_time, 1000);
  EXPECT_EQ(ne.end_time, 2000);
  EXPECT_DOUBLE_EQ(ne.magnitude, 42.5);
  EXPECT_EQ(ne.support, 17u);

  ASSERT_EQ(loaded->twitter_events.size(), 1u);
  EXPECT_EQ(loaded->twitter_events[0].main_word, "brexit");

  ASSERT_EQ(loaded->trending.size(), 1u);
  EXPECT_EQ(loaded->trending[0].topic_id, 3u);
  EXPECT_DOUBLE_EQ(loaded->trending[0].similarity, 0.88);

  ASSERT_EQ(loaded->correlations.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded->correlations[0].similarity, 0.72);
}

TEST(CheckpointTest, SaveReplacesPreviousCheckpoint) {
  PipelineResult first = MakeResult();
  store::Database db;
  ASSERT_TRUE(SaveCheckpoint(first, db).ok());

  PipelineResult second = MakeResult();
  second.topics[0].keywords = {"huawei"};
  second.news_events.push_back(second.news_events[0]);
  ASSERT_TRUE(SaveCheckpoint(second, db).ok());

  auto loaded = LoadCheckpoint(db);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->topics.size(), 1u);
  EXPECT_EQ(loaded->topics[0].keywords,
            (std::vector<std::string>{"huawei"}));
  EXPECT_EQ(loaded->news_events.size(), 2u);
}

TEST(CheckpointTest, LoadWithoutCheckpointFails) {
  store::Database db;
  StatusOr<CheckpointData> loaded = LoadCheckpoint(db);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, SurvivesDiskRoundTrip) {
  namespace fs = std::filesystem;
  PipelineResult result = MakeResult();
  store::Database db;
  ASSERT_TRUE(SaveCheckpoint(result, db).ok());
  fs::path dir = fs::temp_directory_path() / "newsdiff_ckpt_test";
  fs::remove_all(dir);
  ASSERT_TRUE(db.SaveToDir(dir.string()).ok());

  store::Database restored;
  ASSERT_TRUE(restored.LoadFromDir(dir.string()).ok());
  auto loaded = LoadCheckpoint(restored);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->news_events[0].main_word, "election");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace newsdiff::core
