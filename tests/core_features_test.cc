// Tests for the feature-creation module (§4.7): tweet-event assignment,
// the eight dataset variants, and the metadata vector layout.
#include <gtest/gtest.h>

#include "core/features.h"
#include "datagen/world.h"

namespace newsdiff::core {
namespace {

embed::PretrainedStore TinyStore() {
  std::unordered_map<std::string, std::vector<double>> table;
  table["quake"] = {1, 0, 0, 0};
  table["rescue"] = {0, 1, 0, 0};
  table["city"] = {0, 0, 1, 0};
  table["filler"] = {0, 0, 0, 1};
  return embed::PretrainedStore(embed::WordVectors(4, std::move(table)));
}

struct Fixture {
  corpus::Corpus corp;
  std::vector<event::Event> events;
  std::vector<TweetRecord> tweets;

  Fixture() {
    // Tweets 0-11 belong to the event window; tweet 12 lacks the main word;
    // tweet 13 is outside the window.
    for (int i = 0; i < 12; ++i) {
      corp.AddDocument({"quake", "rescue", "filler"}, 100 + i, i);
      TweetRecord rec;
      rec.id = i;
      rec.created = 100 + i;
      rec.likes = i < 6 ? 50 : 500;           // classes 0 and 1
      rec.retweets = i < 6 ? 5 : 2000;        // classes 0 and 2
      rec.followers = i % 2 == 0 ? 50 : 5000; // classes 0 and 2
      rec.follower_class = ::newsdiff::datagen::EncodeCountClass(rec.followers);
      rec.follower_bucket = ::newsdiff::datagen::FollowerBucket7(rec.followers);
      tweets.push_back(rec);
    }
    corp.AddDocument({"rescue", "city"}, 105, 12);
    TweetRecord no_main;
    no_main.id = 12;
    no_main.created = 105;
    tweets.push_back(no_main);
    corp.AddDocument({"quake", "rescue"}, 9999, 13);
    TweetRecord late;
    late.id = 13;
    late.created = 9999;
    tweets.push_back(late);

    event::Event ev;
    ev.main_word = "quake";
    ev.main_term = corp.vocabulary().Get("quake");
    ev.related_words = {"rescue", "city"};
    ev.related_terms = {corp.vocabulary().Get("rescue"),
                        corp.vocabulary().Get("city")};
    ev.related_weights = {0.9, 0.8};
    ev.start_time = 50;
    ev.end_time = 200;
    events.push_back(ev);
  }
};

TEST(VariantNamesTest, AllEightInPaperOrder) {
  const auto& all = AllDatasetVariants();
  ASSERT_EQ(all.size(), 8u);
  std::vector<std::string> names;
  for (DatasetVariant v : all) names.push_back(DatasetVariantName(v));
  EXPECT_EQ(names, (std::vector<std::string>{"A1", "A2", "B1", "B2", "C1",
                                             "C2", "D1", "D2"}));
}

TEST(AssignTest, RuleAndMinSupport) {
  Fixture f;
  FeatureOptions opts;
  opts.min_event_tweets = 10;
  auto assignments = AssignTweetsToEvents(f.corp, f.events, {0}, opts);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].twitter_event, 0u);
  // Tweets 0-11 qualify; 12 (no main word) and 13 (late) do not.
  EXPECT_EQ(assignments[0].tweet_indices.size(), 12u);

  opts.min_event_tweets = 13;
  EXPECT_TRUE(AssignTweetsToEvents(f.corp, f.events, {0}, opts).empty());
}

TEST(EventContextWeightsTest, MainWordWeightOne) {
  Fixture f;
  embed::EventWordWeights w = EventContextWeights(f.events[0]);
  EXPECT_DOUBLE_EQ(w.at("quake"), 1.0);
  EXPECT_DOUBLE_EQ(w.at("rescue"), 0.9);
  EXPECT_DOUBLE_EQ(w.at("city"), 0.8);
  EXPECT_EQ(w.size(), 3u);
}

class DatasetVariantSweep : public ::testing::TestWithParam<DatasetVariant> {
};

TEST_P(DatasetVariantSweep, DimensionsAndLabels) {
  Fixture f;
  embed::PretrainedStore store = TinyStore();
  FeatureOptions opts;
  auto assignments = AssignTweetsToEvents(f.corp, f.events, {0}, opts);
  TrainingDataset ds = BuildDataset(GetParam(), assignments, f.events,
                                    f.corp, f.tweets, store);
  EXPECT_EQ(ds.embedding_dim, 4u);
  size_t expected_dim = 4;
  switch (GetParam()) {
    case DatasetVariant::kA2:
    case DatasetVariant::kB2:
    case DatasetVariant::kC2:
      expected_dim = 4 + 8;
      break;
    case DatasetVariant::kD2:
      expected_dim = 4 + 8 + 1;
      break;
    default:
      break;
  }
  EXPECT_EQ(ds.feature_dim, expected_dim);
  EXPECT_EQ(ds.x.rows(), 12u);
  EXPECT_EQ(ds.x.cols(), expected_dim);
  ASSERT_EQ(ds.likes.size(), 12u);
  ASSERT_EQ(ds.retweets.size(), 12u);
  for (int y : ds.likes) {
    EXPECT_GE(y, 0);
    EXPECT_LE(y, 2);
  }
  // Labels follow Table 2 on the fixture's engagement values.
  EXPECT_EQ(ds.likes[0], 0);
  EXPECT_EQ(ds.likes[11], 1);
  EXPECT_EQ(ds.retweets[0], 0);
  EXPECT_EQ(ds.retweets[11], 2);
}

INSTANTIATE_TEST_SUITE_P(Variants, DatasetVariantSweep,
                         ::testing::ValuesIn(AllDatasetVariants()));

TEST(DatasetTest, MetadataVectorLayout) {
  Fixture f;
  embed::PretrainedStore store = TinyStore();
  auto assignments =
      AssignTweetsToEvents(f.corp, f.events, {0}, FeatureOptions{});
  TrainingDataset ds = BuildDataset(DatasetVariant::kA2, assignments,
                                    f.events, f.corp, f.tweets, store);
  for (size_t r = 0; r < ds.x.rows(); ++r) {
    const double* meta = ds.x.RowPtr(r) + ds.embedding_dim;
    // Exactly one of the 7 bucket cells is hot.
    double onehot_sum = 0.0;
    for (int b = 0; b < 7; ++b) {
      EXPECT_TRUE(meta[b] == 0.0 || meta[b] == 1.0);
      onehot_sum += meta[b];
    }
    EXPECT_DOUBLE_EQ(onehot_sum, 1.0);
    // Day-of-week cell in [0, 1].
    EXPECT_GE(meta[7], 0.0);
    EXPECT_LE(meta[7], 1.0);
    // The hot cell matches the tweet's follower bucket.
    size_t tweet_idx = assignments[0].tweet_indices[r];
    EXPECT_DOUBLE_EQ(meta[f.tweets[tweet_idx].follower_bucket], 1.0);
  }
}

TEST(DatasetTest, D2AppendsFollowerClass) {
  Fixture f;
  embed::PretrainedStore store = TinyStore();
  auto assignments =
      AssignTweetsToEvents(f.corp, f.events, {0}, FeatureOptions{});
  TrainingDataset ds = BuildDataset(DatasetVariant::kD2, assignments,
                                    f.events, f.corp, f.tweets, store);
  for (size_t r = 0; r < ds.x.rows(); ++r) {
    size_t tweet_idx = assignments[0].tweet_indices[r];
    double expected = static_cast<double>(f.tweets[tweet_idx].follower_class);
    EXPECT_DOUBLE_EQ(ds.x(r, ds.feature_dim - 1), expected);
  }
}

TEST(DatasetTest, SwmScalesEmbedding) {
  Fixture f;
  embed::PretrainedStore store = TinyStore();
  auto assignments =
      AssignTweetsToEvents(f.corp, f.events, {0}, FeatureOptions{});
  TrainingDataset sw = BuildDataset(DatasetVariant::kA1, assignments,
                                    f.events, f.corp, f.tweets, store);
  TrainingDataset swm = BuildDataset(DatasetVariant::kC1, assignments,
                                     f.events, f.corp, f.tweets, store);
  // Tweets contain quake (w=1) and rescue (w=0.9): the rescue coordinate
  // shrinks under SWM while quake's stays.
  EXPECT_DOUBLE_EQ(swm.x(0, 0), sw.x(0, 0));
  EXPECT_LT(swm.x(0, 1), sw.x(0, 1));
}

TEST(DatasetTest, TweetsInMultipleEventsDuplicateRows) {
  Fixture f;
  // A second identical event: every tweet belongs to both.
  f.events.push_back(f.events[0]);
  embed::PretrainedStore store = TinyStore();
  auto assignments =
      AssignTweetsToEvents(f.corp, f.events, {0, 1}, FeatureOptions{});
  ASSERT_EQ(assignments.size(), 2u);
  TrainingDataset ds = BuildDataset(DatasetVariant::kA1, assignments,
                                    f.events, f.corp, f.tweets, store);
  EXPECT_EQ(ds.x.rows(), 24u);  // the paper: the dataset grows
}

}  // namespace
}  // namespace newsdiff::core
