#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace newsdiff {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"Name", "Value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| Name "), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| 22"), std::string::npos);
  // Separators above header, below header, below body.
  size_t seps = 0;
  for (size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++seps;
  }
  EXPECT_GE(seps, 3u);
}

TEST(TablePrinterTest, ColumnsWidenToLongestCell) {
  TablePrinter t({"H"});
  t.AddRow({"a-very-long-cell"});
  std::string out = t.ToString();
  // Every line has the same length (fixed-width table).
  size_t expected = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, expected);
    pos = next + 1;
  }
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter t({"A", "B"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| A "), std::string::npos);
}

}  // namespace
}  // namespace newsdiff
