#include "la/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace newsdiff::la {
namespace {

Matrix Make(const std::vector<std::vector<double>>& rows) {
  return Matrix::FromRows(rows);
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m(1, 2), 0.0);
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
}

TEST(MatrixTest, FilledConstruction) {
  Matrix m(2, 2, 3.5);
  EXPECT_EQ(m.Sum(), 14.0);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Make({{1, 2}, {3, 4}});
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, IdentityAndTranspose) {
  Matrix id = Matrix::Identity(3);
  Matrix t = id.Transposed();
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id(r, c), t(r, c));
    }
  }
  Matrix m = Make({{1, 2, 3}, {4, 5, 6}});
  Matrix mt = m.Transposed();
  EXPECT_EQ(mt.rows(), 3u);
  EXPECT_EQ(mt.cols(), 2u);
  EXPECT_EQ(mt(2, 1), 6.0);
}

TEST(MatrixTest, AddSubScale) {
  Matrix a = Make({{1, 2}, {3, 4}});
  Matrix b = Make({{10, 20}, {30, 40}});
  a.Add(b);
  EXPECT_EQ(a(1, 1), 44.0);
  a.Sub(b);
  EXPECT_EQ(a(1, 1), 4.0);
  a.Scale(2.0);
  EXPECT_EQ(a(0, 0), 2.0);
}

TEST(MatrixTest, HadamardAndDivide) {
  Matrix a = Make({{2, 4}});
  Matrix b = Make({{3, 5}});
  a.HadamardInPlace(b);
  EXPECT_EQ(a(0, 0), 6.0);
  EXPECT_EQ(a(0, 1), 20.0);
  a.DivideInPlace(b, 0.0);
  EXPECT_EQ(a(0, 0), 2.0);
  EXPECT_EQ(a(0, 1), 4.0);
}

TEST(MatrixTest, DivideEpsilonAvoidsInf) {
  Matrix a = Make({{1.0}});
  Matrix zero = Make({{0.0}});
  a.DivideInPlace(zero, 1e-9);
  EXPECT_TRUE(std::isfinite(a(0, 0)));
}

TEST(MatrixTest, ClampMin) {
  Matrix a = Make({{-1, 0.5}});
  a.ClampMin(0.0);
  EXPECT_EQ(a(0, 0), 0.0);
  EXPECT_EQ(a(0, 1), 0.5);
}

TEST(MatrixTest, Norms) {
  Matrix a = Make({{3, 4}});
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(a.RowNorm(0), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
}

TEST(MatrixTest, RowGetSet) {
  Matrix a(2, 3);
  a.SetRow(1, {7, 8, 9});
  EXPECT_EQ(a.Row(1), (std::vector<double>{7, 8, 9}));
  EXPECT_EQ(a.Row(0), (std::vector<double>{0, 0, 0}));
}

TEST(MatrixTest, ResizeZeroes) {
  Matrix a = Make({{1, 2}});
  a.Resize(3, 2);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.Sum(), 0.0);
}

TEST(MatMulTest, KnownProduct) {
  Matrix a = Make({{1, 2}, {3, 4}});
  Matrix b = Make({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(5);
  Matrix a = Matrix::Random(4, 4, -1.0, 1.0, rng);
  Matrix c = MatMul(a, Matrix::Identity(4));
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.data()[i], a.data()[i]);
  }
}

TEST(MatMulTest, TransAVariantsAgreeWithExplicitTranspose) {
  Rng rng(6);
  Matrix a = Matrix::Random(5, 3, -1.0, 1.0, rng);
  Matrix b = Matrix::Random(5, 4, -1.0, 1.0, rng);
  Matrix expected = MatMul(a.Transposed(), b);
  Matrix got = MatMulTransA(a, b);
  ASSERT_EQ(got.rows(), expected.rows());
  ASSERT_EQ(got.cols(), expected.cols());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(MatMulTest, TransBVariantsAgreeWithExplicitTranspose) {
  Rng rng(8);
  Matrix a = Matrix::Random(4, 3, -1.0, 1.0, rng);
  Matrix b = Matrix::Random(6, 3, -1.0, 1.0, rng);
  Matrix expected = MatMul(a, b.Transposed());
  Matrix got = MatMulTransB(a, b);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(VectorOpsTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm2({}), 0.0);
}

TEST(CosineTest, Bounds) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {-1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0);
}

TEST(CosineTest, ZeroVectorYieldsZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {0, 0}), 0.0);
}

TEST(CosineTest, ScaleInvariant) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, -1, 2};
  std::vector<double> b10 = {40, -10, 20};
  EXPECT_NEAR(CosineSimilarity(a, b), CosineSimilarity(a, b10), 1e-12);
}

TEST(AxpyTest, Accumulates) {
  std::vector<double> a = {1, 2};
  AxpyInPlace(a, {10, 20}, 0.5);
  EXPECT_EQ(a, (std::vector<double>{6, 12}));
}

/// Property sweep: algebraic identities over random shapes.
struct Shape {
  size_t n, k, m;
};
class MatMulPropertySweep : public ::testing::TestWithParam<Shape> {};

TEST_P(MatMulPropertySweep, ProductTransposeIdentity) {
  // (A B)^T == B^T A^T
  Rng rng(101 + GetParam().n);
  Matrix a = Matrix::Random(GetParam().n, GetParam().k, -2.0, 2.0, rng);
  Matrix b = Matrix::Random(GetParam().k, GetParam().m, -2.0, 2.0, rng);
  Matrix lhs = MatMul(a, b).Transposed();
  Matrix rhs = MatMul(b.Transposed(), a.Transposed());
  ASSERT_EQ(lhs.rows(), rhs.rows());
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-10);
  }
}

TEST_P(MatMulPropertySweep, DistributesOverAddition) {
  // A (B + C) == A B + A C
  Rng rng(202 + GetParam().m);
  Matrix a = Matrix::Random(GetParam().n, GetParam().k, -1.0, 1.0, rng);
  Matrix b = Matrix::Random(GetParam().k, GetParam().m, -1.0, 1.0, rng);
  Matrix c = Matrix::Random(GetParam().k, GetParam().m, -1.0, 1.0, rng);
  Matrix bc = b;
  bc.Add(c);
  Matrix lhs = MatMul(a, bc);
  Matrix rhs = MatMul(a, b);
  rhs.Add(MatMul(a, c));
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulPropertySweep,
                         ::testing::Values(Shape{1, 1, 1}, Shape{2, 3, 4},
                                           Shape{5, 1, 5}, Shape{7, 8, 3},
                                           Shape{16, 16, 16}));

}  // namespace
}  // namespace newsdiff::la
