#include "la/sparse.h"

#include <gtest/gtest.h>

namespace newsdiff::la {
namespace {

CsrMatrix SmallMatrix() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  return CsrMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
}

TEST(CsrTest, BasicShapeAndAccess) {
  CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.At(0, 0), 1.0);
  EXPECT_EQ(m.At(0, 1), 0.0);
  EXPECT_EQ(m.At(0, 2), 2.0);
  EXPECT_EQ(m.At(1, 1), 3.0);
}

TEST(CsrTest, DuplicateTripletsAreSummed) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      1, 2, {{0, 1, 1.5}, {0, 1, 2.5}, {0, 0, 1.0}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.At(0, 1), 4.0);
}

TEST(CsrTest, UnsortedTripletsHandled) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      3, 3, {{2, 2, 9.0}, {0, 1, 1.0}, {1, 0, 2.0}});
  EXPECT_EQ(m.At(2, 2), 9.0);
  EXPECT_EQ(m.At(0, 1), 1.0);
  EXPECT_EQ(m.At(1, 0), 2.0);
}

TEST(CsrTest, EmptyMatrix) {
  CsrMatrix m = CsrMatrix::FromTriplets(2, 2, {});
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.At(1, 1), 0.0);
  EXPECT_EQ(m.SquaredFrobeniusNorm(), 0.0);
}

TEST(CsrTest, SquaredFrobenius) {
  EXPECT_DOUBLE_EQ(SmallMatrix().SquaredFrobeniusNorm(), 1 + 4 + 9);
}

TEST(CsrTest, ToDenseMatches) {
  Matrix d = SmallMatrix().ToDense();
  EXPECT_EQ(d(0, 0), 1.0);
  EXPECT_EQ(d(0, 2), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(1, 2), 0.0);
}

TEST(CsrTest, MultiplyDenseKnown) {
  CsrMatrix m = SmallMatrix();
  Matrix d = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});
  Matrix out = m.MultiplyDense(d);
  // Row 0: [1 0 2] * d = [1+2, 2] ; Row 1: [0 3 0] * d = [0, 3]
  EXPECT_EQ(out(0, 0), 3.0);
  EXPECT_EQ(out(0, 1), 2.0);
  EXPECT_EQ(out(1, 0), 0.0);
  EXPECT_EQ(out(1, 1), 3.0);
}

/// Property sweep: every sparse kernel agrees with the dense reference on
/// random matrices of several shapes and densities.
struct SparseCase {
  size_t rows, cols, k;
  double density;
  uint64_t seed;
};
class SparseKernelSweep : public ::testing::TestWithParam<SparseCase> {
 protected:
  void SetUp() override {
    const SparseCase& c = GetParam();
    Rng rng(c.seed);
    std::vector<Triplet> triplets;
    for (size_t r = 0; r < c.rows; ++r) {
      for (size_t col = 0; col < c.cols; ++col) {
        if (rng.NextDouble() < c.density) {
          triplets.push_back({static_cast<uint32_t>(r),
                              static_cast<uint32_t>(col),
                              rng.Uniform(-2.0, 2.0)});
        }
      }
    }
    sparse_ = CsrMatrix::FromTriplets(c.rows, c.cols, triplets);
    dense_ = sparse_.ToDense();
  }

  CsrMatrix sparse_;
  Matrix dense_;
};

TEST_P(SparseKernelSweep, MultiplyDense) {
  Rng rng(GetParam().seed + 1);
  Matrix d = Matrix::Random(GetParam().cols, GetParam().k, -1.0, 1.0, rng);
  Matrix got = sparse_.MultiplyDense(d);
  Matrix expected = MatMul(dense_, d);
  ASSERT_EQ(got.rows(), expected.rows());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-10);
  }
}

TEST_P(SparseKernelSweep, TransposeMultiplyDense) {
  Rng rng(GetParam().seed + 2);
  Matrix d = Matrix::Random(GetParam().rows, GetParam().k, -1.0, 1.0, rng);
  Matrix got = sparse_.TransposeMultiplyDense(d);
  Matrix expected = MatMul(dense_.Transposed(), d);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-10);
  }
}

TEST_P(SparseKernelSweep, MultiplyDenseTransposed) {
  Rng rng(GetParam().seed + 3);
  Matrix d = Matrix::Random(GetParam().k, GetParam().cols, -1.0, 1.0, rng);
  Matrix got = sparse_.MultiplyDenseTransposed(d);
  Matrix expected = MatMul(dense_, d.Transposed());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-10);
  }
}

TEST_P(SparseKernelSweep, InnerProductWithProduct) {
  Rng rng(GetParam().seed + 4);
  Matrix w = Matrix::Random(GetParam().rows, GetParam().k, -1.0, 1.0, rng);
  Matrix h = Matrix::Random(GetParam().k, GetParam().cols, -1.0, 1.0, rng);
  double got = sparse_.InnerProductWithProduct(w, h);
  Matrix wh = MatMul(w, h);
  double expected = 0.0;
  for (size_t r = 0; r < dense_.rows(); ++r) {
    for (size_t c = 0; c < dense_.cols(); ++c) {
      expected += dense_(r, c) * wh(r, c);
    }
  }
  EXPECT_NEAR(got, expected, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SparseKernelSweep,
    ::testing::Values(SparseCase{3, 4, 2, 0.5, 11},
                      SparseCase{10, 10, 5, 0.1, 12},
                      SparseCase{1, 8, 3, 0.9, 13},
                      SparseCase{20, 5, 4, 0.3, 14},
                      SparseCase{6, 6, 6, 1.0, 15},
                      SparseCase{8, 2, 1, 0.05, 16}));

}  // namespace
}  // namespace newsdiff::la
