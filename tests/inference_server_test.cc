// Tests for the batched inference server (serve/inference_server.*) and
// the cross-call packed-weight cache it serves from: bitwise batch
// invariance on the f32 path, deadline-driven flushes on a ManualClock,
// queue-full backpressure, and model hot-swap racing in-flight batches.
// The Inference*/InferenceConcurrency* suites run under the sanitizer CI
// jobs (selected by the `Inference` test-name regex).
#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "la/matrix.h"
#include "nn/architectures.h"
#include "serve/inference_server.h"

namespace newsdiff::serve {
namespace {

constexpr size_t kDim = 16;
constexpr size_t kClasses = 3;

nn::Model TestModel(uint64_t seed = 41) {
  nn::MlpConfig config;
  config.input_size = kDim;
  config.hidden_sizes = {12, 8};
  config.num_classes = kClasses;
  config.seed = seed;
  return nn::BuildMlp(config);
}

la::Matrix RandomFeatures(size_t rows, uint64_t seed) {
  la::Matrix m(rows, kDim);
  Rng rng(seed);
  for (double& v : m.data()) v = rng.Uniform(-1.0, 1.0);
  return m;
}

InferenceServerOptions Options() {
  InferenceServerOptions options;
  options.parallelism.kernels.kind = KernelKind::kBlocked;
  return options;
}

void ExpectRowBitwise(const la::Matrix& got, size_t got_row,
                      const la::Matrix& want, size_t want_row) {
  ASSERT_EQ(got.cols(), want.cols());
  const double* g = got.RowPtr(got_row);
  const double* w = want.RowPtr(want_row);
  for (size_t c = 0; c < got.cols(); ++c) {
    EXPECT_EQ(g[c], w[c]) << "row " << got_row << " col " << c;
  }
}

TEST(InferenceServerTest, RejectsBeforeModelLoaded) {
  InferenceServer server(Options());
  EXPECT_FALSE(server.has_model());
  EXPECT_EQ(server.model_version(), 0u);
  auto result = server.Predict(RandomFeatures(1, 1));
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(InferenceServerTest, RejectsMismatchedFeatureWidth) {
  InferenceServer server(Options());
  server.LoadModel(TestModel(), 1);
  la::Matrix narrow(1, kDim - 1);
  EXPECT_EQ(server.Predict(narrow).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(InferenceServerTest, PredictMatchesDirectBitwise) {
  InferenceServer server(Options());
  server.LoadModel(TestModel(), 1);
  la::Matrix features = RandomFeatures(7, 2);
  auto queued = server.Predict(features);
  auto direct = server.PredictDirect(features);
  ASSERT_TRUE(queued.ok()) << queued.status().message();
  ASSERT_TRUE(direct.ok()) << direct.status().message();
  ASSERT_EQ(queued->rows(), 7u);
  ASSERT_EQ(queued->cols(), kClasses);
  for (size_t r = 0; r < 7; ++r) ExpectRowBitwise(*queued, r, *direct, r);
}

// The f32 contract the coalescer depends on: batch-of-N row i is bitwise
// equal to the same row predicted alone, so WHAT a request is batched
// with never changes its answer.
TEST(InferenceServerTest, BatchCompositionIsBitwiseInvariant) {
  InferenceServer server(Options());
  server.LoadModel(TestModel(), 1);
  la::Matrix batch = RandomFeatures(9, 3);
  auto all = server.Predict(batch);
  ASSERT_TRUE(all.ok());
  for (size_t r = 0; r < batch.rows(); ++r) {
    la::Matrix one(1, kDim);
    for (size_t c = 0; c < kDim; ++c) one.RowPtr(0)[c] = batch.RowPtr(r)[c];
    auto single = server.Predict(one);
    ASSERT_TRUE(single.ok());
    ExpectRowBitwise(*all, r, *single, 0);
  }
}

TEST(InferenceServerTest, DeadlineFlushDrivenByManualClock) {
  ManualClock clock;
  InferenceServerOptions options = Options();
  options.batch_deadline_ms = 50;
  options.max_batch_rows = 64;  // far above what we queue: only the
                                // deadline can flush
  options.clock = &clock;
  InferenceServer server(options);
  server.LoadModel(TestModel(), 1);

  auto fut = server.Submit(RandomFeatures(2, 4));
  ASSERT_TRUE(fut.ok());
  // Below the deadline the worker must hold the batch.
  clock.Advance(49);
  EXPECT_EQ(fut->wait_for(std::chrono::milliseconds(30)),
            std::future_status::timeout);
  // Crossing it must flush promptly (the worker polls real time at ~1ms).
  clock.Advance(1);
  auto result = fut->get();
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->rows(), 2u);
  EXPECT_GE(server.stats().batches, 1u);
}

TEST(InferenceServerTest, FullQueueRejectsWithResourceExhausted) {
  ManualClock clock;
  InferenceServerOptions options = Options();
  options.batch_deadline_ms = 1'000'000;  // park the worker: nothing flushes
  options.max_batch_rows = 1024;
  options.queue_capacity = 4;
  options.clock = &clock;
  InferenceServer server(options);
  server.LoadModel(TestModel(), 1);

  auto a = server.Submit(RandomFeatures(3, 5));
  ASSERT_TRUE(a.ok());
  auto b = server.Submit(RandomFeatures(2, 6));  // 3 + 2 > 4: rejected
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
  auto c = server.Submit(RandomFeatures(1, 7));  // 3 + 1 == 4: fits
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(server.stats().queue_full_rejections, 1u);

  // Release the parked batch so Stop() does not fail the futures.
  clock.Advance(1'000'000);
  EXPECT_TRUE(a->get().ok());
  EXPECT_TRUE(c->get().ok());
}

TEST(InferenceServerTest, StopFailsQueuedRequestsWithUnavailable) {
  ManualClock clock;
  InferenceServerOptions options = Options();
  options.batch_deadline_ms = 1'000'000;
  options.clock = &clock;
  InferenceServer server(options);
  server.LoadModel(TestModel(), 1);
  auto fut = server.Submit(RandomFeatures(1, 8));
  ASSERT_TRUE(fut.ok());
  server.Stop();
  EXPECT_EQ(fut->get().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.Predict(RandomFeatures(1, 9)).status().code(),
            StatusCode::kUnavailable);
}

TEST(InferenceServerTest, PackedCacheHitsAfterWarmup) {
  InferenceServer server(Options());
  server.LoadModel(TestModel(), 1);  // warmup forward packs every layer
  const la::WeightCacheStats before = server.cache_stats();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.Predict(RandomFeatures(2, 10 + i)).ok());
  }
  const la::WeightCacheStats after = server.cache_stats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses)
      << "serving traffic must never re-pack an installed generation";
}

TEST(InferenceServerTest, ReloadSwapsGenerationAndRepacks) {
  InferenceServer server(Options());
  server.LoadModel(TestModel(41), 1);
  la::Matrix features = RandomFeatures(3, 11);
  auto v1 = server.Predict(features);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(server.model_version(), 1u);

  server.LoadModel(TestModel(99), 2);  // different init: different outputs
  EXPECT_EQ(server.model_version(), 2u);
  EXPECT_GE(server.cache_stats().swaps, 1u);
  auto v2 = server.Predict(features);
  ASSERT_TRUE(v2.ok());
  bool any_diff = false;
  for (size_t i = 0; i < v1->size(); ++i) {
    if (v1->data()[i] != v2->data()[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "new generation must actually serve new weights";
  EXPECT_GE(server.stats().model_swaps, 2u);
}

TEST(InferenceServerTest, Int8ModeServesApproximateProbabilities) {
  InferenceServerOptions options = Options();
  options.parallelism.kernels.int8_inference = true;
  InferenceServer server(options);
  server.LoadModel(TestModel(), 1);

  InferenceServer reference(Options());
  reference.LoadModel(TestModel(), 1);

  la::Matrix features = RandomFeatures(6, 12);
  auto q = server.Predict(features);
  auto f = reference.Predict(features);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(f.ok());
  for (size_t r = 0; r < q->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < q->cols(); ++c) {
      sum += q->RowPtr(r)[c];
      EXPECT_NEAR(q->RowPtr(r)[c], f->RowPtr(r)[c], 0.15)
          << "int8 drifted far from f32 at row " << r << " col " << c;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);  // still a softmax distribution
  }
}

// --- Concurrency: run under tsan via the Inference regex. ---

TEST(InferenceConcurrencyTest, ConcurrentSubmittersGetConsistentAnswers) {
  InferenceServerOptions options = Options();
  options.max_batch_rows = 8;  // force multi-batch coalescing under load
  InferenceServer server(options);
  server.LoadModel(TestModel(), 1);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        la::Matrix features =
            RandomFeatures(1 + (i % 3), 100 + t * 1000 + i);
        auto batched = server.Predict(features);
        auto direct = server.PredictDirect(features);
        if (!batched.ok() || !direct.ok()) {
          ++mismatches;
          continue;
        }
        for (size_t j = 0; j < batched->size(); ++j) {
          if (batched->data()[j] != direct->data()[j]) ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  const InferenceServerStats stats = server.stats();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.queue_full_rejections, 0u);
}

TEST(InferenceConcurrencyTest, HotSwapRacesInFlightBatches) {
  InferenceServer server(Options());
  server.LoadModel(TestModel(41), 1);

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> predictors;
  for (int t = 0; t < 3; ++t) {
    predictors.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = server.Predict(RandomFeatures(2, 500 + t * 1000 + i++));
        // Every outcome must be OK: same input width across generations,
        // so a swap mid-flight is invisible to correctness.
        if (!result.ok()) ++errors;
      }
    });
  }
  for (uint64_t version = 2; version <= 12; ++version) {
    server.LoadModel(TestModel(40 + version), version);
  }
  stop.store(true);
  for (auto& th : predictors) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(server.model_version(), 12u);
  EXPECT_GE(server.cache_stats().swaps, 1u);
}

}  // namespace
}  // namespace newsdiff::serve
