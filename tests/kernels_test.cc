// Regression tests for the blocked kernel layer (la/kernels.cc) and its
// dispatchers in la/matrix.h: shape-edge agreement with the naive loops,
// the exact-determinism contract, the seed-bitwise naive fallback, and the
// 64-byte alignment invariant of Matrix storage. The ParallelKernels suite
// runs under tsan in CI (selected by the `Parallel` test-name regex).
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "la/kernels.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "la/vector_ops.h"

namespace newsdiff::la {
namespace {

static_assert(
    std::is_same_v<AlignedVector::allocator_type, AlignedAllocator<double>>,
    "Matrix row storage must come from the 64-byte aligned allocator");
static_assert(kVectorAlignment == 64,
              "kernels assume a 64-byte aligned storage base");

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (double& v : m.data()) v = rng.Uniform(-1.0, 1.0);
  return m;
}

Parallelism Naive() {
  Parallelism par;
  par.kernels.kind = KernelKind::kNaive;
  return par;
}

Parallelism Blocked(size_t threads = 1) {
  Parallelism par;
  par.kernels.kind = KernelKind::kBlocked;
  par.threads = threads;
  return par;
}

void ExpectNear(const Matrix& got, const Matrix& want, double rel) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t i = 0; i < want.size(); ++i) {
    double tol = rel * std::max(1.0, std::abs(want.data()[i]));
    EXPECT_NEAR(got.data()[i], want.data()[i], tol) << "flat index " << i;
  }
}

void ExpectBitwise(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.data()[i], want.data()[i]) << "flat index " << i;
  }
}

/// (n, k, m) product shapes covering the panel-edge cases: empty, single
/// row/column/element, below one micro-tile, straddling tile and block
/// boundaries, and exact multiples.
struct Shape {
  size_t n, k, m;
};
const Shape kShapes[] = {
    {0, 0, 0}, {0, 5, 3}, {1, 5, 1},  {5, 1, 5},    {1, 1, 1},
    {3, 7, 5}, {4, 8, 8}, {17, 33, 9}, {64, 64, 64}, {65, 129, 33},
};

TEST(BlockedKernels, MatMulAgreesWithNaiveOnEdgeShapes) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomMatrix(s.n, s.k, 1);
    Matrix b = RandomMatrix(s.k, s.m, 2);
    Matrix naive, blocked;
    MatMulInto(a, b, &naive, Naive());
    MatMulInto(a, b, &blocked, Blocked());
    ExpectNear(blocked, naive, 1e-9);
  }
}

TEST(BlockedKernels, MatMulTransAAgreesWithNaiveOnEdgeShapes) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomMatrix(s.k, s.n, 3);
    Matrix b = RandomMatrix(s.k, s.m, 4);
    Matrix naive, blocked;
    MatMulTransAInto(a, b, &naive, Naive());
    MatMulTransAInto(a, b, &blocked, Blocked());
    ExpectNear(blocked, naive, 1e-9);
  }
}

TEST(BlockedKernels, MatMulTransBAgreesWithNaiveOnEdgeShapes) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomMatrix(s.n, s.k, 5);
    Matrix b = RandomMatrix(s.m, s.k, 6);
    Matrix naive, blocked;
    MatMulTransBInto(a, b, &naive, Naive());
    MatMulTransBInto(a, b, &blocked, Blocked());
    ExpectNear(blocked, naive, 1e-9);
  }
}

TEST(BlockedKernels, RepeatedRunsAreBitwiseIdentical) {
  Matrix a = RandomMatrix(65, 129, 7);
  Matrix b = RandomMatrix(129, 33, 8);
  Matrix first, second;
  MatMulInto(a, b, &first, Blocked());
  MatMulInto(a, b, &second, Blocked());
  ExpectBitwise(second, first);
}

TEST(BlockedKernels, BlockSizeRoundingSurvivesDegenerateConfig) {
  // mc/kc/nc of 0/1 must be clamped to at least one micro-tile, not crash.
  Matrix a = RandomMatrix(9, 5, 9);
  Matrix b = RandomMatrix(5, 7, 10);
  Parallelism par = Blocked();
  par.kernels.mc = 0;
  par.kernels.kc = 0;
  par.kernels.nc = 1;
  Matrix naive, blocked;
  MatMulInto(a, b, &naive, Naive());
  MatMulInto(a, b, &blocked, par);
  ExpectNear(blocked, naive, 1e-9);
}

TEST(BlockedKernels, IntoVariantsReuseOutputCapacity) {
  Matrix a = RandomMatrix(16, 8, 11);
  Matrix b = RandomMatrix(8, 12, 12);
  Matrix out = RandomMatrix(40, 40, 13);  // larger: capacity must be reused
  const double* before = out.data().data();
  MatMulInto(a, b, &out, Blocked());
  EXPECT_EQ(out.rows(), 16u);
  EXPECT_EQ(out.cols(), 12u);
  EXPECT_EQ(out.data().data(), before);
}

TEST(NaiveKernels, MatMulBitwiseMatchesLegacyLoop) {
  // The naive path must reproduce the pre-kernel-layer ikj loop bit for
  // bit: this replicated loop IS the seed implementation.
  Matrix a = RandomMatrix(23, 17, 14);
  Matrix b = RandomMatrix(17, 29, 15);
  Matrix legacy(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = legacy.RowPtr(i);
    for (size_t p = 0; p < a.cols(); ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b.RowPtr(p);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
  Matrix naive;
  MatMulInto(a, b, &naive, Naive());
  ExpectBitwise(naive, legacy);
  Matrix wrapper = MatMul(a, b, Naive());
  ExpectBitwise(wrapper, legacy);
}

TEST(BlockedKernels, CsrProductsAreBitwiseEqualToNaive) {
  Rng rng(16);
  std::vector<Triplet> t;
  for (size_t i = 0; i < 900; ++i) {
    t.push_back({static_cast<uint32_t>(rng.NextBelow(120)),
                 static_cast<uint32_t>(rng.NextBelow(90)),
                 rng.NextDouble() + 0.1});
  }
  CsrMatrix csr = CsrMatrix::FromTriplets(120, 90, t);
  Matrix d = RandomMatrix(90, 37, 17);    // non-multiple of the strip width
  Matrix dt = RandomMatrix(37, 90, 18);
  ExpectBitwise(csr.MultiplyDense(d, Blocked()),
                csr.MultiplyDense(d, Naive()));
  ExpectBitwise(csr.MultiplyDenseTransposed(dt, Blocked()),
                csr.MultiplyDenseTransposed(dt, Naive()));
}

TEST(MatrixAlignment, RowStorageBaseIs64ByteAligned) {
  // Ragged widths included on purpose: the base stays aligned regardless.
  for (size_t cols : {1ul, 3ul, 7ul, 8ul, 13ul, 64ul}) {
    Matrix m(5, cols);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.RowPtr(0)) % kVectorAlignment,
              0u)
        << "cols=" << cols;
    m.Resize(11, cols + 1);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.RowPtr(0)) % kVectorAlignment,
              0u)
        << "after resize, cols=" << cols + 1;
  }
}

TEST(MatrixAlignment, InteriorRowsAlignedWhenColsDivisibleBy8) {
  Matrix m(6, 16);
  for (size_t r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.RowPtr(r)) % kVectorAlignment,
              0u)
        << "row " << r;
  }
}

// --- Thread/shard invariance: runs under tsan via the Parallel regex. ---

TEST(ParallelKernelsTest, DenseProductsExactAcrossThreadCounts) {
  Matrix a = RandomMatrix(65, 129, 19);
  Matrix b = RandomMatrix(129, 65, 20);
  Matrix at = a.Transposed();  // 129 x 65: shares b's row count for TransA
  Matrix bt = b.Transposed();  // 65 x 129: shares a's col count for TransB
  Matrix serial_mm, serial_ta, serial_tb;
  MatMulInto(a, b, &serial_mm, Blocked(1));
  MatMulTransAInto(at, b, &serial_ta, Blocked(1));
  MatMulTransBInto(a, bt, &serial_tb, Blocked(1));
  for (size_t threads : {2ul, 4ul}) {
    Matrix mm, ta, tb;
    MatMulInto(a, b, &mm, Blocked(threads));
    MatMulTransAInto(at, b, &ta, Blocked(threads));
    MatMulTransBInto(a, bt, &tb, Blocked(threads));
    ExpectBitwise(mm, serial_mm);
    ExpectBitwise(ta, serial_ta);
    ExpectBitwise(tb, serial_tb);
  }
}

TEST(ParallelKernelsTest, DenseProductExactAcrossShardCounts) {
  Matrix a = RandomMatrix(130, 40, 21);
  Matrix b = RandomMatrix(40, 50, 22);
  Matrix baseline;
  MatMulInto(a, b, &baseline, Blocked(1));
  for (size_t shards : {3ul, 16ul, 64ul}) {
    Parallelism par = Blocked(4);
    par.shards = shards;
    Matrix out;
    MatMulInto(a, b, &out, par);
    ExpectBitwise(out, baseline);
  }
}

// The shared-B-panel driver packs each (jc, pc) panel once on the calling
// thread and fans the row blocks out per panel. Force many small panels so
// every jc/pc edge case (full panels, ragged tails) crosses the shared
// buffer, and check the result is bitwise identical across thread and
// shard counts — and to the one-shard run that never shares anything.
TEST(ParallelKernelsTest, SharedBPanelExactAcrossConfigsWithManyPanels) {
  Matrix a = RandomMatrix(70, 90, 31);
  Matrix b = RandomMatrix(90, 50, 32);
  Matrix at = a.Transposed();
  Matrix bt = b.Transposed();
  auto tiny_blocks = [](size_t threads, size_t shards) {
    Parallelism par = Blocked(threads);
    par.shards = shards;
    par.kernels.mc = 8;    // 9 row blocks
    par.kernels.kc = 16;   // 6 depth panels (one ragged)
    par.kernels.nc = 16;   // 4 column panels (one ragged)
    return par;
  };
  Matrix serial_mm, serial_ta, serial_tb;
  MatMulInto(a, b, &serial_mm, tiny_blocks(1, 1));
  MatMulTransAInto(at, b, &serial_ta, tiny_blocks(1, 1));
  MatMulTransBInto(a, bt, &serial_tb, tiny_blocks(1, 1));
  Matrix naive;
  MatMulInto(a, b, &naive, Naive());
  ExpectNear(serial_mm, naive, 1e-12);
  for (const auto& [threads, shards] :
       {std::pair<size_t, size_t>{2, 5}, {4, 16}, {3, 64}}) {
    Matrix mm, ta, tb;
    MatMulInto(a, b, &mm, tiny_blocks(threads, shards));
    MatMulTransAInto(at, b, &ta, tiny_blocks(threads, shards));
    MatMulTransBInto(a, bt, &tb, tiny_blocks(threads, shards));
    ExpectBitwise(mm, serial_mm);
    ExpectBitwise(ta, serial_ta);
    ExpectBitwise(tb, serial_tb);
  }
}

// --- Pre-packed and int8 inference paths (PR 10). ---

TEST(PrepackedKernels, BitwiseEqualToBlockedMatMulOnEdgeShapes) {
  for (const Shape& s : kShapes) {
    Matrix a = RandomMatrix(s.n, s.k, 41);
    Matrix b = RandomMatrix(s.k, s.m, 42);
    Parallelism par = Blocked();
    Matrix reference;
    MatMulInto(a, b, &reference, par);
    PackedB packed = PackMatrixB(b, par.kernels);
    Matrix prepacked;
    internal::BlockedMatMulPrepacked(a, packed, &prepacked, par);
    ExpectBitwise(prepacked, reference);
  }
}

TEST(PrepackedKernels, BitwiseEqualUnderTinyBlocksAndThreads) {
  Matrix a = RandomMatrix(70, 90, 43);
  Matrix b = RandomMatrix(90, 50, 44);
  Parallelism par = Blocked();
  par.kernels.mc = 8;
  par.kernels.kc = 16;
  par.kernels.nc = 16;
  Matrix reference;
  MatMulInto(a, b, &reference, par);
  PackedB packed = PackMatrixB(b, par.kernels);
  for (size_t threads : {1ul, 2ul, 4ul}) {
    Parallelism run = par;
    run.threads = threads;
    Matrix prepacked;
    internal::BlockedMatMulPrepacked(a, packed, &prepacked, run);
    ExpectBitwise(prepacked, reference);
  }
}

// Row i of a batched product must be bitwise equal to the same row run as
// a batch of one: this is the contract that lets the inference server
// coalesce requests without changing anyone's answer.
TEST(PrepackedKernels, BatchOfNBitwiseEqualsNBatchesOfOne) {
  Matrix batch = RandomMatrix(17, 48, 45);
  Matrix b = RandomMatrix(48, 24, 46);
  Parallelism par = Blocked(2);
  PackedB packed = PackMatrixB(b, par.kernels);
  Matrix all;
  internal::BlockedMatMulPrepacked(batch, packed, &all, par);
  for (size_t r = 0; r < batch.rows(); ++r) {
    Matrix one(1, batch.cols());
    for (size_t c = 0; c < batch.cols(); ++c) {
      one.RowPtr(0)[c] = batch.RowPtr(r)[c];
    }
    Matrix single;
    internal::BlockedMatMulPrepacked(one, packed, &single, par);
    for (size_t c = 0; c < all.cols(); ++c) {
      EXPECT_EQ(all.RowPtr(r)[c], single.RowPtr(0)[c])
          << "row " << r << " col " << c;
    }
  }
}

TEST(Int8Kernels, QuantizerRoundTripsWithinOneStep) {
  Matrix b = RandomMatrix(33, 9, 47);
  QuantizedB q = QuantizeMatrixB(b);
  ASSERT_EQ(q.k, b.rows());
  ASSERT_EQ(q.m, b.cols());
  for (size_t j = 0; j < q.m; ++j) {
    for (size_t p = 0; p < q.k; ++p) {
      const double rebuilt =
          q.scale[j] * static_cast<double>(q.data[j * q.k + p]) + q.offset[j];
      EXPECT_NEAR(rebuilt, b.RowPtr(p)[j], q.scale[j] * 0.5 + 1e-12)
          << "col " << j << " row " << p;
    }
  }
}

TEST(Int8Kernels, ExactlyRepresentableInputsProduceExactProducts) {
  // Constant B columns (zero range: scale clamps to 1.0) round-trip
  // exactly, and A entries in {-1, 0, 1} quantize exactly under the
  // symmetric per-row scale — so the int8 product must agree with the
  // f32 product to rounding error, not to quantization error.
  Matrix b(5, 2);
  for (size_t p = 0; p < 5; ++p) {
    b.RowPtr(p)[0] = 3.25;
    b.RowPtr(p)[1] = -0.75;
  }
  QuantizedB q = QuantizeMatrixB(b);
  Matrix a(4, 5);
  Rng rng(48);
  for (double& v : a.data()) {
    v = static_cast<double>(static_cast<int>(rng.NextBelow(3)) - 1);
  }
  Matrix out;
  internal::Int8MatMulPrepacked(a, q, &out, Blocked());
  Matrix exact;
  MatMulInto(a, b, &exact, Naive());
  ExpectNear(out, exact, 1e-9);
}

TEST(Int8Kernels, ApproximatesF32WithinQuantizationError) {
  Matrix a = RandomMatrix(12, 64, 49);
  Matrix b = RandomMatrix(64, 24, 50);
  QuantizedB q = QuantizeMatrixB(b);
  Matrix int8_out, f32_out;
  internal::Int8MatMulPrepacked(a, q, &int8_out, Blocked());
  MatMulInto(a, b, &f32_out, Blocked());
  // Error budget: each of the k=64 terms contributes at most half an int8
  // step from B (~2/255) times |a| <= 1, plus the per-row A step.
  ExpectNear(int8_out, f32_out, 0.05);
}

TEST(Int8Kernels, DeterministicAndBatchInvariant) {
  Matrix batch = RandomMatrix(11, 32, 51);
  Matrix b = RandomMatrix(32, 8, 52);
  QuantizedB q = QuantizeMatrixB(b);
  Matrix first, second;
  internal::Int8MatMulPrepacked(batch, q, &first, Blocked(4));
  internal::Int8MatMulPrepacked(batch, q, &second, Blocked(1));
  ExpectBitwise(second, first);
  for (size_t r = 0; r < batch.rows(); ++r) {
    Matrix one(1, batch.cols());
    for (size_t c = 0; c < batch.cols(); ++c) {
      one.RowPtr(0)[c] = batch.RowPtr(r)[c];
    }
    Matrix single;
    internal::Int8MatMulPrepacked(one, q, &single, Blocked(2));
    for (size_t c = 0; c < first.cols(); ++c) {
      EXPECT_EQ(first.RowPtr(r)[c], single.RowPtr(0)[c])
          << "row " << r << " col " << c;
    }
  }
}

TEST(ParallelKernelsTest, PrepackedProductExactAcrossThreadCounts) {
  Matrix a = RandomMatrix(65, 129, 53);
  Matrix b = RandomMatrix(129, 65, 54);
  Parallelism par = Blocked(1);
  PackedB packed = PackMatrixB(b, par.kernels);
  Matrix baseline;
  internal::BlockedMatMulPrepacked(a, packed, &baseline, par);
  for (size_t threads : {2ul, 4ul}) {
    Matrix out;
    internal::BlockedMatMulPrepacked(a, packed, &out, Blocked(threads));
    ExpectBitwise(out, baseline);
  }
}

TEST(ParallelKernelsTest, CsrProductExactAcrossThreadCounts) {
  Rng rng(23);
  std::vector<Triplet> t;
  for (size_t i = 0; i < 1200; ++i) {
    t.push_back({static_cast<uint32_t>(rng.NextBelow(200)),
                 static_cast<uint32_t>(rng.NextBelow(80)),
                 rng.NextDouble() + 0.1});
  }
  CsrMatrix csr = CsrMatrix::FromTriplets(200, 80, t);
  Matrix d = RandomMatrix(80, 48, 24);
  Matrix baseline = csr.MultiplyDense(d, Blocked(1));
  for (size_t threads : {2ul, 4ul}) {
    ExpectBitwise(csr.MultiplyDense(d, Blocked(threads)), baseline);
  }
}

}  // namespace
}  // namespace newsdiff::la
