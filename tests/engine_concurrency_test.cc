// Concurrency tests for the Engine serving path: multi-threaded
// QueryTrending / PredictInterest racing BuildIndex generation swaps.
// These are the suites the tsan CI job runs (regex `EngineConcurrency`) —
// the snapshot-swap in core/engine.cc is exactly the code TSan must see
// under real thread interleavings.
#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/world.h"
#include "store/database.h"

namespace newsdiff {
namespace {

class EngineConcurrencyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::WorldOptions world_options;
    world_options.num_articles = 200;
    world_options.num_tweets = 600;
    world_options.num_users = 120;
    world_ = datagen::GenerateWorld(world_options);
    world_.LoadInto(db_);
    engine_.emplace(EngineOptions{});
    ASSERT_TRUE(engine_->BuildIndex(db_).ok());
  }

  /// A query built from a planted event's burst keywords: guaranteed to
  /// match both corpora in every generation.
  std::string EventQuery() const {
    for (const datagen::PlantedEvent& e : world_.events) {
      if (!e.chatter && e.keywords.size() >= 2) {
        return e.keywords[0] + " " + e.keywords[1];
      }
    }
    return "market";
  }

  datagen::World world_;
  store::Database db_;
  std::optional<Engine> engine_;
};

TEST_F(EngineConcurrencyFixture, QueriesRaceIndexSwapsWithoutFailures) {
  const std::string query = EventQuery();
  constexpr int kReaders = 4;
  constexpr int kOpsPerReader = 150;
  constexpr int kSwaps = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> empty_results{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerReader; ++i) {
        if ((i + t) % 2 == 0) {
          StatusOr<std::vector<QueryHit>> hits =
              engine_->QueryTrending(query, 5);
          if (!hits.ok()) {
            failures.fetch_add(1);
          } else if (hits->empty()) {
            empty_results.fetch_add(1);
          }
        } else {
          StatusOr<InterestPrediction> prediction =
              engine_->PredictInterest(query, 5);
          // NotFound would mean a swap exposed an empty generation.
          if (!prediction.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (int s = 0; s < kSwaps && !stop.load(); ++s) {
      ASSERT_TRUE(engine_->BuildIndex(db_).ok());
    }
  });
  for (std::thread& r : readers) r.join();
  stop.store(true);
  writer.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(empty_results.load(), 0u);
  const EngineStatsSnapshot stats = engine_->stats();
  // Initial build + at least one concurrent rebuild.
  EXPECT_GE(stats.index_swaps, 2u);
  EXPECT_EQ(stats.serving_errors, 0u);
  EXPECT_EQ(stats.trending_queries + stats.interest_predictions,
            static_cast<uint64_t>(kReaders) * kOpsPerReader);
}

TEST_F(EngineConcurrencyFixture, SnapshotPinsItsGenerationAcrossSwaps) {
  std::shared_ptr<const Engine::IndexMap> pinned = engine_->IndexSnapshot();
  ASSERT_NE(pinned->find("news"), pinned->end());
  const index::InvertedIndex& old_news = pinned->at("news");
  const uint64_t old_docs = old_news.num_docs();

  // Two swaps retire the pinned generation from the engine's point of
  // view; the snapshot must keep it fully usable.
  ASSERT_TRUE(engine_->BuildIndex(db_).ok());
  ASSERT_TRUE(engine_->BuildIndex(db_).ok());
  std::shared_ptr<const Engine::IndexMap> current = engine_->IndexSnapshot();
  EXPECT_NE(pinned.get(), current.get());

  EXPECT_EQ(old_news.num_docs(), old_docs);
  const std::vector<index::SearchResult> hits =
      old_news.TopK({"market", "trade"}, 3);
  EXPECT_LE(hits.size(), 3u);  // no crash, coherent answer
}

TEST_F(EngineConcurrencyFixture, StatsHookCountsConcurrentTraffic) {
  const std::string query = EventQuery();
  const EngineStatsSnapshot before = engine_->stats();
  constexpr int kThreads = 4;
  constexpr int kOps = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        ASSERT_TRUE(engine_->QueryTrending(query, 3).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const EngineStatsSnapshot after = engine_->stats();
  EXPECT_EQ(after.trending_queries - before.trending_queries,
            static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_GT(after.docs_scored, before.docs_scored);
  EXPECT_EQ(after.serving_errors, before.serving_errors);
}

TEST_F(EngineConcurrencyFixture, ColdEngineServesFailedPreconditionSafely) {
  Engine cold{EngineOptions{}};
  std::vector<std::thread> threads;
  std::atomic<uint64_t> wrong_status{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        StatusOr<std::vector<QueryHit>> hits = cold.QueryTrending("x", 3);
        if (hits.ok() ||
            hits.status().code() != StatusCode::kFailedPrecondition) {
          wrong_status.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong_status.load(), 0u);
  EXPECT_EQ(cold.stats().serving_errors, 200u);
}

}  // namespace
}  // namespace newsdiff
