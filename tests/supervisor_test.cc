// PipelineSupervisor integration tests: stage retries, soft deadlines, and
// the crash-kill contract — a run killed mid-save under injected storage
// faults recovers to the newest intact snapshot generation and, via the
// stage ledger, completes with outputs byte-identical to an uninterrupted
// fault-free run.
#include "core/supervisor.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/embedding_cache.h"
#include "datagen/faults.h"
#include "datagen/world.h"
#include "store/json.h"

namespace newsdiff::core {
namespace {

namespace fs = std::filesystem;

/// Advances 100 ms on every reading: any interval measured around a stage
/// looks like 100 ms, letting deadline tests trip without real sleeping.
class TickingClock : public Clock {
 public:
  int64_t NowMillis() override { return now_ += 100; }
  void SleepMillis(int64_t ms) override { now_ += ms; }

 private:
  int64_t now_ = 0;
};

class SupervisorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions wopts;
    wopts.seed = 77;
    wopts.num_users = 200;
    wopts.num_articles = 400;
    wopts.num_tweets = 1200;
    wopts.duration_days = 40;
    wopts.num_news_events = 4;
    wopts.num_chatter_events = 2;
    world_ = new datagen::World(datagen::GenerateWorld(wopts));

    PretrainedConfig cfg;
    cfg.dimension = 32;
    cfg.background_sentences = 1200;
    cfg.epochs = 1;
    auto store = LoadOrTrainPretrained("", cfg);
    ASSERT_TRUE(store.ok());
    store_ = new embed::PretrainedStore(std::move(store).value());
  }

  static void TearDownTestSuite() {
    delete store_;
    delete world_;
    store_ = nullptr;
    world_ = nullptr;
  }

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_supervisor_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static PipelineOptions SmallOptions() {
    PipelineOptions popts;
    popts.topics.num_topics = 6;
    popts.topics.nmf.max_iterations = 40;
    popts.news_mabed.max_events = 20;
    popts.twitter_mabed.max_events = 30;
    return popts;
  }

  /// Canonical byte dump of every stage's checkpoint collection; equality
  /// means the analysis outputs are byte-identical.
  static std::string DumpStageOutputs(const store::Database& db) {
    std::string out;
    for (const char* name :
         {kTopicsCollection, kNewsEventsCollection, kTwitterEventsCollection,
          kTrendingCollection, kCorrelationsCollection,
          kAssignmentsCollection}) {
      out += "== ";
      out += name;
      out += '\n';
      if (const store::Collection* c = db.Get(name)) {
        for (const store::Value& doc : c->All()) {
          out += store::ToJson(doc);
          out += '\n';
        }
      }
    }
    return out;
  }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
  static datagen::World* world_;
  static embed::PretrainedStore* store_;
};

datagen::World* SupervisorFixture::world_ = nullptr;
embed::PretrainedStore* SupervisorFixture::store_ = nullptr;

TEST_F(SupervisorFixture, SupervisedRunMatchesPlainPipelineRun) {
  store::Database plain_db;
  world_->LoadInto(plain_db);
  Pipeline pipeline(SmallOptions());
  auto plain = pipeline.Run(plain_db, *store_);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  store::Database db;
  world_->LoadInto(db);
  PipelineSupervisor supervisor(Pipeline(SmallOptions()), SupervisorOptions{});
  auto supervised = supervisor.Run(db, *store_);
  ASSERT_TRUE(supervised.ok()) << supervised.status().ToString();

  EXPECT_EQ(supervisor.report().stages_computed, 6u);
  EXPECT_EQ(supervisor.report().stages_resumed, 0u);
  EXPECT_EQ(supervisor.report().retries, 0u);

  ASSERT_EQ(supervised->news_events.size(), plain->news_events.size());
  for (size_t i = 0; i < plain->news_events.size(); ++i) {
    EXPECT_EQ(supervised->news_events[i].main_word,
              plain->news_events[i].main_word);
  }
  EXPECT_EQ(supervised->topics.size(), plain->topics.size());
  EXPECT_EQ(supervised->correlations.size(), plain->correlations.size());
  EXPECT_EQ(supervised->assignments.size(), plain->assignments.size());
  EXPECT_EQ(supervised->unrelated_twitter_events,
            plain->unrelated_twitter_events);

  // Stage outputs and the completion ledger landed in the store.
  EXPECT_NE(db.Get(kTopicsCollection), nullptr);
  ASSERT_NE(db.Get(kStageLedgerCollection), nullptr);
  EXPECT_EQ(db.Get(kStageLedgerCollection)->size(), 6u);
}

TEST_F(SupervisorFixture, TransientStageFaultIsRetried) {
  store::Database db;
  world_->LoadInto(db);
  SupervisorOptions sopts;
  sopts.max_stage_attempts = 3;
  sopts.stage_fault_hook = [](const std::string& stage, size_t attempt) {
    if (stage == "news_events" && attempt == 1) {
      return Status::Unavailable("injected transient stage failure");
    }
    return Status::OK();
  };
  PipelineSupervisor supervisor(Pipeline(SmallOptions()), sopts);
  auto result = supervisor.Run(db, *store_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(supervisor.report().retries, 1u);
  ASSERT_EQ(supervisor.report().stages.size(), 6u);
  EXPECT_EQ(supervisor.report().stages[1].name, "news_events");
  EXPECT_EQ(supervisor.report().stages[1].attempts, 2u);
}

TEST_F(SupervisorFixture, PersistentStageFaultExhaustsAttempts) {
  store::Database db;
  world_->LoadInto(db);
  SupervisorOptions sopts;
  sopts.max_stage_attempts = 2;
  sopts.stage_fault_hook = [](const std::string& stage, size_t) {
    return stage == "topics"
               ? Status::Unavailable("stage permanently down")
               : Status::OK();
  };
  PipelineSupervisor supervisor(Pipeline(SmallOptions()), sopts);
  auto result = supervisor.Run(db, *store_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(supervisor.report().retries, 1u);
}

TEST_F(SupervisorFixture, SoftDeadlineCountsAsFailedAttempt) {
  store::Database db;
  world_->LoadInto(db);
  TickingClock clock;  // every stage measures as 100 ms
  SupervisorOptions sopts;
  sopts.max_stage_attempts = 2;
  sopts.stage_deadline_ms = 50;
  sopts.clock = &clock;
  PipelineSupervisor supervisor(Pipeline(SmallOptions()), sopts);
  auto result = supervisor.Run(db, *store_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(SupervisorFixture, LedgerResumesAndInputChangesInvalidateIt) {
  SupervisorOptions sopts;
  sopts.snapshot_dir = dir();
  {
    store::Database db;
    world_->LoadInto(db);
    PipelineSupervisor supervisor(Pipeline(SmallOptions()), sopts);
    ASSERT_TRUE(supervisor.Run(db, *store_).ok());
  }

  // Restarted process, unchanged inputs: everything resumes, nothing
  // recomputes.
  store::Database db;
  PipelineSupervisor resumed(Pipeline(SmallOptions()), sopts);
  ASSERT_TRUE(resumed.Recover(db).ok());
  EXPECT_TRUE(resumed.report().recovered);
  auto result = resumed.Run(db, *store_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(resumed.report().stages_resumed, 6u);
  EXPECT_EQ(resumed.report().stages_computed, 0u);
  EXPECT_FALSE(result->topics.empty());
  EXPECT_FALSE(result->assignments.empty());

  // A refreshed crawl (here: one extra tweet) changes the input signature;
  // serving the old ledger would mean stale analysis, so everything must
  // recompute.
  store::Collection* tweets = db.Get("tweets");
  ASSERT_NE(tweets, nullptr);
  ASSERT_TRUE(tweets->Insert(tweets->All().front()).ok());
  PipelineSupervisor again(Pipeline(SmallOptions()), sopts);
  ASSERT_TRUE(again.Run(db, *store_).ok());
  EXPECT_EQ(again.report().stages_resumed, 0u);
  EXPECT_EQ(again.report().stages_computed, 6u);
}

TEST_F(SupervisorFixture, KilledMidSaveRecoversByteIdentical) {
  // Reference: uninterrupted, fault-free supervised run.
  store::Database base_db;
  world_->LoadInto(base_db);
  PipelineSupervisor baseline(Pipeline(SmallOptions()), SupervisorOptions{});
  auto want = baseline.Run(base_db, *store_);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  const std::string want_dump = DumpStageOutputs(base_db);

  bool any_crashed = false;
  bool any_resumed = false;
  for (size_t crash_at : {10u, 60u, 120u}) {
    SCOPED_TRACE("crash_after_ops=" + std::to_string(crash_at));
    const std::string snap_dir = dir() + "_" + std::to_string(crash_at);
    fs::remove_all(snap_dir);

    datagen::StorageFaultOptions fopts;
    fopts.seed = 9000 + crash_at;
    fopts.crash_after_ops = crash_at;
    datagen::FaultyFileIo faulty(DefaultFileIo(), fopts);
    SupervisorOptions sopts;
    sopts.snapshot_dir = snap_dir;
    sopts.snapshot.io = &faulty;

    store::Database db1;
    world_->LoadInto(db1);
    PipelineSupervisor first(Pipeline(SmallOptions()), sopts);
    auto killed = first.Run(db1, *store_);

    if (killed.ok()) {
      // Crash point landed beyond the run's ops (or inside best-effort GC).
      EXPECT_EQ(DumpStageOutputs(db1), want_dump);
    } else {
      any_crashed = true;
      // The "rebooted process": recover the newest intact generation into a
      // fresh store and let the ledger splice the run back together.
      faulty.Reboot();
      store::Database db2;
      PipelineSupervisor second(Pipeline(SmallOptions()), sopts);
      ASSERT_TRUE(second.Recover(db2).ok());
      if (db2.Get("news") == nullptr) {
        // Crashed before anything durable: the crawler refills the store.
        world_->LoadInto(db2);
      }
      auto completed = second.Run(db2, *store_);
      ASSERT_TRUE(completed.ok()) << completed.status().ToString();
      any_resumed |= second.report().stages_resumed > 0;
      EXPECT_EQ(DumpStageOutputs(db2), want_dump)
          << "spliced run diverged from the uninterrupted one";
    }
    fs::remove_all(snap_dir);
  }
  EXPECT_TRUE(any_crashed) << "crash points never fired; test is vacuous";
  EXPECT_TRUE(any_resumed)
      << "no crash point exercised ledger-based stage resumption";
}

TEST_F(SupervisorFixture, WalLeaseExcludesASecondSupervisor) {
  ManualClock clock;
  SupervisorOptions sopts;
  sopts.snapshot_dir = dir();
  sopts.clock = &clock;
  sopts.lease_enabled = true;

  store::Database db_a;
  world_->LoadInto(db_a);
  PipelineSupervisor a(Pipeline(SmallOptions()), sopts);
  ASSERT_TRUE(a.Recover(db_a).ok());  // acquires the writer lease
  ASSERT_TRUE(a.lease().has_value());

  // A second supervisor pointed at the same directory fails fast, before
  // touching the store.
  store::Database db_b;
  world_->LoadInto(db_b);
  PipelineSupervisor b(Pipeline(SmallOptions()), sopts);
  auto blocked = b.Run(db_b, *store_);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);

  // The holder completes and releases on clean exit…
  auto finished = a.Run(db_a, *store_);
  ASSERT_TRUE(finished.ok()) << finished.status().ToString();
  EXPECT_FALSE(a.lease().has_value());

  // …after which the second supervisor acquires immediately and succeeds.
  auto unblocked = b.Run(db_b, *store_);
  ASSERT_TRUE(unblocked.ok()) << unblocked.status().ToString();
}

TEST_F(SupervisorFixture, WalLeaseTakeoverFencesThePresumedDeadSupervisor) {
  ManualClock clock;
  SupervisorOptions sopts;
  sopts.snapshot_dir = dir();
  sopts.clock = &clock;
  sopts.use_wal = true;
  sopts.lease_enabled = true;
  sopts.lease.ttl_ms = 1'000;

  // Supervisor "a" acquires the lease and then hangs (no renewals).
  store::Database db_a;
  world_->LoadInto(db_a);
  PipelineSupervisor a(Pipeline(SmallOptions()), sopts);
  ASSERT_TRUE(a.Recover(db_a).ok());
  ASSERT_TRUE(a.lease().has_value());

  // Past the TTL it is presumed dead; "b" takes over and completes a full
  // WAL-mode run.
  clock.Advance(1'500);
  store::Database db_b;
  world_->LoadInto(db_b);
  PipelineSupervisor b(Pipeline(SmallOptions()), sopts);
  auto takeover = b.Run(db_b, *store_);
  ASSERT_TRUE(takeover.ok()) << takeover.status().ToString();

  // "a" wakes up: its stale lease is fenced, so its Run fails before a
  // single byte of its state reaches the shared directory.
  auto stale = a.Run(db_a, *store_);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SupervisorFixture, WalModeKilledRunRecoversByteIdentical) {
  // Reference: uninterrupted, fault-free supervised run.
  store::Database base_db;
  world_->LoadInto(base_db);
  PipelineSupervisor baseline(Pipeline(SmallOptions()), SupervisorOptions{});
  auto want = baseline.Run(base_db, *store_);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  const std::string want_dump = DumpStageOutputs(base_db);

  bool any_crashed = false;
  bool any_replayed = false;
  for (size_t crash_at : {12u, 40u, 60u, 90u}) {
    SCOPED_TRACE("crash_after_ops=" + std::to_string(crash_at));
    const std::string snap_dir = dir() + "_" + std::to_string(crash_at);
    fs::remove_all(snap_dir);

    datagen::StorageFaultOptions fopts;
    fopts.seed = 4000 + crash_at;
    fopts.crash_after_ops = crash_at;
    datagen::FaultyFileIo faulty(DefaultFileIo(), fopts);
    SupervisorOptions sopts;
    sopts.snapshot_dir = snap_dir;
    sopts.snapshot.io = &faulty;
    sopts.use_wal = true;

    store::Database db1;
    world_->LoadInto(db1);
    PipelineSupervisor first(Pipeline(SmallOptions()), sopts);
    auto killed = first.Run(db1, *store_);

    if (killed.ok()) {
      EXPECT_EQ(DumpStageOutputs(db1), want_dump);
    } else {
      any_crashed = true;
      // Rebooted process: checkpoint load + WAL replay, then the ledger
      // splices the run back together from where durability really stopped.
      faulty.Reboot();
      store::Database db2;
      PipelineSupervisor second(Pipeline(SmallOptions()), sopts);
      ASSERT_TRUE(second.Recover(db2).ok());
      any_replayed |= second.report().recovery.wal_records_replayed > 0;
      if (db2.Get("news") == nullptr) {
        // Crashed before the crawl became durable: the crawler refills the
        // store (its inserts now flow through the attached WAL).
        world_->LoadInto(db2);
      }
      auto completed = second.Run(db2, *store_);
      ASSERT_TRUE(completed.ok()) << completed.status().ToString();
      EXPECT_EQ(DumpStageOutputs(db2), want_dump)
          << "spliced WAL-mode run diverged from the uninterrupted one";
    }
    fs::remove_all(snap_dir);
  }
  EXPECT_TRUE(any_crashed) << "crash points never fired; test is vacuous";
  EXPECT_TRUE(any_replayed)
      << "no crash point exercised WAL replay on recovery";
}

}  // namespace
}  // namespace newsdiff::core
