#include <cmath>

#include <gtest/gtest.h>

#include "corpus/weighting.h"

namespace newsdiff::corpus {
namespace {

Corpus SmallCorpus() {
  Corpus corp;
  corp.AddDocument({"a", "a", "a", "b"});
  corp.AddDocument({"b", "c"});
  corp.AddDocument({"c", "c", "d"});
  return corp;
}

double CellFor(const Corpus& corp, const DocumentTermMatrix& dtm, size_t doc,
               const std::string& term) {
  for (size_t c = 0; c < dtm.column_terms.size(); ++c) {
    if (corp.vocabulary().Term(dtm.column_terms[c]) == term) {
      return dtm.matrix.At(doc, c);
    }
  }
  return 0.0;
}

TEST(WeightingSchemeTest, NamesAreStable) {
  EXPECT_STREQ(WeightingSchemeName(WeightingScheme::kTf), "TF");
  EXPECT_STREQ(WeightingSchemeName(WeightingScheme::kTfIdfNormalized),
               "TFIDF_N");
  EXPECT_STREQ(WeightingSchemeName(WeightingScheme::kOkapiBm25), "BM25");
}

TEST(WeightingSchemeTest, BooleanIsPresenceIndicator) {
  Corpus corp = SmallCorpus();
  DtmOptions opts;
  opts.scheme = WeightingScheme::kBoolean;
  DocumentTermMatrix dtm = BuildDocumentTermMatrix(corp, opts);
  EXPECT_DOUBLE_EQ(CellFor(corp, dtm, 0, "a"), 1.0);  // tf was 3
  EXPECT_DOUBLE_EQ(CellFor(corp, dtm, 0, "b"), 1.0);
  EXPECT_DOUBLE_EQ(CellFor(corp, dtm, 0, "c"), 0.0);
}

TEST(WeightingSchemeTest, LogTfIsSublinear) {
  Corpus corp = SmallCorpus();
  DtmOptions opts;
  opts.scheme = WeightingScheme::kLogTf;
  DocumentTermMatrix dtm = BuildDocumentTermMatrix(corp, opts);
  EXPECT_NEAR(CellFor(corp, dtm, 0, "a"), 1.0 + std::log2(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(CellFor(corp, dtm, 0, "b"), 1.0);
}

TEST(WeightingSchemeTest, Bm25IdfFormula) {
  Corpus corp = SmallCorpus();
  uint32_t a = corp.vocabulary().Get("a");  // df = 1, n = 3
  EXPECT_NEAR(Bm25Idf(corp, a), std::log((3.0 - 1.0 + 0.5) / 1.5 + 1.0),
              1e-12);
}

TEST(WeightingSchemeTest, Bm25SaturatesWithTf) {
  // BM25 grows sublinearly: w(tf=3) < 3 * w(tf=1) for the same term.
  Corpus corp;
  corp.AddDocument({"x", "x", "x", "pad"});
  corp.AddDocument({"x", "pad", "pad", "pad"});
  corp.AddDocument({"pad", "pad", "pad", "pad"});
  DtmOptions opts;
  opts.scheme = WeightingScheme::kOkapiBm25;
  DocumentTermMatrix dtm = BuildDocumentTermMatrix(corp, opts);
  double w3 = CellFor(corp, dtm, 0, "x");
  double w1 = CellFor(corp, dtm, 1, "x");
  EXPECT_GT(w3, w1);
  EXPECT_LT(w3, 3.0 * w1);
}

/// Property sweep: every scheme produces finite, non-negative weights and
/// keeps the same sparsity structure as raw TF.
class SchemeSweep : public ::testing::TestWithParam<WeightingScheme> {};

TEST_P(SchemeSweep, WeightsFiniteNonNegativeAndAligned) {
  Corpus corp = SmallCorpus();
  DtmOptions tf_opts;
  tf_opts.scheme = WeightingScheme::kTf;
  DocumentTermMatrix tf = BuildDocumentTermMatrix(corp, tf_opts);
  DtmOptions opts;
  opts.scheme = GetParam();
  DocumentTermMatrix dtm = BuildDocumentTermMatrix(corp, opts);
  EXPECT_EQ(dtm.matrix.rows(), tf.matrix.rows());
  EXPECT_EQ(dtm.matrix.cols(), tf.matrix.cols());
  for (double v : dtm.matrix.values()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  // A zero-IDF term may vanish, so nnz can only shrink.
  EXPECT_LE(dtm.matrix.nnz(), tf.matrix.nnz());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeSweep,
    ::testing::Values(WeightingScheme::kTf, WeightingScheme::kTfIdf,
                      WeightingScheme::kTfIdfNormalized,
                      WeightingScheme::kBoolean, WeightingScheme::kLogTf,
                      WeightingScheme::kOkapiBm25));

}  // namespace
}  // namespace newsdiff::corpus
