#include "embed/pvdbow.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/matrix.h"

namespace newsdiff::embed {
namespace {

std::vector<std::vector<std::string>> TwoThemeDocs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> red = {"apple", "cherry", "ruby", "crimson"};
  std::vector<std::string> blue = {"ocean", "sky", "sapphire", "navy"};
  std::vector<std::vector<std::string>> docs;
  for (size_t d = 0; d < n; ++d) {
    const auto& pool = d % 2 == 0 ? red : blue;
    std::vector<std::string> doc;
    for (int i = 0; i < 12; ++i) {
      doc.push_back(pool[rng.NextBelow(pool.size())]);
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

TEST(PvDbowTest, RejectsBadInput) {
  EXPECT_FALSE(TrainPvDbow({}, PvDbowOptions{}).ok());
  PvDbowOptions opts;
  opts.dimension = 0;
  EXPECT_FALSE(TrainPvDbow({{"a"}}, opts).ok());
  PvDbowOptions high_count;
  high_count.min_count = 99;
  EXPECT_FALSE(TrainPvDbow({{"a", "b"}}, high_count).ok());
}

TEST(PvDbowTest, OutputShape) {
  PvDbowOptions opts;
  opts.dimension = 24;
  opts.epochs = 2;
  opts.min_count = 1;
  auto result = TrainPvDbow(TwoThemeDocs(10, 1), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->doc_vectors.rows(), 10u);
  EXPECT_EQ(result->doc_vectors.cols(), 24u);
}

TEST(PvDbowTest, DeterministicForSeed) {
  PvDbowOptions opts;
  opts.dimension = 16;
  opts.epochs = 2;
  opts.min_count = 1;
  auto docs = TwoThemeDocs(8, 2);
  auto r1 = TrainPvDbow(docs, opts);
  auto r2 = TrainPvDbow(docs, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->doc_vectors.data(), r2->doc_vectors.data());
}

TEST(PvDbowTest, SameThemeDocumentsCluster) {
  PvDbowOptions opts;
  opts.dimension = 32;
  opts.epochs = 20;
  opts.min_count = 1;
  auto result = TrainPvDbow(TwoThemeDocs(40, 3), opts);
  ASSERT_TRUE(result.ok());
  // Mean within-theme similarity should exceed cross-theme similarity.
  double within = 0.0, cross = 0.0;
  size_t n_within = 0, n_cross = 0;
  for (size_t a = 0; a < 40; ++a) {
    for (size_t b = a + 1; b < 40; ++b) {
      double sim = la::CosineSimilarity(result->doc_vectors.Row(a),
                                        result->doc_vectors.Row(b));
      if (a % 2 == b % 2) {
        within += sim;
        ++n_within;
      } else {
        cross += sim;
        ++n_cross;
      }
    }
  }
  EXPECT_GT(within / static_cast<double>(n_within),
            cross / static_cast<double>(n_cross));
}

TEST(PvDmTest, RejectsBadInput) {
  EXPECT_FALSE(TrainPvDm({}, PvDbowOptions{}).ok());
  PvDbowOptions opts;
  opts.dimension = 0;
  EXPECT_FALSE(TrainPvDm({{"a"}}, opts).ok());
}

TEST(PvDmTest, OutputShapeAndDeterminism) {
  PvDbowOptions opts;
  opts.dimension = 20;
  opts.epochs = 2;
  opts.min_count = 1;
  auto docs = TwoThemeDocs(12, 4);
  auto r1 = TrainPvDm(docs, opts);
  auto r2 = TrainPvDm(docs, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->doc_vectors.rows(), 12u);
  EXPECT_EQ(r1->doc_vectors.cols(), 20u);
  EXPECT_EQ(r1->doc_vectors.data(), r2->doc_vectors.data());
}

TEST(PvDmTest, SameThemeDocumentsCluster) {
  PvDbowOptions opts;
  opts.dimension = 32;
  opts.epochs = 20;
  opts.min_count = 1;
  auto result = TrainPvDm(TwoThemeDocs(40, 5), opts);
  ASSERT_TRUE(result.ok());
  double within = 0.0, cross = 0.0;
  size_t n_within = 0, n_cross = 0;
  for (size_t a = 0; a < 40; ++a) {
    for (size_t b = a + 1; b < 40; ++b) {
      double sim = la::CosineSimilarity(result->doc_vectors.Row(a),
                                        result->doc_vectors.Row(b));
      if (a % 2 == b % 2) {
        within += sim;
        ++n_within;
      } else {
        cross += sim;
        ++n_cross;
      }
    }
  }
  EXPECT_GT(within / static_cast<double>(n_within),
            cross / static_cast<double>(n_cross));
}

}  // namespace
}  // namespace newsdiff::embed
