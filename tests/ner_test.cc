#include "text/ner.h"

#include <gtest/gtest.h>

namespace newsdiff::text {
namespace {

std::vector<std::string> Concepts(const std::string& input) {
  std::vector<std::string> out;
  for (const Entity& e : ExtractEntities(input)) out.push_back(e.concept_token);
  return out;
}

TEST(NerTest, MultiWordEntity) {
  EXPECT_EQ(Concepts("talks with Theresa May continued"),
            (std::vector<std::string>{"theresa_may"}));
}

TEST(NerTest, MultipleEntities) {
  EXPECT_EQ(Concepts("Boris Johnson met Donald Trump in New York"),
            (std::vector<std::string>{"boris_johnson", "donald_trump",
                                      "new_york"}));
}

TEST(NerTest, LinkerWords) {
  EXPECT_EQ(Concepts("the House of Commons voted"),
            (std::vector<std::string>{"house_of_commons"}));
}

TEST(NerTest, SentenceInitialCommonWordIgnored) {
  // "The" at sentence start followed by lowercase is sentence case, not an
  // entity.
  EXPECT_TRUE(Concepts("Talks continued today.").empty());
  EXPECT_TRUE(Concepts("However, progress stalled.").empty());
}

TEST(NerTest, SentenceInitialEntityKeptWhenFollowedByCapital) {
  EXPECT_EQ(Concepts("Theresa May resigned."),
            (std::vector<std::string>{"theresa_may"}));
}

TEST(NerTest, AcronymAtSentenceStart) {
  EXPECT_EQ(Concepts("NASA launched a rocket."),
            (std::vector<std::string>{"nasa"}));
}

TEST(NerTest, StopwordCapitalsNotEntities) {
  EXPECT_TRUE(Concepts("And then It happened...").empty());
}

TEST(NerTest, SurfaceFormPreserved) {
  auto entities = ExtractEntities("meeting Emperor Naruhito tomorrow");
  ASSERT_EQ(entities.size(), 1u);
  EXPECT_EQ(entities[0].surface, "Emperor Naruhito");
  EXPECT_EQ(entities[0].concept_token, "emperor_naruhito");
}

TEST(NerTest, EmptyInput) {
  EXPECT_TRUE(ExtractEntities("").empty());
  EXPECT_EQ(FoldEntities(""), "");
}

TEST(FoldTest, ReplacesSurfaceWithConcept) {
  std::string folded = FoldEntities("talks with Theresa May continued");
  EXPECT_EQ(folded, "talks with theresa_may continued");
}

TEST(FoldTest, MultipleReplacements) {
  std::string folded = FoldEntities("Boris Johnson met Donald Trump");
  EXPECT_NE(folded.find("boris_johnson"), std::string::npos);
  EXPECT_NE(folded.find("donald_trump"), std::string::npos);
  EXPECT_EQ(folded.find("Boris"), std::string::npos);
}

TEST(FoldTest, NoEntitiesMeansIdentity) {
  std::string text = "plain lowercase text without names";
  EXPECT_EQ(FoldEntities(text), text);
}

TEST(FoldTest, SurroundingPunctuationSurvives) {
  std::string folded = FoldEntities("deal (with Theresa May), they said.");
  EXPECT_EQ(folded, "deal (with theresa_may), they said.");
}

}  // namespace
}  // namespace newsdiff::text
