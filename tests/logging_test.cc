#include "common/logging.h"

#include <gtest/gtest.h>

namespace newsdiff {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // These must be cheap no-ops, not crashes.
  NEWSDIFF_LOG(Debug) << "invisible " << 42;
  NEWSDIFF_LOG(Info) << "also invisible";
  NEWSDIFF_LOG(Warning) << "still invisible";
}

TEST(LoggingTest, StreamAcceptsMixedTypes) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  NEWSDIFF_LOG(Debug) << "str " << 1 << ' ' << 2.5 << ' ' << true;
}

}  // namespace
}  // namespace newsdiff
