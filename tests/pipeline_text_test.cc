#include "text/pipeline.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "text/stopwords.h"

namespace newsdiff::text {
namespace {

bool Contains(const std::vector<std::string>& tokens,
              const std::string& token) {
  return std::find(tokens.begin(), tokens.end(), token) != tokens.end();
}

TEST(StopwordsTest, CoreWordsPresent) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("don't"));
  EXPECT_FALSE(IsStopword("brexit"));
  EXPECT_FALSE(IsStopword(""));
  EXPECT_GT(EnglishStopwords().size(), 150u);
}

TEST(NewsTMTest, RemovesStopwordsAndPunctuation) {
  auto tokens =
      PreprocessNewsTM("The tariffs were imposed on the imports.");
  EXPECT_FALSE(Contains(tokens, "the"));
  EXPECT_FALSE(Contains(tokens, "on"));
  EXPECT_TRUE(Contains(tokens, "tariff"));   // lemmatized plural
  EXPECT_TRUE(Contains(tokens, "impose"));   // lemmatized past
  EXPECT_TRUE(Contains(tokens, "import"));
}

TEST(NewsTMTest, FoldsEntitiesIntoConcepts) {
  auto tokens = PreprocessNewsTM("Talks with Theresa May stalled.");
  EXPECT_TRUE(Contains(tokens, "theresa_may"));
  EXPECT_FALSE(Contains(tokens, "theresa"));
}

TEST(NewsTMTest, ConceptTokensNotLemmatized) {
  auto tokens = PreprocessNewsTM("He visited the United States yesterday.");
  EXPECT_TRUE(Contains(tokens, "united_states"));
}

TEST(NewsEDTest, MinimalRecipeKeepsStopwords) {
  auto tokens = PreprocessNewsED("The vote was delayed.");
  EXPECT_TRUE(Contains(tokens, "the"));
  EXPECT_TRUE(Contains(tokens, "vote"));
  EXPECT_TRUE(Contains(tokens, "was"));  // no lemmatization either
  EXPECT_FALSE(Contains(tokens, "."));
}

TEST(TwitterEDTest, StripsUrls) {
  auto tokens =
      PreprocessTwitterED("breaking news https://t.co/abc123 more soon");
  EXPECT_TRUE(Contains(tokens, "breaking"));
  EXPECT_FALSE(Contains(tokens, "https"));
  EXPECT_FALSE(Contains(tokens, "abc123"));
}

TEST(TwitterEDTest, StripsWwwUrls) {
  auto tokens = PreprocessTwitterED("see www.example.com for info");
  EXPECT_FALSE(Contains(tokens, "www"));
  EXPECT_TRUE(Contains(tokens, "info"));
}

TEST(TwitterEDTest, DropsMentionsKeepsHashtagWords) {
  auto tokens = PreprocessTwitterED("@user1 thoughts on #brexit tonight?");
  EXPECT_FALSE(Contains(tokens, "user1"));
  EXPECT_TRUE(Contains(tokens, "brexit"));
  EXPECT_TRUE(Contains(tokens, "thoughts"));
}

TEST(TwitterEDTest, EmptyTweet) {
  EXPECT_TRUE(PreprocessTwitterED("").empty());
  EXPECT_TRUE(PreprocessTwitterED("@only @mentions").empty());
}

TEST(PreprocessDispatchTest, KindSelectsRecipe) {
  std::string text = "The tariffs! @user #tag https://x.co";
  EXPECT_EQ(Preprocess(text, PipelineKind::kNewsTM),
            PreprocessNewsTM(text));
  EXPECT_EQ(Preprocess(text, PipelineKind::kNewsED),
            PreprocessNewsED(text));
  EXPECT_EQ(Preprocess(text, PipelineKind::kTwitterED),
            PreprocessTwitterED(text));
}

/// Property: no recipe ever emits a token containing punctuation
/// (other than the in-word apostrophe / underscore).
class PipelinePunctuationSweep
    : public ::testing::TestWithParam<PipelineKind> {};

TEST_P(PipelinePunctuationSweep, TokensArePunctuationFree) {
  const char* text =
      "Breaking! Tariffs (25%) hit; \"imports\" fall -- @user says "
      "#economy https://news.example/x?id=1. Theresa May responds...";
  for (const std::string& tok : Preprocess(text, GetParam())) {
    for (char c : tok) {
      bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                c == '\'';
      EXPECT_TRUE(ok) << "token: " << tok;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Recipes, PipelinePunctuationSweep,
                         ::testing::Values(PipelineKind::kNewsTM,
                                           PipelineKind::kNewsED,
                                           PipelineKind::kTwitterED));

}  // namespace
}  // namespace newsdiff::text
