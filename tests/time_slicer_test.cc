#include "event/time_slicer.h"

#include <gtest/gtest.h>

namespace newsdiff::event {
namespace {

TEST(TimeSlicerTest, BasicPartition) {
  TimeSlicer slicer(0, 100, 10);
  EXPECT_EQ(slicer.num_slices(), 11u);
  EXPECT_EQ(slicer.SliceOf(0), 0u);
  EXPECT_EQ(slicer.SliceOf(9), 0u);
  EXPECT_EQ(slicer.SliceOf(10), 1u);
  EXPECT_EQ(slicer.SliceOf(100), 10u);
}

TEST(TimeSlicerTest, ClampsOutOfRange) {
  TimeSlicer slicer(100, 200, 50);
  EXPECT_EQ(slicer.SliceOf(0), 0u);
  EXPECT_EQ(slicer.SliceOf(99), 0u);
  EXPECT_EQ(slicer.SliceOf(10000), slicer.num_slices() - 1);
}

TEST(TimeSlicerTest, SingleInstant) {
  TimeSlicer slicer(500, 500, 60);
  EXPECT_EQ(slicer.num_slices(), 1u);
  EXPECT_EQ(slicer.SliceOf(500), 0u);
}

TEST(TimeSlicerTest, SliceBoundaries) {
  TimeSlicer slicer(1000, 1000 + 3600, 1800);
  EXPECT_EQ(slicer.SliceStart(0), 1000);
  EXPECT_EQ(slicer.SliceEnd(0), 2800);
  EXPECT_EQ(slicer.SliceStart(1), 2800);
}

TEST(TimeSlicerTest, PaperSliceWidths) {
  // 5 months at the paper's 30-minute tweet slices.
  UnixSeconds start = 1554076800;
  UnixSeconds end = start + 150 * kSecondsPerDay;
  TimeSlicer slicer(start, end, 30 * kSecondsPerMinute);
  EXPECT_EQ(slicer.num_slices(), 150u * 48u + 1u);
}

/// Property: SliceOf is consistent with SliceStart/SliceEnd.
class SlicerConsistencySweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(SlicerConsistencySweep, SliceOfItsOwnRange) {
  TimeSlicer slicer(10000, 10000 + 7 * kSecondsPerDay, GetParam());
  for (size_t i = 0; i < slicer.num_slices(); i += 3) {
    EXPECT_EQ(slicer.SliceOf(slicer.SliceStart(i)), i);
    EXPECT_EQ(slicer.SliceOf(slicer.SliceEnd(i) - 1), i);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SlicerConsistencySweep,
                         ::testing::Values(60, 1800, 3600, 86400));

}  // namespace
}  // namespace newsdiff::event
