// Bitwise serial-vs-parallel equality for every stage wired to the
// deterministic execution layer (common/parallel.h). These are the
// contract tests behind DESIGN.md "Parallel execution": `threads` must
// never change a result, and sharded-semantics stages must depend only on
// the resolved shard count.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/time.h"
#include "embed/pvdbow.h"
#include "event/mabed.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "nn/architectures.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "topic/nmf.h"

namespace newsdiff {
namespace {

la::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  la::Matrix m(rows, cols);
  Rng rng(seed);
  for (double& v : m.data()) v = rng.Uniform(-2.0, 2.0);
  return m;
}

la::CsrMatrix RandomCsr(size_t rows, size_t cols, double density,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> triplets;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng.NextDouble() < density) {
        triplets.push_back({static_cast<uint32_t>(r),
                            static_cast<uint32_t>(c), rng.NextDouble()});
      }
    }
  }
  return la::CsrMatrix::FromTriplets(rows, cols, triplets);
}

bool BitwiseEqual(const la::Matrix& a, const la::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.data() == b.data();  // exact double comparison, element-wise
}

const Parallelism kPar4{.threads = 4};

TEST(ParallelStagesLa, MatMulBitwiseEqualToSerial) {
  la::Matrix a = RandomMatrix(37, 23, 1);
  la::Matrix b = RandomMatrix(23, 19, 2);
  EXPECT_TRUE(BitwiseEqual(la::MatMul(a, b), la::MatMul(a, b, kPar4)));
}

TEST(ParallelStagesLa, MatMulTransABitwiseEqualToSerial) {
  la::Matrix a = RandomMatrix(31, 17, 3);
  la::Matrix b = RandomMatrix(31, 13, 4);
  EXPECT_TRUE(
      BitwiseEqual(la::MatMulTransA(a, b), la::MatMulTransA(a, b, kPar4)));
}

TEST(ParallelStagesLa, MatMulTransBBitwiseEqualToSerial) {
  la::Matrix a = RandomMatrix(29, 21, 5);
  la::Matrix b = RandomMatrix(11, 21, 6);
  EXPECT_TRUE(
      BitwiseEqual(la::MatMulTransB(a, b), la::MatMulTransB(a, b, kPar4)));
}

TEST(ParallelStagesLa, ElementwiseOpsBitwiseEqualToSerial) {
  la::Matrix serial = RandomMatrix(13, 41, 7);
  la::Matrix parallel = serial;
  la::Matrix other = RandomMatrix(13, 41, 8);

  serial.HadamardInPlace(other);
  parallel.HadamardInPlace(other, kPar4);
  EXPECT_TRUE(BitwiseEqual(serial, parallel));

  serial.DivideInPlace(other, 1e-9);
  parallel.DivideInPlace(other, 1e-9, kPar4);
  EXPECT_TRUE(BitwiseEqual(serial, parallel));

  serial.ClampMin(1e-8);
  parallel.ClampMin(1e-8, kPar4);
  EXPECT_TRUE(BitwiseEqual(serial, parallel));
}

TEST(ParallelStagesLa, CsrMultiplyDenseBitwiseEqualToSerial) {
  la::CsrMatrix a = RandomCsr(64, 48, 0.15, 9);
  la::Matrix d = RandomMatrix(48, 10, 10);
  EXPECT_TRUE(BitwiseEqual(a.MultiplyDense(d), a.MultiplyDense(d, kPar4)));
  la::Matrix dt = RandomMatrix(10, 48, 11);
  EXPECT_TRUE(BitwiseEqual(a.MultiplyDenseTransposed(dt),
                           a.MultiplyDenseTransposed(dt, kPar4)));
}

TEST(ParallelStagesLa, TransposedGatherBitwiseEqualToScatter) {
  // The NMF parallelization hinges on this: the row-partitionable gather
  // Transposed().MultiplyDense must accumulate each output element in the
  // exact order of the serial scatter TransposeMultiplyDense.
  la::CsrMatrix a = RandomCsr(80, 55, 0.2, 12);
  la::Matrix d = RandomMatrix(80, 9, 13);
  la::Matrix scatter = a.TransposeMultiplyDense(d);
  la::Matrix gather = a.Transposed().MultiplyDense(d, kPar4);
  EXPECT_TRUE(BitwiseEqual(scatter, gather));
}

TEST(ParallelStagesNmf, FactorisationBitwiseEqualToSerial) {
  la::CsrMatrix a = RandomCsr(120, 60, 0.1, 14);
  topic::NmfOptions serial_opts;
  serial_opts.components = 6;
  serial_opts.max_iterations = 30;
  serial_opts.seed = 5;
  topic::NmfOptions parallel_opts = serial_opts;
  parallel_opts.parallelism = kPar4;

  auto serial = topic::Nmf(a, serial_opts);
  auto parallel = topic::Nmf(a, parallel_opts);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(BitwiseEqual(serial->w, parallel->w));
  EXPECT_TRUE(BitwiseEqual(serial->h, parallel->h));
  EXPECT_EQ(serial->iterations, parallel->iterations);
  EXPECT_EQ(serial->objective_history, parallel->objective_history);
}

corpus::Corpus BurstCorpus(uint64_t seed) {
  Rng rng(seed);
  corpus::Corpus corp;
  const char* background[] = {"alpha", "beta", "gamma", "delta",
                              "epsilon", "zeta", "eta", "theta"};
  const UnixSeconds day = kSecondsPerDay;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::string> doc;
    for (int w = 0; w < 8; ++w) doc.push_back(background[rng.NextBelow(8)]);
    corp.AddDocument(doc, static_cast<int64_t>(rng.NextBelow(20 * day)));
  }
  for (int i = 0; i < 100; ++i) {
    std::vector<std::string> doc = {"quake", "rescue", "aftershock"};
    for (int w = 0; w < 4; ++w) doc.push_back(background[rng.NextBelow(8)]);
    corp.AddDocument(doc,
                     5 * day + static_cast<int64_t>(rng.NextBelow(3 * day)));
  }
  return corp;
}

TEST(ParallelStagesMabed, EventsBitwiseEqualToSerial) {
  corpus::Corpus corp = BurstCorpus(17);
  event::MabedOptions serial_opts;
  serial_opts.time_slice_seconds = 6 * kSecondsPerHour;
  serial_opts.max_events = 5;
  serial_opts.min_main_doc_freq = 5;
  serial_opts.min_support = 10;
  event::MabedOptions parallel_opts = serial_opts;
  parallel_opts.parallelism = kPar4;

  auto serial = event::Mabed(serial_opts).Detect(corp);
  auto parallel = event::Mabed(parallel_opts).Detect(corp);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  ASSERT_FALSE(serial->empty());
  for (size_t i = 0; i < serial->size(); ++i) {
    const event::Event& s = (*serial)[i];
    const event::Event& p = (*parallel)[i];
    EXPECT_EQ(s.main_word, p.main_word);
    EXPECT_EQ(s.start_slice, p.start_slice);
    EXPECT_EQ(s.end_slice, p.end_slice);
    EXPECT_EQ(s.magnitude, p.magnitude);  // bitwise
    EXPECT_EQ(s.related_words, p.related_words);
    EXPECT_EQ(s.related_weights, p.related_weights);  // bitwise
  }
}

std::vector<std::vector<std::string>> PvDocs(uint64_t seed) {
  Rng rng(seed);
  const char* words[] = {"game", "goal", "team", "vote", "poll", "party",
                         "stock", "market", "trade", "rain", "storm", "wind"};
  std::vector<std::vector<std::string>> docs;
  for (int d = 0; d < 48; ++d) {
    std::vector<std::string> doc;
    size_t theme = static_cast<size_t>(d % 4) * 3;
    for (int w = 0; w < 24; ++w) {
      doc.push_back(words[theme + rng.NextBelow(3)]);
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

TEST(ParallelStagesPvDbow, ShardedResultIndependentOfThreadCount) {
  auto docs = PvDocs(19);
  embed::PvDbowOptions base;
  base.dimension = 16;
  base.epochs = 3;
  base.min_count = 1;
  base.parallelism = {.threads = 1, .shards = 4};
  embed::PvDbowOptions threaded = base;
  threaded.parallelism.threads = 4;

  auto one = embed::TrainPvDbow(docs, base);
  auto four = embed::TrainPvDbow(docs, threaded);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  EXPECT_TRUE(BitwiseEqual(one->doc_vectors, four->doc_vectors));
}

TEST(ParallelStagesPvDbow, SingleShardMatchesLegacySequential) {
  auto docs = PvDocs(21);
  embed::PvDbowOptions legacy;
  legacy.dimension = 16;
  legacy.epochs = 2;
  legacy.min_count = 1;
  embed::PvDbowOptions pinned = legacy;
  pinned.parallelism = {.threads = 8, .shards = 1};  // threaded, 1 shard

  auto a = embed::TrainPvDbow(docs, legacy);
  auto b = embed::TrainPvDbow(docs, pinned);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(BitwiseEqual(a->doc_vectors, b->doc_vectors));
}

void MakeBlobs(size_t per_class, size_t classes, size_t dim, uint64_t seed,
               la::Matrix* x, std::vector<int>* y) {
  Rng rng(seed);
  x->Resize(per_class * classes, dim);
  y->assign(per_class * classes, 0);
  size_t row = 0;
  for (size_t c = 0; c < classes; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      double* out = x->RowPtr(row);
      for (size_t d = 0; d < dim; ++d) {
        out[d] = rng.Gaussian((d % classes == c) ? 3.0 : 0.0, 0.5);
      }
      (*y)[row] = static_cast<int>(c);
      ++row;
    }
  }
}

std::vector<la::Matrix> FitAndSnapshotWeights(nn::Model& model,
                                              const la::Matrix& x,
                                              const std::vector<int>& y,
                                              const Parallelism& par) {
  nn::Sgd sgd({0.1, 0.0});
  nn::FitOptions fit;
  fit.epochs = 8;
  fit.batch_size = 16;
  fit.early_stopping.enabled = false;
  fit.parallelism = par;
  auto history = model.Fit(x, y, sgd, fit);
  EXPECT_TRUE(history.ok());
  std::vector<la::Matrix> weights;
  for (const nn::Param& p : model.Parameters()) weights.push_back(*p.value);
  return weights;
}

TEST(ParallelStagesTraining, MlpWeightsBitwiseEqualAcrossThreadCounts) {
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(40, 3, 12, 23, &x, &y);
  nn::MlpConfig cfg;
  cfg.input_size = 12;
  cfg.hidden_sizes = {16, 8};

  nn::Model serial_model = nn::BuildMlp(cfg);
  nn::Model parallel_model = nn::BuildMlp(cfg);
  auto serial = FitAndSnapshotWeights(serial_model, x, y, {});
  auto parallel = FitAndSnapshotWeights(parallel_model, x, y, kPar4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(serial[i], parallel[i])) << "param " << i;
  }
}

TEST(ParallelStagesTraining, CnnWeightsBitwiseEqualAcrossThreadCounts) {
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(30, 3, 32, 29, &x, &y);
  nn::CnnConfig cfg;
  cfg.input_size = 32;
  cfg.filters = 4;
  cfg.kernel_size = 5;
  cfg.pool_size = 2;
  cfg.dense_size = 8;

  // Conv1D's backward regroups its batch sum per shard, so pin the shard
  // count and vary only the thread count — the contract under test.
  Parallelism pinned_serial{.threads = 1, .shards = 8};
  Parallelism pinned_threaded{.threads = 4, .shards = 8};
  nn::Model serial_model = nn::BuildCnn(cfg);
  nn::Model parallel_model = nn::BuildCnn(cfg);
  auto serial = FitAndSnapshotWeights(serial_model, x, y, pinned_serial);
  auto parallel = FitAndSnapshotWeights(parallel_model, x, y, pinned_threaded);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(serial[i], parallel[i])) << "param " << i;
  }
}

TEST(ParallelStagesTraining, CnnSingleShardMatchesLegacyBackward) {
  // Resolved shard count 1 must reproduce the pre-parallel accumulation
  // order exactly, i.e. default options == explicit serial.
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(20, 3, 32, 31, &x, &y);
  nn::CnnConfig cfg;
  cfg.input_size = 32;
  cfg.filters = 4;
  cfg.kernel_size = 5;
  cfg.pool_size = 2;
  cfg.dense_size = 8;

  nn::Model a = nn::BuildCnn(cfg);
  nn::Model b = nn::BuildCnn(cfg);
  auto default_weights = FitAndSnapshotWeights(a, x, y, {});
  auto pinned_weights =
      FitAndSnapshotWeights(b, x, y, {.threads = 1, .shards = 1});
  ASSERT_EQ(default_weights.size(), pinned_weights.size());
  for (size_t i = 0; i < default_weights.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(default_weights[i], pinned_weights[i]));
  }
}

}  // namespace
}  // namespace newsdiff
