// Unit tests for the storage fault injector itself: each fault class does
// what its knob says, deterministically for a fixed seed.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/file_io.h"
#include "datagen/faults.h"

namespace newsdiff::datagen {
namespace {

namespace fs = std::filesystem;

class StorageFaultsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_storage_faults_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::string ReadBack(const std::string& name) const {
    std::ifstream in(dir_ / name, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  fs::path dir_;
};

TEST_F(StorageFaultsFixture, PassThroughWhenAllRatesZero) {
  FaultyFileIo io(DefaultFileIo(), StorageFaultOptions{});
  ASSERT_TRUE(io.WriteFile(path("a.txt"), "hello").ok());
  StatusOr<std::string> read = io.ReadFile(path("a.txt"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello");
  ASSERT_TRUE(io.Rename(path("a.txt"), path("b.txt")).ok());
  EXPECT_TRUE(io.Exists(path("b.txt")));
  StatusOr<std::vector<std::string>> listing = io.ListDir(dir_.string());
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(*listing, (std::vector<std::string>{"b.txt"}));
  EXPECT_EQ(io.counters().ops, 4u);
  EXPECT_FALSE(io.counters().crashed);
}

TEST_F(StorageFaultsFixture, SameSeedSameFaultSequence) {
  auto run = [&](const std::string& subdir) {
    fs::create_directories(dir_ / subdir);
    StorageFaultOptions opts;
    opts.seed = 99;
    opts.write_failure_rate = 0.3;
    opts.lost_tail_rate = 0.2;
    opts.bit_flip_rate = 0.2;
    FaultyFileIo io(DefaultFileIo(), opts);
    std::vector<bool> verdicts;
    for (int i = 0; i < 40; ++i) {
      Status s = io.WriteFile(path(subdir + "/f" + std::to_string(i)),
                              "payload-" + std::to_string(i));
      verdicts.push_back(s.ok());
    }
    return std::make_pair(verdicts, io.counters());
  };
  auto [v1, c1] = run("one");
  auto [v2, c2] = run("two");
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(c1.write_failures, c2.write_failures);
  EXPECT_EQ(c1.lost_tails, c2.lost_tails);
  EXPECT_EQ(c1.bit_flips, c2.bit_flips);
  EXPECT_EQ(c1.torn_writes, c2.torn_writes);
  EXPECT_GT(c1.write_failures + c1.lost_tails + c1.bit_flips, 0u);
  // Files damaged identically in both runs.
  for (int i = 0; i < 40; ++i) {
    std::string name = "f" + std::to_string(i);
    EXPECT_EQ(ReadBack("one/" + name), ReadBack("two/" + name)) << name;
  }
}

TEST_F(StorageFaultsFixture, CrashPointFailsEverythingUntilReboot) {
  StorageFaultOptions opts;
  opts.crash_after_ops = 2;
  FaultyFileIo io(DefaultFileIo(), opts);
  EXPECT_TRUE(io.WriteFile(path("a"), "1").ok());
  EXPECT_TRUE(io.WriteFile(path("b"), "2").ok());
  EXPECT_FALSE(io.WriteFile(path("c"), "3").ok());  // the crash
  EXPECT_FALSE(io.ReadFile(path("a")).ok());
  EXPECT_FALSE(io.Rename(path("a"), path("z")).ok());
  EXPECT_FALSE(io.ListDir(dir_.string()).ok());
  EXPECT_TRUE(io.counters().crashed);

  io.Reboot();
  EXPECT_FALSE(io.counters().crashed);
  EXPECT_TRUE(io.WriteFile(path("c"), "3").ok());
  EXPECT_EQ(ReadBack("c"), "3");
}

TEST_F(StorageFaultsFixture, CrashingWriteLeavesTornPrefix) {
  StorageFaultOptions opts;
  opts.seed = 7;
  opts.crash_after_ops = 0;  // the very first op crashes
  FaultyFileIo io(DefaultFileIo(), opts);
  const std::string payload(300, 'x');
  EXPECT_FALSE(io.WriteFile(path("torn"), payload).ok());
  EXPECT_EQ(io.counters().torn_writes, 1u);
  std::string on_disk = ReadBack("torn");
  EXPECT_LT(on_disk.size(), payload.size());
  EXPECT_EQ(on_disk, payload.substr(0, on_disk.size()));
}

TEST_F(StorageFaultsFixture, LostTailReportsSuccessButWritesPrefix) {
  StorageFaultOptions opts;
  opts.seed = 11;
  opts.lost_tail_rate = 1.0;
  FaultyFileIo io(DefaultFileIo(), opts);
  const std::string payload = "0123456789abcdef0123456789abcdef";
  ASSERT_TRUE(io.WriteFile(path("f"), payload).ok());
  EXPECT_EQ(io.counters().lost_tails, 1u);
  std::string on_disk = ReadBack("f");
  EXPECT_LT(on_disk.size(), payload.size());
  EXPECT_EQ(on_disk, payload.substr(0, on_disk.size()));
}

TEST_F(StorageFaultsFixture, BitFlipReportsSuccessButDamagesBytes) {
  StorageFaultOptions opts;
  opts.seed = 13;
  opts.bit_flip_rate = 1.0;
  FaultyFileIo io(DefaultFileIo(), opts);
  const std::string payload(64, 'A');
  ASSERT_TRUE(io.WriteFile(path("f"), payload).ok());
  EXPECT_EQ(io.counters().bit_flips, 1u);
  std::string on_disk = ReadBack("f");
  EXPECT_EQ(on_disk.size(), payload.size());  // same length, changed bytes
  EXPECT_NE(on_disk, payload);
}

TEST_F(StorageFaultsFixture, RenameFailureLeavesBothPathsAlone) {
  StorageFaultOptions opts;
  opts.rename_failure_rate = 1.0;
  FaultyFileIo io(DefaultFileIo(), opts);
  ASSERT_TRUE(DefaultFileIo().WriteFile(path("src"), "contents").ok());
  EXPECT_FALSE(io.Rename(path("src"), path("dst")).ok());
  EXPECT_EQ(io.counters().rename_failures, 1u);
  EXPECT_TRUE(fs::exists(dir_ / "src"));
  EXPECT_FALSE(fs::exists(dir_ / "dst"));
}

TEST_F(StorageFaultsFixture, WriteFailureReportsErrorAndAtWorstTears) {
  StorageFaultOptions opts;
  opts.seed = 17;
  opts.write_failure_rate = 1.0;
  FaultyFileIo io(DefaultFileIo(), opts);
  const std::string payload(128, 'q');
  for (int i = 0; i < 10; ++i) {
    std::string name = "f" + std::to_string(i);
    EXPECT_FALSE(io.WriteFile(path(name), payload).ok());
    if (fs::exists(dir_ / name)) {
      std::string on_disk = ReadBack(name);
      EXPECT_LT(on_disk.size(), payload.size());
      EXPECT_EQ(on_disk, payload.substr(0, on_disk.size()));
    }
  }
  EXPECT_EQ(io.counters().write_failures, 10u);
}

TEST_F(StorageFaultsFixture, AppendPassesThroughAndCounts) {
  FaultyFileIo io(DefaultFileIo(), StorageFaultOptions{});
  ASSERT_TRUE(io.AppendFile(path("log"), "one").ok());
  ASSERT_TRUE(io.AppendFile(path("log"), "two").ok());
  EXPECT_EQ(ReadBack("log"), "onetwo");
  EXPECT_EQ(io.counters().appends, 2u);
  EXPECT_EQ(io.counters().append_failures, 0u);
  io.Reboot();  // nothing was lied about, nothing to lose
  EXPECT_EQ(ReadBack("log"), "onetwo");
}

TEST_F(StorageFaultsFixture, AppendFailureLeavesTornTail) {
  StorageFaultOptions opts;
  opts.seed = 19;
  opts.append_failure_rate = 1.0;
  FaultyFileIo io(DefaultFileIo(), opts);
  ASSERT_TRUE(DefaultFileIo().WriteFile(path("log"), "base|").ok());
  const std::string chunk(200, 'z');
  EXPECT_FALSE(io.AppendFile(path("log"), chunk).ok());
  EXPECT_EQ(io.counters().append_failures, 1u);
  std::string on_disk = ReadBack("log");
  // The failed append tore: the pre-append prefix survives intact, a
  // strict prefix of the chunk landed after it.
  EXPECT_EQ(on_disk.substr(0, 5), "base|");
  EXPECT_LT(on_disk.size(), 5 + chunk.size());
  EXPECT_EQ(on_disk.substr(5), chunk.substr(0, on_disk.size() - 5));
  // The torn bytes were never synced: a reboot reaps them too.
  io.Reboot();
  EXPECT_EQ(ReadBack("log"), "base|");
}

TEST_F(StorageFaultsFixture, AppendLieVisibleUntilRebootDropsIt) {
  StorageFaultOptions opts;
  opts.seed = 23;
  opts.append_lie_rate = 1.0;
  FaultyFileIo io(DefaultFileIo(), opts);
  ASSERT_TRUE(io.WriteFile(path("log"), "durable|").ok());
  ASSERT_TRUE(io.AppendFile(path("log"), "lied").ok());  // acked, not synced
  EXPECT_EQ(io.counters().append_lies, 1u);
  // Visible to reads (page cache)…
  StatusOr<std::string> read = io.ReadFile(path("log"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "durable|lied");
  // …until power loss, when the unsynced tail vanishes.
  io.Reboot();
  EXPECT_EQ(ReadBack("log"), "durable|");
}

TEST_F(StorageFaultsFixture, RewriteReplacesAnUnsyncedLiedTail) {
  StorageFaultOptions opts;
  opts.seed = 29;
  opts.append_lie_rate = 1.0;
  FaultyFileIo io(DefaultFileIo(), opts);
  ASSERT_TRUE(io.WriteFile(path("log"), "base|").ok());
  ASSERT_TRUE(io.AppendFile(path("log"), "lied").ok());  // unsynced tail
  // A full rewrite of the path (how WriteFileAtomic commits) is a genuine
  // sync: it replaces the lied-about bytes wholesale, so the path has no
  // volatile tail left for the reboot to reap.
  ASSERT_TRUE(io.WriteFile(path("log"), "rewritten").ok());
  io.Reboot();
  EXPECT_EQ(ReadBack("log"), "rewritten");
}

TEST_F(StorageFaultsFixture, PartialAppendKeepsDurablePrefixThroughReboot) {
  StorageFaultOptions opts;
  opts.seed = 31;
  opts.partial_append_rate = 1.0;
  FaultyFileIo io(DefaultFileIo(), opts);
  ASSERT_TRUE(io.WriteFile(path("log"), "base|").ok());
  const std::string chunk(200, 'p');
  ASSERT_TRUE(io.AppendFile(path("log"), chunk).ok());  // acked!
  EXPECT_EQ(io.counters().partial_appends, 1u);
  std::string on_disk = ReadBack("log");
  EXPECT_LT(on_disk.size(), 5 + chunk.size());
  EXPECT_EQ(on_disk.substr(5), chunk.substr(0, on_disk.size() - 5));
  // What did land was genuinely synced: the hole is silent, not volatile.
  io.Reboot();
  EXPECT_EQ(ReadBack("log"), on_disk);
}

TEST_F(StorageFaultsFixture, AppendFaultSequenceIsDeterministic) {
  auto run = [&](const std::string& subdir) {
    fs::create_directories(dir_ / subdir);
    StorageFaultOptions opts;
    opts.seed = 37;
    opts.append_failure_rate = 0.3;
    opts.append_lie_rate = 0.2;
    opts.partial_append_rate = 0.2;
    FaultyFileIo io(DefaultFileIo(), opts);
    std::vector<bool> verdicts;
    for (int i = 0; i < 40; ++i) {
      verdicts.push_back(
          io.AppendFile(path(subdir + "/log"), "chunk-" + std::to_string(i))
              .ok());
    }
    io.Reboot();
    return std::make_pair(verdicts, io.counters());
  };
  auto [v1, c1] = run("one");
  auto [v2, c2] = run("two");
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(c1.append_failures, c2.append_failures);
  EXPECT_EQ(c1.append_lies, c2.append_lies);
  EXPECT_EQ(c1.partial_appends, c2.partial_appends);
  EXPECT_GT(c1.append_failures + c1.append_lies + c1.partial_appends, 0u);
  EXPECT_EQ(ReadBack("one/log"), ReadBack("two/log"));
}

TEST_F(StorageFaultsFixture, ReadAndListFailuresInjected) {
  StorageFaultOptions opts;
  opts.read_failure_rate = 1.0;
  FaultyFileIo io(DefaultFileIo(), opts);
  ASSERT_TRUE(DefaultFileIo().WriteFile(path("f"), "x").ok());
  EXPECT_FALSE(io.ReadFile(path("f")).ok());
  EXPECT_FALSE(io.ListDir(dir_.string()).ok());
  EXPECT_EQ(io.counters().read_failures, 2u);
}

}  // namespace
}  // namespace newsdiff::datagen
