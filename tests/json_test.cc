#include "store/json.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace newsdiff::store {
namespace {

Value ParseOrDie(const std::string& text) {
  StatusOr<Value> v = ParseJson(text);
  EXPECT_TRUE(v.ok()) << v.status().ToString() << " for: " << text;
  return std::move(v).value();
}

TEST(JsonSerializeTest, Scalars) {
  EXPECT_EQ(ToJson(Value()), "null");
  EXPECT_EQ(ToJson(Value(true)), "true");
  EXPECT_EQ(ToJson(Value(false)), "false");
  EXPECT_EQ(ToJson(Value(42)), "42");
  EXPECT_EQ(ToJson(Value(-7)), "-7");
  EXPECT_EQ(ToJson(Value("hi")), "\"hi\"");
}

TEST(JsonSerializeTest, NonFiniteBecomesNull) {
  EXPECT_EQ(ToJson(Value(std::nan(""))), "null");
  EXPECT_EQ(ToJson(Value(INFINITY)), "null");
}

TEST(JsonSerializeTest, Escapes) {
  EXPECT_EQ(ToJson(Value("a\"b\\c\n\t")), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(ToJson(Value(std::string("\x01"))), "\"\\u0001\"");
}

TEST(JsonSerializeTest, Containers) {
  Value v = MakeObject({{"a", Value(Array{1, 2})}, {"b", "x"}});
  EXPECT_EQ(ToJson(v), "{\"a\":[1,2],\"b\":\"x\"}");
  EXPECT_EQ(ToJson(Value(Array{})), "[]");
  EXPECT_EQ(ToJson(Value(Object{})), "{}");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseOrDie("null").is_null());
  EXPECT_EQ(ParseOrDie("true").bool_value(), true);
  EXPECT_EQ(ParseOrDie("-17").int_value(), -17);
  EXPECT_DOUBLE_EQ(ParseOrDie("2.5").double_value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseOrDie("1e3").double_value(), 1000.0);
  EXPECT_EQ(ParseOrDie("\"abc\"").string_value(), "abc");
}

TEST(JsonParseTest, IntVsDoubleSelection) {
  EXPECT_TRUE(ParseOrDie("7").is_int());
  EXPECT_TRUE(ParseOrDie("7.0").is_double());
  EXPECT_TRUE(ParseOrDie("7e2").is_double());
  // Larger than int64 falls back to double.
  EXPECT_TRUE(ParseOrDie("99999999999999999999999").is_double());
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(ParseOrDie("\"a\\nb\"").string_value(), "a\nb");
  EXPECT_EQ(ParseOrDie("\"q\\\"q\"").string_value(), "q\"q");
  EXPECT_EQ(ParseOrDie("\"\\u0041\"").string_value(), "A");
  EXPECT_EQ(ParseOrDie("\"\\u00e9\"").string_value(), "\xC3\xA9");  // é
}

TEST(JsonParseTest, Whitespace) {
  Value v = ParseOrDie("  { \"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(v.Find("a")->array().size(), 2u);
}

TEST(JsonParseTest, Nested) {
  Value v = ParseOrDie(R"({"a":{"b":[{"c":1}]}})");
  const Value* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  const Value* b = a->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->array()[0].Find("c")->AsInt(), 1);
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"\\x\"").ok());
  EXPECT_FALSE(ParseJson("\"\\u00g1\"").ok());
}

TEST(JsonParseTest, OverflowingNumbersRejected) {
  EXPECT_FALSE(ParseJson("1e999").ok());
  EXPECT_FALSE(ParseJson("-1e999").ok());
  // Underflow to zero is fine.
  EXPECT_TRUE(ParseJson("1e-999").ok());
}

TEST(JsonParseTest, DeepNestingRejected) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonPrettyTest, ContainsNewlinesAndRoundTrips) {
  Value v = MakeObject({{"a", 1}, {"b", Value(Array{1, 2})}});
  std::string pretty = ToPrettyJson(v);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  Value back = ParseOrDie(pretty);
  EXPECT_TRUE(back.Equals(v));
}

// Random-value generator for the round-trip property test.
Value RandomValue(Rng& rng, int depth) {
  int pick = depth > 3 ? static_cast<int>(rng.NextBelow(5))
                       : static_cast<int>(rng.NextBelow(7));
  switch (pick) {
    case 0:
      return Value();
    case 1:
      return Value(rng.Bernoulli(0.5));
    case 2:
      return Value(rng.UniformInt(-1000000, 1000000));
    case 3:
      return Value(rng.Uniform(-1e6, 1e6));
    case 4: {
      std::string s;
      size_t len = rng.NextBelow(12);
      for (size_t i = 0; i < len; ++i) {
        s += static_cast<char>('a' + rng.NextBelow(26));
      }
      if (rng.Bernoulli(0.2)) s += "\"\\\n";
      return Value(std::move(s));
    }
    case 5: {
      Array arr;
      size_t len = rng.NextBelow(4);
      for (size_t i = 0; i < len; ++i) {
        arr.push_back(RandomValue(rng, depth + 1));
      }
      return Value(std::move(arr));
    }
    default: {
      Object obj;
      size_t len = rng.NextBelow(4);
      for (size_t i = 0; i < len; ++i) {
        obj.emplace_back("k" + std::to_string(i), RandomValue(rng, depth + 1));
      }
      return Value(std::move(obj));
    }
  }
}

class JsonRoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripSweep, SerializeParseIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Value v = RandomValue(rng, 0);
    StatusOr<Value> back = ParseJson(ToJson(v));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(back->Equals(v)) << ToJson(v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 99ull));

}  // namespace
}  // namespace newsdiff::store
