#include "nn/serialize.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "nn/architectures.h"

namespace newsdiff::nn {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(SerializeTest, SaveLoadRoundTripPreservesOutputs) {
  MlpConfig cfg;
  cfg.input_size = 6;
  cfg.hidden_sizes = {8};
  cfg.seed = 3;
  Model model = BuildMlp(cfg);
  Rng rng(4);
  la::Matrix x = la::Matrix::Random(4, 6, -1.0, 1.0, rng);
  la::Matrix before = model.Forward(x);

  std::string path = TempPath("newsdiff_model_test.txt");
  ASSERT_TRUE(SaveWeights(model, path).ok());

  MlpConfig other = cfg;
  other.seed = 999;  // different init
  Model restored = BuildMlp(other);
  ASSERT_TRUE(LoadWeights(restored, path).ok());
  la::Matrix after = restored.Forward(x);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before.data()[i], after.data()[i], 1e-12);
  }
  fs::remove(path);
}

TEST(SerializeTest, CnnRoundTrip) {
  CnnConfig cfg;
  cfg.input_size = 20;
  cfg.filters = 3;
  cfg.kernel_size = 4;
  cfg.pool_size = 2;
  cfg.dense_size = 6;
  Model model = BuildCnn(cfg);
  std::string path = TempPath("newsdiff_cnn_test.txt");
  ASSERT_TRUE(SaveWeights(model, path).ok());
  Model restored = BuildCnn(cfg);
  ASSERT_TRUE(LoadWeights(restored, path).ok());
  Rng rng(5);
  la::Matrix x = la::Matrix::Random(2, 20, -1.0, 1.0, rng);
  la::Matrix a = model.Forward(x);
  la::Matrix b = restored.Forward(x);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-12);
  }
  fs::remove(path);
}

TEST(SerializeTest, ArchitectureMismatchRejected) {
  MlpConfig small;
  small.input_size = 6;
  small.hidden_sizes = {8};
  Model model = BuildMlp(small);
  std::string path = TempPath("newsdiff_mismatch_test.txt");
  ASSERT_TRUE(SaveWeights(model, path).ok());

  MlpConfig bigger = small;
  bigger.hidden_sizes = {16};
  Model other = BuildMlp(bigger);
  Status s = LoadWeights(other, path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);

  MlpConfig deeper = small;
  deeper.hidden_sizes = {8, 8};
  Model third = BuildMlp(deeper);
  EXPECT_FALSE(LoadWeights(third, path).ok());
  fs::remove(path);
}

TEST(SerializeTest, MalformedFilesRejected) {
  MlpConfig cfg;
  cfg.input_size = 4;
  cfg.hidden_sizes = {4};
  Model model = BuildMlp(cfg);
  std::string path = TempPath("newsdiff_bad_model.txt");
  {
    std::ofstream out(path);
    out << "not-a-model 1\n";
  }
  EXPECT_FALSE(LoadWeights(model, path).ok());
  {
    std::ofstream out(path);
    out << "newsdiff-model 99\n4\n";
  }
  EXPECT_FALSE(LoadWeights(model, path).ok());
  {
    std::ofstream out(path);
    out << "newsdiff-model 1\n4\ndense.w 4 4\n1 2 3\n";  // truncated
  }
  EXPECT_FALSE(LoadWeights(model, path).ok());
  EXPECT_FALSE(LoadWeights(model, "/no/such/dir/model.txt").ok());
  EXPECT_FALSE(SaveWeights(model, "/no/such/dir/model.txt").ok());
  fs::remove(path);
}

TEST(SerializeTest, CheckpointResumeContinuesTraining) {
  // Train a bit, checkpoint, reload, continue: loss keeps going down from
  // where it stopped (the paper's §4.9 incremental-training pattern).
  Rng rng(6);
  la::Matrix x = la::Matrix::Random(60, 6, -1.0, 1.0, rng);
  std::vector<int> y(60);
  for (size_t i = 0; i < 60; ++i) {
    y[i] = x(i, 0) + x(i, 1) > 0.0 ? 1 : 0;
  }
  MlpConfig cfg;
  cfg.input_size = 6;
  cfg.hidden_sizes = {8};
  cfg.num_classes = 2;
  Model model = BuildMlp(cfg);
  Sgd sgd({0.2, 0.0});
  FitOptions fit;
  fit.epochs = 10;
  fit.batch_size = 20;
  fit.early_stopping.enabled = false;
  auto first = model.Fit(x, y, sgd, fit);
  ASSERT_TRUE(first.ok());
  double loss_after_first = first->train_loss.back();

  std::string path = TempPath("newsdiff_resume_test.txt");
  ASSERT_TRUE(SaveWeights(model, path).ok());
  Model resumed = BuildMlp(cfg);
  ASSERT_TRUE(LoadWeights(resumed, path).ok());
  Sgd sgd2({0.2, 0.0});
  auto second = resumed.Fit(x, y, sgd2, fit);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->train_loss.back(), loss_after_first + 0.05);
  fs::remove(path);
}

}  // namespace
}  // namespace newsdiff::nn
