#include "store/value.h"

#include <gtest/gtest.h>

namespace newsdiff::store {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(5).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value(2.5).is_number());
  EXPECT_TRUE(Value(5).is_number());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(true).bool_value(), true);
  EXPECT_EQ(Value(7).int_value(), 7);
  EXPECT_EQ(Value(1.5).double_value(), 1.5);
  EXPECT_EQ(Value("abc").string_value(), "abc");
}

TEST(ValueTest, TolerantAccessors) {
  EXPECT_EQ(Value(7).AsDouble(), 7.0);
  EXPECT_EQ(Value(7.9).AsInt(), 7);
  EXPECT_EQ(Value("x").AsDouble(-1.0), -1.0);
  EXPECT_EQ(Value().AsInt(42), 42);
  EXPECT_EQ(Value("s").AsString(), "s");
  EXPECT_EQ(Value(3).AsString("fb"), "fb");
}

TEST(ValueTest, ObjectFindAndSet) {
  Value v = MakeObject({{"a", 1}, {"b", "two"}});
  ASSERT_NE(v.Find("a"), nullptr);
  EXPECT_EQ(v.Find("a")->AsInt(), 1);
  EXPECT_EQ(v.Find("missing"), nullptr);
  v.Set("a", 10);
  EXPECT_EQ(v.Find("a")->AsInt(), 10);
  v.Set("c", 3.5);
  EXPECT_EQ(v.Find("c")->AsDouble(), 3.5);
  EXPECT_EQ(v.object().size(), 3u);
}

TEST(ValueTest, SetPromotesNullToObject) {
  Value v;
  v.Set("k", "v");
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("k")->AsString(), "v");
}

TEST(ValueTest, FindOnNonObjectIsNull) {
  EXPECT_EQ(Value(5).Find("a"), nullptr);
  EXPECT_EQ(Value("s").Find("a"), nullptr);
}

TEST(ValueTest, EqualsDeep) {
  Value a = MakeObject({{"x", Value(Array{1, 2, 3})}});
  Value b = MakeObject({{"x", Value(Array{1, 2, 3})}});
  Value c = MakeObject({{"x", Value(Array{1, 2, 4})}});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(ValueTest, NumbersCompareAcrossIntAndDouble) {
  EXPECT_EQ(Value(3).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(2).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(3)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
}

TEST(ValueTest, CompareArraysLexicographic) {
  EXPECT_LT(Value(Array{1, 2}).Compare(Value(Array{1, 3})), 0);
  EXPECT_LT(Value(Array{1}).Compare(Value(Array{1, 0})), 0);
  EXPECT_EQ(Value(Array{}).Compare(Value(Array{})), 0);
}

TEST(ValueTest, CompareAcrossTypesIsTotalOrder) {
  // null < bool < numbers < string < array < object (by variant index).
  Value null_v;
  Value bool_v(true);
  Value str_v("x");
  EXPECT_LT(null_v.Compare(bool_v), 0);
  EXPECT_GT(str_v.Compare(bool_v), 0);
  EXPECT_EQ(null_v.Compare(Value()), 0);
}

}  // namespace
}  // namespace newsdiff::store
