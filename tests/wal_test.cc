// Write-ahead log tests: record framing, crash-at-every-boundary recovery
// (byte-identical to the uninterrupted run up to the group-commit window),
// an exhaustive byte-flip fuzz sweep (damage is detected, never applied),
// checkpoint rotation/pruning, and the snapshot-GC pinning rule.
#include "store/wal.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/retry.h"
#include "datagen/faults.h"
#include "store/database.h"
#include "store/json.h"

namespace newsdiff::store {
namespace {

namespace fs = std::filesystem;

class WalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_wal_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  std::string ReadRaw(const std::string& name) const {
    std::ifstream in(dir_ / name, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void WriteRaw(const std::string& name, const std::string& bytes) const {
    std::ofstream out(dir_ / name, std::ios::trunc | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::vector<std::string> Listing() const {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.is_regular_file()) {
        names.push_back(entry.path().filename().string());
      }
    }
    return names;
  }

  fs::path dir_;
};

/// Canonical byte dump of the whole store, slot layout included: equality
/// means recovery reproduced the original run bit for bit (ids, gaps from
/// removals, trailing dead slots, document bytes).
std::string Fingerprint(const Database& db) {
  std::string out;
  for (const std::string& name : db.CollectionNames()) {
    const Collection* coll = db.Get(name);
    out += "== " + name + " slots=" + std::to_string(coll->slot_count()) + "\n";
    for (const Value& doc : coll->All()) {
      out += ToJson(doc) + "\n";
    }
  }
  return out;
}

/// Scripted mutation `j` against `db`: a deterministic mix of inserts,
/// upserts, and removals, each producing exactly one WAL record (the crash
/// sweep indexes reference states by synced-record count, so no step may
/// match zero documents — removes skip steps whose target was never an
/// insert).
void ApplyOp(Database& db, int j) {
  Collection& articles = db.GetOrCreate("articles");
  if (j % 7 == 3 && j >= 3) {
    // Replace an earlier document in place (its id survives) — or insert
    // fresh when that key never existed; one put record either way.
    StatusOr<DocId> id = articles.Upsert(
        Filter().Eq("k", Value(static_cast<int64_t>(j - 3))),
        MakeObject({{"k", static_cast<int64_t>(j - 3)},
                    {"v", static_cast<int64_t>(j * 100)}}));
    ASSERT_TRUE(id.ok());
  } else if (j % 5 == 4 && (j - 1) % 7 != 3) {
    // Remove the previous step's insert, leaving a dead slot. (Guard:
    // when step j-1 was an upsert, no document with k == j-1 exists.)
    size_t removed =
        articles.Remove(Filter().Eq("k", Value(static_cast<int64_t>(j - 1))));
    ASSERT_EQ(removed, 1u);
  } else {
    StatusOr<DocId> id = articles.Insert(MakeObject(
        {{"k", static_cast<int64_t>(j)}, {"v", static_cast<int64_t>(j)}}));
    ASSERT_TRUE(id.ok());
  }
}

constexpr int kScriptOps = 40;

/// Reference states: states[m] is the fingerprint after m scripted ops.
std::vector<std::string> ReferenceStates() {
  std::vector<std::string> states;
  Database db;
  states.push_back(Fingerprint(db));
  for (int j = 0; j < kScriptOps; ++j) {
    ApplyOp(db, j);
    states.push_back(Fingerprint(db));
  }
  return states;
}

TEST(WalRecord, FramingRoundTrip) {
  WalRecord header;
  header.type = WalRecord::Type::kSegmentHeader;
  header.collection = "news-articles";
  header.base_generation = 42;
  header.part = 3;
  header.slot_count = 17;
  WalRecord put;
  put.type = WalRecord::Type::kPut;
  put.id = 9;
  put.doc_json = "{\"_id\":9,\"title\":\"breaking news\"}";
  WalRecord del;
  del.type = WalRecord::Type::kDelete;
  del.id = 4;
  WalRecord drop;
  drop.type = WalRecord::Type::kDrop;
  WalRecord ckpt;
  ckpt.type = WalRecord::Type::kCheckpoint;
  ckpt.generation = 43;

  std::string bytes = EncodeWalRecord(header) + EncodeWalRecord(put) +
                      EncodeWalRecord(del) + EncodeWalRecord(drop) +
                      EncodeWalRecord(ckpt);
  WalSegmentContents decoded = DecodeWalSegment(bytes);
  EXPECT_EQ(decoded.truncated, 0u);
  EXPECT_EQ(decoded.rejected, 0u);
  ASSERT_EQ(decoded.records.size(), 5u);
  EXPECT_EQ(decoded.records[0].type, WalRecord::Type::kSegmentHeader);
  EXPECT_EQ(decoded.records[0].collection, "news-articles");
  EXPECT_EQ(decoded.records[0].base_generation, 42u);
  EXPECT_EQ(decoded.records[0].part, 3u);
  EXPECT_EQ(decoded.records[0].slot_count, 17u);
  EXPECT_EQ(decoded.records[1].type, WalRecord::Type::kPut);
  EXPECT_EQ(decoded.records[1].id, 9);
  EXPECT_EQ(decoded.records[1].doc_json, put.doc_json);
  EXPECT_EQ(decoded.records[2].type, WalRecord::Type::kDelete);
  EXPECT_EQ(decoded.records[2].id, 4);
  EXPECT_EQ(decoded.records[3].type, WalRecord::Type::kDrop);
  EXPECT_EQ(decoded.records[4].type, WalRecord::Type::kCheckpoint);
  EXPECT_EQ(decoded.records[4].generation, 43u);
}

TEST(WalRecord, TruncatedTailStopsScan) {
  WalRecord del;
  del.type = WalRecord::Type::kDelete;
  del.id = 1;
  std::string bytes = EncodeWalRecord(del) + EncodeWalRecord(del);
  for (size_t cut = 1; cut < EncodeWalRecord(del).size(); ++cut) {
    WalSegmentContents decoded =
        DecodeWalSegment(bytes.substr(0, bytes.size() - cut));
    EXPECT_EQ(decoded.records.size(), 1u);
    EXPECT_EQ(decoded.truncated, 1u);
    EXPECT_EQ(decoded.rejected, 0u);
  }
}

TEST(WalSegmentName, RoundTripIncludingDashedCollections) {
  for (const std::string& collection :
       {std::string("news"), std::string("dead-letter"),
        std::string("a-b-c")}) {
    const std::string name = WalSegmentFileName(collection, 42, 3);
    StatusOr<WalSegmentName> parsed = ParseWalSegmentFileName(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(parsed->collection, collection);
    EXPECT_EQ(parsed->base_generation, 42u);
    EXPECT_EQ(parsed->part, 3u);
  }
  EXPECT_FALSE(ParseWalSegmentFileName("news-0000000042.jsonl").ok());
  EXPECT_FALSE(ParseWalSegmentFileName("MANIFEST-0000000042").ok());
  EXPECT_FALSE(ParseWalSegmentFileName("-0000000001-000001.wal").ok());
  EXPECT_FALSE(ParseWalSegmentFileName("news-42-000001.wal").ok());
}

TEST_F(WalFixture, WalCrashAtEveryOpRecoversToSyncedPrefix) {
  const std::vector<std::string> states = ReferenceStates();

  // First pass without a crash point to learn how many injector ops the
  // script costs end to end; then sweep the crash through every one.
  size_t total_ops = 0;
  {
    datagen::FaultyFileIo io(DefaultFileIo(), datagen::StorageFaultOptions{});
    WalOptions wal;
    wal.io = &io;
    wal.sync_every_records = 1;
    Database db;
    ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
    for (int j = 0; j < kScriptOps; ++j) ApplyOp(db, j);
    total_ops = io.counters().ops;
    ASSERT_EQ(db.wal()->stats().records_synced,
              static_cast<size_t>(kScriptOps));
  }

  for (size_t crash_at = 0; crash_at <= total_ops; ++crash_at) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    datagen::StorageFaultOptions faults;
    faults.crash_after_ops = crash_at;
    datagen::FaultyFileIo io(DefaultFileIo(), faults);
    WalOptions wal;
    wal.io = &io;
    wal.sync_every_records = 1;

    size_t synced = 0;
    {
      Database db;
      Status attached = db.AttachWal(dir(), wal);
      if (!attached.ok()) {
        // Crashed before the log could even open; nothing durable.
        synced = 0;
      } else {
        for (int j = 0; j < kScriptOps; ++j) ApplyOp(db, j);
        synced = db.wal()->stats().records_synced;
      }
    }

    io.Reboot();
    SnapshotOptions snapshot;
    snapshot.io = &io;
    Database recovered;
    SnapshotLoadReport report;
    Status status = recovered.RecoverWal(dir(), snapshot, wal, &report);
    ASSERT_TRUE(status.ok()) << "crash_at=" << crash_at << ": "
                             << status.ToString();
    // Byte-identical recovery of exactly the synced prefix: every record
    // the group commit acknowledged survives, the torn tail does not.
    EXPECT_EQ(Fingerprint(recovered), states[synced])
        << "crash_at=" << crash_at << " synced=" << synced;
    EXPECT_EQ(report.wal_records_replayed, synced) << "crash_at=" << crash_at;
  }
}

TEST_F(WalFixture, WalEveryByteFlipRecoversToAPrefixOrFlagsDamage) {
  const std::vector<std::string> states = ReferenceStates();
  {
    WalOptions wal;
    wal.sync_every_records = 1;
    Database db;
    ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
    for (int j = 0; j < kScriptOps; ++j) ApplyOp(db, j);
  }
  const std::string segment = WalSegmentFileName("articles", 0, 1);
  const std::string pristine = ReadRaw(segment);
  ASSERT_FALSE(pristine.empty());

  // Legal recovery outcomes: any op-boundary state, plus the one
  // intermediate state a damaged first record leaves behind — the segment
  // header was applied (collection created, empty) before the scan stopped.
  std::vector<std::string> allowed = states;
  allowed.push_back("== articles slots=0\n");

  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string damaged = pristine;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x5a);
    WriteRaw(segment, damaged);

    Database recovered;
    SnapshotLoadReport report;
    Status status =
        recovered.RecoverWal(dir(), SnapshotOptions{}, WalOptions{}, &report);
    ASSERT_TRUE(status.ok()) << "flip at byte " << i << ": "
                             << status.ToString();
    const std::string got = Fingerprint(recovered);
    bool is_prefix_state = false;
    for (const std::string& state : allowed) {
      if (got == state) {
        is_prefix_state = true;
        break;
      }
    }
    EXPECT_TRUE(is_prefix_state)
        << "flip at byte " << i << " produced a state outside the run";
    if (got != states.back()) {
      // The flip cost us records; recovery must say so, not stay silent.
      EXPECT_GE(report.wal_records_truncated + report.wal_records_rejected, 1u)
          << "flip at byte " << i;
    }
  }
  WriteRaw(segment, pristine);
}

TEST_F(WalFixture, WalGroupCommitLossIsBoundedBySyncInterval) {
  const std::vector<std::string> states = ReferenceStates();
  {
    WalOptions wal;
    wal.sync_every_records = 8;
    wal.sync_every_ms = 1'000'000;  // count-triggered only
    Database db;
    ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
    for (int j = 0; j < kScriptOps; ++j) ApplyOp(db, j);
    // 40 records at a sync-every-8 policy: exactly 40 - 40 % 8 = 40 synced…
    // which is a multiple, so drive 3 more unsynced records.
    ApplyOp(db, 0);
    ApplyOp(db, 1);
    ApplyOp(db, 2);
    EXPECT_EQ(db.wal()->stats().records_synced, 40u);
    EXPECT_EQ(db.wal()->stats().records_logged, 43u);
    // Process dies here: the 3 pending records are the bounded loss.
  }
  Database recovered;
  SnapshotLoadReport report;
  ASSERT_TRUE(
      recovered.RecoverWal(dir(), SnapshotOptions{}, WalOptions{}, &report)
          .ok());
  EXPECT_EQ(report.wal_records_replayed, 40u);
  EXPECT_EQ(Fingerprint(recovered), states[40]);
}

TEST_F(WalFixture, WalTimeTriggeredSyncUsesInjectedClock) {
  ManualClock clock;
  WalOptions wal;
  wal.sync_every_records = 100;
  wal.sync_every_ms = 50;
  wal.clock = &clock;
  Database db;
  ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
  Collection& c = db.GetOrCreate("articles");
  ASSERT_TRUE(c.Insert(MakeObject({{"k", static_cast<int64_t>(0)}})).ok());
  EXPECT_EQ(db.wal()->stats().records_synced, 0u);  // buffered
  clock.Advance(60);
  ASSERT_TRUE(c.Insert(MakeObject({{"k", static_cast<int64_t>(1)}})).ok());
  // The second append sees the first record 60 ms old and flushes both.
  EXPECT_EQ(db.wal()->stats().records_synced, 2u);
}

TEST_F(WalFixture, WalSurvivesTornAppendRetries) {
  const std::vector<std::string> states = ReferenceStates();
  datagen::StorageFaultOptions faults;
  faults.seed = 7;
  faults.append_failure_rate = 0.3;
  datagen::FaultyFileIo io(DefaultFileIo(), faults);
  WalOptions wal;
  wal.io = &io;
  wal.sync_every_records = 1;
  {
    Database db;
    ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
    for (int j = 0; j < kScriptOps; ++j) ApplyOp(db, j);
    // Failed appends poisoned their parts and kept the records pending;
    // retry the final flush until it lands.
    Status synced = Status::OK();
    for (int attempt = 0; attempt < 64; ++attempt) {
      synced = db.WalSync();
      if (synced.ok()) break;
    }
    ASSERT_TRUE(synced.ok()) << synced.ToString();
    EXPECT_GT(db.wal()->stats().sync_failures, 0u);
  }
  io.Reboot();
  SnapshotOptions snapshot;
  snapshot.io = &io;
  Database recovered;
  SnapshotLoadReport report;
  ASSERT_TRUE(recovered.RecoverWal(dir(), snapshot, wal, &report).ok());
  // Torn tails landed in poisoned parts; their retried records replay from
  // the later parts, idempotently, to the exact final state.
  EXPECT_EQ(Fingerprint(recovered), states.back());
}

TEST_F(WalFixture, WalFsyncLiesLoseOnlyTheLiedTail) {
  const std::vector<std::string> states = ReferenceStates();
  datagen::StorageFaultOptions faults;
  faults.seed = 11;
  faults.append_lie_rate = 0.4;
  datagen::FaultyFileIo io(DefaultFileIo(), faults);
  WalOptions wal;
  wal.io = &io;
  wal.sync_every_records = 1;
  {
    Database db;
    ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
    for (int j = 0; j < kScriptOps; ++j) ApplyOp(db, j);
    ASSERT_TRUE(db.WalSync().ok());
  }
  ASSERT_GT(io.counters().append_lies, 0u);
  io.Reboot();  // the lied bytes vanish here
  SnapshotOptions snapshot;
  snapshot.io = &io;
  Database recovered;
  SnapshotLoadReport report;
  ASSERT_TRUE(recovered.RecoverWal(dir(), snapshot, wal, &report).ok());
  // A lying fsync genuinely loses acknowledged records — that is the fault,
  // not the recovery. The guarantee that must hold: what comes back is a
  // clean prefix of the acknowledged history, never garbage.
  const std::string got = Fingerprint(recovered);
  bool is_prefix_state = false;
  for (const std::string& state : states) {
    if (got == state) {
      is_prefix_state = true;
      break;
    }
  }
  EXPECT_TRUE(is_prefix_state);
}

TEST_F(WalFixture, WalDropAndRecreateReplaysFaithfully) {
  WalOptions wal;
  wal.sync_every_records = 1;
  std::string expected;
  {
    Database db;
    ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
    Collection& keep = db.GetOrCreate("keep");
    ASSERT_TRUE(keep.Insert(MakeObject({{"k", static_cast<int64_t>(1)}})).ok());
    Collection& scratch = db.GetOrCreate("scratch");
    ASSERT_TRUE(
        scratch.Insert(MakeObject({{"k", static_cast<int64_t>(2)}})).ok());
    ASSERT_TRUE(
        scratch.Insert(MakeObject({{"k", static_cast<int64_t>(3)}})).ok());
    ASSERT_TRUE(db.Drop("scratch").ok());
    // Recreated after the drop: ids restart from 0.
    Collection& again = db.GetOrCreate("scratch");
    StatusOr<DocId> id =
        again.Insert(MakeObject({{"k", static_cast<int64_t>(4)}}));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 0);
    ASSERT_TRUE(db.WalSync().ok());
    expected = Fingerprint(db);
  }
  Database recovered;
  ASSERT_TRUE(
      recovered.RecoverWal(dir(), SnapshotOptions{}, WalOptions{}, nullptr)
          .ok());
  EXPECT_EQ(Fingerprint(recovered), expected);
}

TEST_F(WalFixture, WalResumeNeverAppendsAfterATornTail) {
  WalOptions wal;
  wal.sync_every_records = 1;
  {
    Database db;
    ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
    for (int j = 0; j < 10; ++j) ApplyOp(db, j);
  }
  // Tear the tail by hand: recovery must park the damage and continue in a
  // fresh part, leaving the torn file byte-for-byte untouched.
  const std::string segment = WalSegmentFileName("articles", 0, 1);
  const std::string pristine = ReadRaw(segment);
  const std::string torn = pristine.substr(0, pristine.size() - 5);
  WriteRaw(segment, torn);

  std::string expected;
  {
    Database db;
    SnapshotLoadReport report;
    ASSERT_TRUE(db.RecoverWal(dir(), SnapshotOptions{}, wal, &report).ok());
    EXPECT_EQ(report.wal_records_truncated, 1u);
    for (int j = 10; j < 20; ++j) ApplyOp(db, j);
    ASSERT_TRUE(db.WalSync().ok());
    expected = Fingerprint(db);
  }
  EXPECT_EQ(ReadRaw(segment), torn);  // old part untouched
  Database recovered;
  ASSERT_TRUE(
      recovered.RecoverWal(dir(), SnapshotOptions{}, wal, nullptr).ok());
  EXPECT_EQ(Fingerprint(recovered), expected);
}

TEST_F(WalFixture, WalCheckpointRotatesPrunesAndRecovers) {
  SnapshotOptions snapshot;
  snapshot.retain_generations = 1;
  WalOptions wal;
  wal.sync_every_records = 1;
  std::string expected;
  {
    Database db;
    ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
    for (int j = 0; j < 10; ++j) ApplyOp(db, j);
    ASSERT_TRUE(db.Checkpoint(snapshot).ok());  // generation 1
    for (int j = 10; j < 20; ++j) ApplyOp(db, j);
    ASSERT_TRUE(db.Checkpoint(snapshot).ok());  // generation 2
    for (int j = 20; j < 30; ++j) ApplyOp(db, j);
    ASSERT_TRUE(db.WalSync().ok());
    expected = Fingerprint(db);
  }
  // Retention 1 at generation 2: every pre-2 segment is pruned; the live
  // tail is based on generation 2. (The generation-1 manifest may linger —
  // it was pinned by a live segment during the save and only a later GC
  // pass reaps it — but generation 2 must exist.)
  bool saw_old = false;
  uint64_t newest_manifest = 0;
  for (const std::string& name : Listing()) {
    StatusOr<WalSegmentName> segment = ParseWalSegmentFileName(name);
    if (segment.ok() && segment->base_generation < 2) saw_old = true;
    StatusOr<uint64_t> gen = ParseManifestFileName(name);
    if (gen.ok()) newest_manifest = std::max(newest_manifest, *gen);
  }
  EXPECT_FALSE(saw_old);
  EXPECT_EQ(newest_manifest, 2u);

  Database recovered;
  SnapshotLoadReport report;
  ASSERT_TRUE(recovered.RecoverWal(dir(), snapshot, wal, &report).ok());
  EXPECT_EQ(report.generation, 2u);
  EXPECT_EQ(report.wal_records_replayed, 10u);  // only the post-2 tail
  EXPECT_EQ(Fingerprint(recovered), expected);
}

TEST_F(WalFixture, WalSegmentPinsItsBaseGenerationAgainstGc) {
  SnapshotOptions snapshot;
  snapshot.retain_generations = 1;
  WalOptions wal;
  wal.sync_every_records = 1;
  std::string expected;
  {
    Database db;
    ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
    for (int j = 0; j < 10; ++j) ApplyOp(db, j);
    ASSERT_TRUE(db.Checkpoint(snapshot).ok());  // generation 1, log base 1
    for (int j = 10; j < 20; ++j) ApplyOp(db, j);
    ASSERT_TRUE(db.WalSync().ok());
    // A plain snapshot save (no rotation): generation 2 commits while the
    // live log is still based on generation 1. With retain_generations=1
    // the GC would reap generation 1 — the pin must stop it, or the
    // segment's records lose their base.
    ASSERT_TRUE(db.SaveToDir(dir(), snapshot).ok());
    expected = Fingerprint(db);
  }
  bool gen1_manifest = false;
  for (const std::string& name : Listing()) {
    StatusOr<uint64_t> gen = ParseManifestFileName(name);
    if (gen.ok() && *gen == 1) gen1_manifest = true;
  }
  EXPECT_TRUE(gen1_manifest) << "GC reaped a generation a live segment needs";

  // The pin is what makes fallback work: damage generation 2's manifest and
  // recovery still lands on the full state via generation 1 + its log.
  {
    std::string manifest2 = ReadRaw(ManifestFileName(2));
    manifest2[manifest2.size() / 2] ^= 0x40;
    WriteRaw(ManifestFileName(2), manifest2);
  }
  Database recovered;
  SnapshotLoadReport report;
  ASSERT_TRUE(recovered.RecoverWal(dir(), snapshot, wal, &report).ok());
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(report.generations_skipped, 1u);
  EXPECT_EQ(Fingerprint(recovered), expected);
}

TEST_F(WalFixture, WalCheckpointBytesAreODeltaNotOStore) {
  // The headline property: refreshing 1% of documents costs ~1% of the
  // bytes a snapshot rewrite would. (The CI bench gates the exact ratio;
  // this is the fast unit-level guard.)
  WalOptions wal;
  Database db;
  ASSERT_TRUE(db.AttachWal(dir(), wal).ok());
  Collection& c = db.GetOrCreate("articles");
  for (int j = 0; j < 500; ++j) {
    ASSERT_TRUE(c.Insert(MakeObject({{"k", static_cast<int64_t>(j)},
                                     {"body", std::string(100, 'x')}}))
                    .ok());
  }
  ASSERT_TRUE(db.Checkpoint(SnapshotOptions{}).ok());
  const size_t bytes_before = db.wal()->stats().bytes_synced;
  for (int j = 0; j < 5; ++j) {  // 1% delta
    ASSERT_TRUE(c.Upsert(Filter().Eq("k", Value(static_cast<int64_t>(j))),
                         MakeObject({{"k", static_cast<int64_t>(j)},
                                     {"body", std::string(100, 'y')}}))
                    .ok());
  }
  ASSERT_TRUE(db.WalSync().ok());
  const size_t delta_bytes = db.wal()->stats().bytes_synced - bytes_before;
  // Full store ≈ 500 docs × ~120 B ≈ 60 kB; the delta sync must be well
  // under a tenth of that.
  EXPECT_LT(delta_bytes, 6000u);
  EXPECT_GT(delta_bytes, 0u);
}

}  // namespace
}  // namespace newsdiff::store
