#include "common/retry.h"

#include <vector>

#include <gtest/gtest.h>

namespace newsdiff {
namespace {

RetryPolicy NoJitterPolicy() {
  RetryPolicy p;
  p.max_attempts = 5;
  p.initial_backoff_ms = 100;
  p.max_backoff_ms = 10000;
  p.multiplier = 2.0;
  p.decorrelated_jitter = false;
  return p;
}

TEST(RetryableTest, ClassifiesCodes) {
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kParseError));
  EXPECT_FALSE(IsRetryable(StatusCode::kInternal));
}

TEST(RetrierTest, SucceedsFirstTryWithoutSleeping) {
  ManualClock clock;
  Retrier retrier(NoJitterPolicy(), &clock);
  Status s = retrier.Run([] { return Status::OK(); });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(clock.NowMillis(), 0);
  EXPECT_EQ(retrier.stats().attempts, 1);
  EXPECT_EQ(retrier.stats().retries, 0);
}

TEST(RetrierTest, ExponentialBackoffScheduleWithoutJitter) {
  ManualClock clock;
  Retrier retrier(NoJitterPolicy(), &clock);
  int calls = 0;
  Status s = retrier.Run([&] {
    ++calls;
    return Status::Unavailable("down");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 5);
  // Slept 100 + 200 + 400 + 800 between the 5 attempts.
  EXPECT_EQ(clock.NowMillis(), 1500);
  EXPECT_EQ(retrier.stats().exhausted, 1);
  EXPECT_EQ(retrier.stats().unavailable, 5);
}

TEST(RetrierTest, DecorrelatedJitterStaysWithinBounds) {
  RetryPolicy p;
  p.max_attempts = 10;
  p.initial_backoff_ms = 100;
  p.max_backoff_ms = 2000;
  p.decorrelated_jitter = true;
  ManualClock clock;
  Retrier retrier(p, &clock, /*seed=*/7);
  std::vector<int64_t> sleeps;
  int64_t last = 0;
  retrier.Run([&] {
    sleeps.push_back(clock.NowMillis() - last);
    last = clock.NowMillis();
    return Status::Unavailable("down");
  });
  ASSERT_EQ(sleeps.size(), 10u);
  EXPECT_EQ(sleeps[0], 0);  // first attempt is immediate
  for (size_t i = 1; i < sleeps.size(); ++i) {
    EXPECT_GE(sleeps[i], p.initial_backoff_ms);
    EXPECT_LE(sleeps[i], p.max_backoff_ms);
  }
}

TEST(RetrierTest, EventualSuccessAfterTransientFailures) {
  ManualClock clock;
  Retrier retrier(NoJitterPolicy(), &clock);
  int calls = 0;
  Status s = retrier.Run([&] {
    if (++calls < 3) return Status::ResourceExhausted("rate limited");
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retrier.stats().retries, 2);
  EXPECT_EQ(retrier.stats().resource_exhausted, 2);
}

TEST(RetrierTest, FatalStatusIsNotRetried) {
  ManualClock clock;
  Retrier retrier(NoJitterPolicy(), &clock);
  int calls = 0;
  Status s = retrier.Run([&] {
    ++calls;
    return Status::NotFound("gone");
  });
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.NowMillis(), 0);
  EXPECT_EQ(retrier.stats().fatal, 1);
}

TEST(RetrierTest, SlowAttemptConvertedToDeadlineExceeded) {
  RetryPolicy p = NoJitterPolicy();
  p.max_attempts = 3;
  p.attempt_timeout_ms = 1000;
  ManualClock clock;
  Retrier retrier(p, &clock);
  int calls = 0;
  Status s = retrier.Run([&] {
    ++calls;
    if (calls == 1) {
      clock.Advance(5000);  // the first attempt hangs past the deadline
      return Status::OK();  // ...and its late result must be discarded
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(retrier.stats().deadline_exceeded, 1);
}

TEST(RetrierTest, OverallDeadlineStopsRetrying) {
  RetryPolicy p = NoJitterPolicy();
  p.max_attempts = 100;
  p.overall_deadline_ms = 350;  // allows ~2 backoffs (100 + 200)
  ManualClock clock;
  Retrier retrier(p, &clock);
  int calls = 0;
  Status s = retrier.Run([&] {
    ++calls;
    return Status::Unavailable("down");
  });
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(calls, 5);
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  opts.open_ms = 1000;
  ManualClock clock;
  CircuitBreaker breaker(opts, &clock, "test");
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureRun) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  ManualClock clock;
  CircuitBreaker breaker(opts, &clock);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // interrupts the run
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesAfterSuccesses) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 2;
  opts.open_ms = 1000;
  opts.half_open_successes = 2;
  ManualClock clock;
  CircuitBreaker breaker(opts, &clock);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.AllowRequest());
  clock.Advance(999);
  EXPECT_FALSE(breaker.AllowRequest());
  clock.Advance(1);  // cooldown elapsed -> half-open
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 2;
  opts.open_ms = 1000;
  ManualClock clock;
  CircuitBreaker breaker(opts, &clock);
  breaker.RecordFailure();
  breaker.RecordFailure();
  clock.Advance(1000);
  EXPECT_TRUE(breaker.AllowRequest());  // half-open probe
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.trips(), 2);
}

TEST(RetrierTest, BreakerGatesAttemptsAndRecoversViaBackoff) {
  RetryPolicy p = NoJitterPolicy();
  p.max_attempts = 8;
  CircuitBreakerOptions bopts;
  bopts.failure_threshold = 2;
  bopts.open_ms = 500;
  bopts.half_open_successes = 1;
  ManualClock clock;
  CircuitBreaker breaker(bopts, &clock, "endpoint");
  Retrier retrier(p, &clock);
  int calls = 0;
  // Two real failures trip the breaker; while it is open the retrier backs
  // off without calling the endpoint; once the cooldown elapses the
  // half-open probe succeeds and closes it again.
  Status s = retrier.Run(
      [&] {
        ++calls;
        if (calls <= 2) return Status::Unavailable("down");
        return Status::OK();
      },
      &breaker);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 3);  // breaker absorbed the attempts while open
  EXPECT_GE(retrier.stats().breaker_rejections, 1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(RetrierTest, PersistentOutageTripsBreakerAndExhausts) {
  RetryPolicy p = NoJitterPolicy();
  p.max_attempts = 6;
  CircuitBreakerOptions bopts;
  bopts.failure_threshold = 3;
  bopts.open_ms = 100000;  // never cools down within this run
  ManualClock clock;
  CircuitBreaker breaker(bopts, &clock);
  Retrier retrier(p, &clock);
  int calls = 0;
  Status s = retrier.Run(
      [&] {
        ++calls;
        return Status::Unavailable("down");
      },
      &breaker);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);  // remaining attempts rejected by the open breaker
  EXPECT_EQ(retrier.stats().breaker_rejections, 3);
  EXPECT_EQ(breaker.trips(), 1);
}

}  // namespace
}  // namespace newsdiff
