// Replication chaos suite (tier 2): the failover gate. The writer is
// killed at every possible io operation while a replica tails its log
// through a read path injecting >=10% failures, torn reads, and bit flips.
// At each crash point the replica is promoted and must be byte-identical
// to the writer's acknowledged synced prefix — and the revived stale
// writer, fenced by the promotion's lease token, must never get another
// record into the shared log.
#include "store/replica.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/retry.h"
#include "datagen/faults.h"
#include "store/database.h"
#include "store/json.h"
#include "store/lease.h"
#include "store/replication.h"

namespace newsdiff::store {
namespace {

namespace fs = std::filesystem;

class ReplicationChaosFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_replication_chaos_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

std::string Fingerprint(const Database& db) {
  std::string out;
  for (const std::string& name : db.CollectionNames()) {
    const Collection* coll = db.Get(name);
    out += "== " + name + " slots=" + std::to_string(coll->slot_count()) + "\n";
    for (const Value& doc : coll->All()) {
      out += ToJson(doc) + "\n";
    }
  }
  return out;
}

/// The same scripted insert/upsert/remove mix as the WAL crash sweeps: one
/// log record per step, so synced-record counts index reference states.
void ApplyOp(Database& db, int j) {
  Collection& articles = db.GetOrCreate("articles");
  if (j % 7 == 3 && j >= 3) {
    StatusOr<DocId> id = articles.Upsert(
        Filter().Eq("k", Value(static_cast<int64_t>(j - 3))),
        MakeObject({{"k", static_cast<int64_t>(j - 3)},
                    {"v", static_cast<int64_t>(j * 100)}}));
    ASSERT_TRUE(id.ok());
  } else if (j % 5 == 4 && (j - 1) % 7 != 3) {
    size_t removed =
        articles.Remove(Filter().Eq("k", Value(static_cast<int64_t>(j - 1))));
    ASSERT_EQ(removed, 1u);
  } else {
    StatusOr<DocId> id = articles.Insert(MakeObject(
        {{"k", static_cast<int64_t>(j)}, {"v", static_cast<int64_t>(j)}}));
    ASSERT_TRUE(id.ok());
  }
}

constexpr int kScriptOps = 40;

std::vector<std::string> ReferenceStates() {
  std::vector<std::string> states;
  Database db;
  states.push_back(Fingerprint(db));
  for (int j = 0; j < kScriptOps; ++j) {
    ApplyOp(db, j);
    states.push_back(Fingerprint(db));
  }
  return states;
}

/// Fault mix for the replica's read path: well above the 10% gate.
datagen::StorageFaultOptions ReplicaFaults(uint64_t seed) {
  datagen::StorageFaultOptions faults;
  faults.seed = seed;
  faults.read_failure_rate = 0.10;
  faults.read_tear_rate = 0.10;
  faults.read_flip_rate = 0.05;
  return faults;
}

TEST_F(ReplicationChaosFixture,
       ReplicationChaosPromotedReplicaMatchesSyncedPrefixAtEveryCrashPoint) {
  const std::vector<std::string> states = ReferenceStates();

  // Dry run on a clean io to count the writer's operations; the sweep then
  // kills the writer at every single one of them.
  size_t total_ops = 0;
  {
    const std::string d = (dir_ / "dry").string();
    fs::create_directories(d);
    ManualClock clock;
    datagen::FaultyFileIo wio(DefaultFileIo(), {});
    LeaseOptions lease_opts;
    lease_opts.io = &wio;
    lease_opts.clock = &clock;
    lease_opts.owner = "writer";
    lease_opts.ttl_ms = 1'000;
    StatusOr<Lease> lease = Lease::Acquire(d, lease_opts);
    ASSERT_TRUE(lease.ok());
    WalOptions wal;
    wal.io = &wio;
    wal.clock = &clock;
    wal.sync_every_records = 1;
    wal.write_gate = [&]() { return lease->Check(); };
    SnapshotOptions snap;
    snap.io = &wio;
    Database db;
    ASSERT_TRUE(db.AttachWal(d, wal).ok());
    for (int j = 0; j < kScriptOps; ++j) {
      ApplyOp(db, j);
      if (j == 20) {
        ASSERT_TRUE(db.Checkpoint(snap).ok());
      }
    }
    total_ops = wio.counters().ops;
    ASSERT_GT(total_ops, 0u);
  }

  for (size_t k = 0; k <= total_ops; ++k) {
    const std::string d = (dir_ / ("crash_" + std::to_string(k))).string();
    fs::create_directories(d);
    ManualClock clock;
    datagen::StorageFaultOptions writer_faults;
    writer_faults.crash_after_ops = k;
    datagen::FaultyFileIo wio(DefaultFileIo(), writer_faults);
    datagen::FaultyFileIo rio(DefaultFileIo(), ReplicaFaults(9'000 + k));

    ReplicaOptions replica_opts;
    replica_opts.snapshot.io = &rio;
    replica_opts.clock = &clock;
    replica_opts.promote_drain_polls = 8;
    replica_opts.promote_attempts = 16;
    Database rdb;
    Replica rep(d, &rdb, replica_opts);

    // The writer phase: lease-gated WAL, one synced record per op, a
    // checkpoint mid-script, the replica tailing every other op — with the
    // io dying (and staying dead) at op k.
    LeaseOptions lease_opts;
    lease_opts.io = &wio;
    lease_opts.clock = &clock;
    lease_opts.owner = "writer";
    lease_opts.ttl_ms = 1'000;
    StatusOr<Lease> lease = Lease::Acquire(d, lease_opts);
    Database db;
    bool writing = false;
    size_t synced = 0;
    if (lease.ok()) {
      WalOptions wal;
      wal.io = &wio;
      wal.clock = &clock;
      wal.sync_every_records = 1;
      wal.write_gate = [&]() { return lease->Check(); };
      writing = db.AttachWal(d, wal).ok();
    }
    if (writing) {
      SnapshotOptions snap;
      snap.io = &wio;
      for (int j = 0; j < kScriptOps; ++j) {
        ApplyOp(db, j);
        if (j == 20) {
          const Status checkpointed = db.Checkpoint(snap);
          (void)checkpointed;  // best-effort once the crash hits
        }
        if (j % 2 == 1) {
          const Status polled = rep.Poll();
          (void)polled;  // transient faults retry on the next poll
        }
      }
      synced = db.wal()->stats().records_synced;
    }

    // The writer host is gone. The disk itself settles (no lying appends
    // are configured, so this only clears the io's crash flag so the
    // stale writer can be revived for the fence check below).
    wio.Reboot();

    // Failover, still under read chaos: once the dead writer's lease
    // expires the replica takes over.
    clock.Advance(5'000);
    LeaseOptions promote_opts;
    promote_opts.owner = "replica";
    promote_opts.ttl_ms = 60'000;
    StatusOr<uint64_t> token = rep.Promote(promote_opts);
    ASSERT_TRUE(token.ok())
        << "crash point " << k << ": " << token.status().ToString();

    // The gate: the promoted replica is byte-identical to the prefix the
    // writer acknowledged as synced — no lost record, no torn or rotten
    // byte applied, at every crash point and under every read fault.
    ASSERT_LT(synced, states.size());
    const std::string got = Fingerprint(rdb);
    if (synced == 0) {
      // A torn first append can land exactly after the segment-header
      // frame: the collection then exists, empty with zero slots — the
      // same state cold recovery produces (and the WAL fuzz sweep allows).
      EXPECT_TRUE(got == states[0] || got == "== articles slots=0\n")
          << "crash point " << k << " state:\n"
          << got;
    } else {
      EXPECT_EQ(got, states[synced]) << "crash point " << k;
    }
    if (lease.ok()) {
      EXPECT_GE(*token, 2u) << "crash point " << k;
    }

    // Split-brain check: the stale writer comes back from the partition
    // with a healthy disk and tries to continue. Its in-memory writes
    // succeed, but the write gate (its fenced lease) keeps every one of
    // them out of the shared log.
    if (writing) {
      const size_t synced_before = db.wal()->stats().records_synced;
      ASSERT_TRUE(db.GetOrCreate("articles")
                      .Insert(MakeObject({{"k", static_cast<int64_t>(777)}}))
                      .ok());
      EXPECT_EQ(db.WalSync().code(), StatusCode::kFailedPrecondition)
          << "crash point " << k;
      EXPECT_EQ(db.wal()->stats().records_synced, synced_before)
          << "crash point " << k;
    }

    // Cold, fault-free recovery of the directory agrees with the promoted
    // replica: nothing the fenced writer buffered ever landed.
    Database cold;
    SnapshotLoadReport report;
    const Status recovered =
        cold.RecoverWal(d, SnapshotOptions{}, WalOptions{}, &report);
    ASSERT_TRUE(recovered.ok())
        << "crash point " << k << ": " << recovered.ToString();
    EXPECT_EQ(Fingerprint(cold), Fingerprint(rdb)) << "crash point " << k;

    fs::remove_all(d);
  }
}

TEST_F(ReplicationChaosFixture,
       ReplicationChaosTailerConvergesThroughFaultyReads) {
  // No writer failures here — pure read-path chaos. Across several fault
  // seeds the tailer must converge to the writer's exact state, without
  // ever mistaking a transient tear or flip for durable damage.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const std::string d = (dir_ / ("seed_" + std::to_string(seed))).string();
    Database db;
    WalOptions wal;
    wal.sync_every_records = 1;
    ASSERT_TRUE(db.AttachWal(d, wal).ok());

    datagen::FaultyFileIo rio(DefaultFileIo(), ReplicaFaults(seed));
    ReplicaOptions replica_opts;
    replica_opts.snapshot.io = &rio;
    Database rdb;
    Replica rep(d, &rdb, replica_opts);

    for (int j = 0; j < kScriptOps; ++j) {
      ApplyOp(db, j);
      if (j == 20) {
        ASSERT_TRUE(db.Checkpoint().ok());
      }
      const Status polled = rep.Poll();
      (void)polled;
    }
    for (int i = 0; i < 200 && !rep.stats().caught_up; ++i) {
      const Status polled = rep.Poll();
      (void)polled;
    }
    EXPECT_TRUE(rep.stats().caught_up) << "seed " << seed;
    EXPECT_EQ(Fingerprint(rdb), Fingerprint(db)) << "seed " << seed;
    ASSERT_NE(rep.tailer_stats(), nullptr);
    // Transient read damage must never be promoted to durable damage.
    EXPECT_EQ(rep.tailer_stats()->damaged_segments, 0u) << "seed " << seed;
    // The mid-script checkpoint prunes the pre-checkpoint segments (all
    // reflected in the retained generation), costing exactly one resync;
    // read chaos itself must never force one.
    EXPECT_LE(rep.stats().resyncs, 1u) << "seed " << seed;
    fs::remove_all(d);
  }
}

}  // namespace
}  // namespace newsdiff::store
