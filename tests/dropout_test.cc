#include "nn/dropout.h"

#include <gtest/gtest.h>

namespace newsdiff::nn {
namespace {

TEST(DropoutTest, IdentityAtInference) {
  Dropout drop(0.5, 1);
  Rng rng(2);
  la::Matrix x = la::Matrix::Random(3, 8, -1.0, 1.0, rng);
  la::Matrix y = drop.Forward(x, /*training=*/false);
  EXPECT_EQ(x.data(), y.data());
}

TEST(DropoutTest, ZeroRateIsIdentityInTraining) {
  Dropout drop(0.0, 1);
  Rng rng(3);
  la::Matrix x = la::Matrix::Random(2, 6, -1.0, 1.0, rng);
  la::Matrix y = drop.Forward(x, /*training=*/true);
  EXPECT_EQ(x.data(), y.data());
}

TEST(DropoutTest, DropsApproximatelyRateFraction) {
  Dropout drop(0.4, 7);
  la::Matrix x(1, 20000, 1.0);
  la::Matrix y = drop.Forward(x, /*training=*/true);
  size_t zeros = 0;
  const double scale = 1.0 / 0.6;
  for (double v : y.data()) {
    if (v == 0.0) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, scale, 1e-12);  // survivors are rescaled
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 20000.0, 0.4, 0.02);
}

TEST(DropoutTest, ExpectationPreserved) {
  Dropout drop(0.3, 11);
  la::Matrix x(1, 50000, 2.0);
  la::Matrix y = drop.Forward(x, /*training=*/true);
  EXPECT_NEAR(y.Sum() / 50000.0, 2.0, 0.05);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout drop(0.5, 13);
  la::Matrix x(2, 10, 1.0);
  la::Matrix y = drop.Forward(x, /*training=*/true);
  la::Matrix grad(2, 10, 1.0);
  la::Matrix gx = drop.Backward(grad);
  for (size_t i = 0; i < y.size(); ++i) {
    // Gradient flows exactly where the activation survived.
    EXPECT_DOUBLE_EQ(gx.data()[i], y.data()[i]);
  }
}

TEST(DropoutTest, OutputSizeUnchanged) {
  Dropout drop(0.2, 17);
  EXPECT_EQ(drop.OutputSize(33), 33u);
  EXPECT_EQ(drop.Name(), "Dropout");
  EXPECT_DOUBLE_EQ(drop.rate(), 0.2);
}

}  // namespace
}  // namespace newsdiff::nn
