#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace newsdiff::text {
namespace {

TEST(TokenizerTest, BasicSplitAndLowercase) {
  EXPECT_EQ(Tokenize("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, PunctuationRemoved) {
  EXPECT_EQ(Tokenize("a.b,c;d:e(f)g[h]"),
            (std::vector<std::string>{"a", "b", "c", "d", "e", "f", "g", "h"}));
}

TEST(TokenizerTest, NumbersKeptByDefault) {
  EXPECT_EQ(Tokenize("tariffs of 25 percent in 2019"),
            (std::vector<std::string>{"tariffs", "of", "25", "percent", "in",
                                      "2019"}));
}

TEST(TokenizerTest, NumbersDroppable) {
  TokenizerOptions opts;
  opts.keep_numbers = false;
  EXPECT_EQ(Tokenize("25 tariffs 2019", opts),
            (std::vector<std::string>{"tariffs"}));
}

TEST(TokenizerTest, MinLengthFilters) {
  TokenizerOptions opts;
  opts.min_length = 3;
  EXPECT_EQ(Tokenize("a an the cat", opts),
            (std::vector<std::string>{"the", "cat"}));
}

TEST(TokenizerTest, CasePreservedWhenRequested) {
  TokenizerOptions opts;
  opts.lowercase = false;
  EXPECT_EQ(Tokenize("Boris Johnson", opts),
            (std::vector<std::string>{"Boris", "Johnson"}));
}

TEST(TokenizerTest, ApostrophesKeptInsideWords) {
  EXPECT_EQ(Tokenize("don't can't o'clock"),
            (std::vector<std::string>{"don't", "can't", "o'clock"}));
}

TEST(TokenizerTest, TrailingApostropheDropped) {
  EXPECT_EQ(Tokenize("dogs' toys"),
            (std::vector<std::string>{"dogs", "toys"}));
}

TEST(TokenizerTest, ApostropheSplittingMode) {
  TokenizerOptions opts;
  opts.keep_apostrophes = false;
  EXPECT_EQ(Tokenize("don't", opts), (std::vector<std::string>{"don", "t"}));
}

TEST(TokenizerTest, Utf8RightQuoteTreatedAsApostrophe) {
  // "don’t" with a typographic apostrophe.
  EXPECT_EQ(Tokenize("don\xE2\x80\x99t"),
            (std::vector<std::string>{"don't"}));
}

TEST(TokenizerTest, UnderscoreIsWordChar) {
  EXPECT_EQ(Tokenize("new_york visited"),
            (std::vector<std::string>{"new_york", "visited"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  \t\n ").empty());
  EXPECT_TRUE(Tokenize("!!! ... ???").empty());
}

TEST(SentenceSplitTest, Basic) {
  auto s = SplitSentences("First one. Second one! Third?");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], "First one.");
  EXPECT_EQ(s[1], "Second one!");
  EXPECT_EQ(s[2], "Third?");
}

TEST(SentenceSplitTest, NoTerminator) {
  auto s = SplitSentences("no terminator here");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], "no terminator here");
}

TEST(SentenceSplitTest, Empty) {
  EXPECT_TRUE(SplitSentences("").empty());
  EXPECT_TRUE(SplitSentences("   ").empty());
}

TEST(NumericTokenTest, Recognition) {
  EXPECT_TRUE(IsNumericToken("123"));
  EXPECT_TRUE(IsNumericToken("1.5"));
  EXPECT_TRUE(IsNumericToken("1,500"));
  EXPECT_FALSE(IsNumericToken("1.2.3"));
  EXPECT_FALSE(IsNumericToken("12a"));
  EXPECT_FALSE(IsNumericToken(""));
  EXPECT_FALSE(IsNumericToken("."));
}

/// Property sweep: tokenization is idempotent — re-tokenizing the joined
/// token stream yields the same tokens.
class TokenizerIdempotenceSweep
    : public ::testing::TestWithParam<const char*> {};

TEST_P(TokenizerIdempotenceSweep, JoinedTokensRetokenizeIdentically) {
  std::vector<std::string> once = Tokenize(GetParam());
  std::string joined;
  for (const std::string& t : once) {
    if (!joined.empty()) joined += ' ';
    joined += t;
  }
  EXPECT_EQ(Tokenize(joined), once);
}

INSTANTIATE_TEST_SUITE_P(
    Samples, TokenizerIdempotenceSweep,
    ::testing::Values("Hello, World! It's 2019.",
                      "Tariffs; imports: 25% -- of goods?!",
                      "new_york times (weekend edition)",
                      "a b c d e f", ""));

}  // namespace
}  // namespace newsdiff::text
