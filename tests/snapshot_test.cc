// Crash-safety tests for the generation-numbered snapshot engine: manifest
// round trips, retention/GC, corruption fallback, and recovery from a
// process killed mid-save.
#include "store/snapshot.h"

#include <filesystem>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "datagen/faults.h"
#include "store/database.h"
#include "store/json.h"

namespace newsdiff::store {
namespace {

namespace fs = std::filesystem;

class SnapshotFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_snapshot_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  /// Dumps every collection as name -> concatenated JSON lines; equality of
  /// two dumps means byte-identical reloaded state.
  static std::map<std::string, std::string> Dump(const Database& db) {
    std::map<std::string, std::string> out;
    for (const std::string& name : db.CollectionNames()) {
      std::string lines;
      for (const Value& doc : db.Get(name)->All()) {
        lines += ToJson(doc);
        lines += '\n';
      }
      out[name] = std::move(lines);
    }
    return out;
  }

  std::vector<std::string> ManifestsOnDisk() const {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (ParseManifestFileName(entry.path().filename().string()).ok()) {
        names.push_back(entry.path().filename().string());
      }
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  fs::path dir_;
};

TEST(SnapshotFormatTest, ManifestSerializeParseRoundTrip) {
  Manifest m;
  m.generation = 42;
  m.entries.push_back({"news", "news-0000000042.jsonl", 17, 0xdeadbeef});
  m.entries.push_back({"tweets", "tweets-0000000042.jsonl", 0, 0});
  StatusOr<Manifest> parsed = ParseManifest(SerializeManifest(m));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->generation, 42u);
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].collection, "news");
  EXPECT_EQ(parsed->entries[0].file, "news-0000000042.jsonl");
  EXPECT_EQ(parsed->entries[0].docs, 17u);
  EXPECT_EQ(parsed->entries[0].crc32, 0xdeadbeefu);
  EXPECT_EQ(parsed->entries[1].collection, "tweets");
}

TEST(SnapshotFormatTest, ManifestFileNames) {
  EXPECT_EQ(ManifestFileName(42), "MANIFEST-0000000042");
  StatusOr<uint64_t> gen = ParseManifestFileName("MANIFEST-0000000042");
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(*gen, 42u);
  EXPECT_FALSE(ParseManifestFileName("MANIFEST-00000000x2").ok());
  EXPECT_FALSE(ParseManifestFileName("MANIFEST-").ok());
  EXPECT_FALSE(ParseManifestFileName("MANIFEST-0000000042.tmp").ok());
  EXPECT_FALSE(ParseManifestFileName("news-0000000042.jsonl").ok());
  EXPECT_FALSE(ParseManifestFileName("").ok());
  EXPECT_EQ(SnapshotCollectionFileName("news", 7), "news-0000000007.jsonl");
}

TEST_F(SnapshotFixture, GenerationsGrowAndLoadPicksNewest) {
  Database db;
  db.GetOrCreate("c").Insert(MakeObject({{"v", 1}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());
  db.GetOrCreate("c").Insert(MakeObject({{"v", 2}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());

  Database loaded;
  SnapshotLoadReport report;
  ASSERT_TRUE(loaded.LoadFromDir(dir(), SnapshotOptions{}, &report).ok());
  EXPECT_EQ(report.generation, 2u);
  EXPECT_EQ(report.generations_skipped, 0u);
  EXPECT_FALSE(report.legacy_format);
  EXPECT_EQ(loaded.Get("c")->size(), 2u);
}

TEST_F(SnapshotFixture, RetentionPrunesOldGenerations) {
  SnapshotOptions opts;
  opts.retain_generations = 2;
  Database db;
  for (int i = 0; i < 5; ++i) {
    db.GetOrCreate("c").Insert(MakeObject({{"v", i}}));
    ASSERT_TRUE(db.SaveToDir(dir(), opts).ok());
  }
  EXPECT_EQ(ManifestsOnDisk(),
            (std::vector<std::string>{"MANIFEST-0000000004",
                                      "MANIFEST-0000000005"}));
  // Collection files of reaped generations are gone too.
  EXPECT_FALSE(fs::exists(dir_ / "c-0000000001.jsonl"));
  EXPECT_FALSE(fs::exists(dir_ / "c-0000000003.jsonl"));
  EXPECT_TRUE(fs::exists(dir_ / "c-0000000005.jsonl"));
}

TEST_F(SnapshotFixture, DroppedCollectionIsNotResurrectedOnLoad) {
  Database db;
  db.GetOrCreate("keep").Insert(MakeObject({{"v", 1}}));
  db.GetOrCreate("gone").Insert(MakeObject({{"v", 2}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());

  ASSERT_TRUE(db.Drop("gone").ok());
  ASSERT_TRUE(db.SaveToDir(dir()).ok());

  Database loaded;
  ASSERT_TRUE(loaded.LoadFromDir(dir()).ok());
  EXPECT_NE(loaded.Get("keep"), nullptr);
  EXPECT_EQ(loaded.Get("gone"), nullptr)
      << "dropped collection resurrected from a stale snapshot file";
}

TEST_F(SnapshotFixture, LegacyOrphanFilesAreGarbageCollected) {
  fs::create_directories(dir_);
  {
    std::ofstream out(dir_ / "orphan.jsonl");
    out << "{\"stale\":true}\n";
  }
  SnapshotOptions opts;
  opts.retain_generations = 1;
  Database db;
  db.GetOrCreate("c").Insert(MakeObject({{"v", 1}}));
  ASSERT_TRUE(db.SaveToDir(dir(), opts).ok());
  EXPECT_FALSE(fs::exists(dir_ / "orphan.jsonl"))
      << "pre-snapshot legacy file must not linger (it would resurrect a "
         "dropped collection on a legacy-format load)";

  Database loaded;
  ASSERT_TRUE(loaded.LoadFromDir(dir()).ok());
  EXPECT_EQ(loaded.Get("orphan"), nullptr);
}

TEST_F(SnapshotFixture, ForeignFilesSurviveGarbageCollection) {
  fs::create_directories(dir_);
  {
    std::ofstream out(dir_ / "notes.txt");
    out << "operator notes, not snapshot state\n";
  }
  SnapshotOptions opts;
  opts.retain_generations = 1;
  Database db;
  db.GetOrCreate("c").Insert(MakeObject({{"v", 1}}));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(db.SaveToDir(dir(), opts).ok());
  EXPECT_TRUE(fs::exists(dir_ / "notes.txt"));
}

TEST_F(SnapshotFixture, CorruptNewestManifestFallsBackToOlderGeneration) {
  Database db;
  db.GetOrCreate("c").Insert(MakeObject({{"v", 1}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());
  db.GetOrCreate("c").Insert(MakeObject({{"v", 2}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());

  // Flip one byte of the newest manifest.
  const fs::path manifest = dir_ / ManifestFileName(2);
  std::string bytes;
  {
    std::ifstream in(manifest, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  bytes[bytes.size() / 2] ^= 0x20;
  {
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  Database loaded;
  SnapshotLoadReport report;
  ASSERT_TRUE(loaded.LoadFromDir(dir(), SnapshotOptions{}, &report).ok());
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(report.generations_skipped, 1u);
  ASSERT_EQ(report.problems.size(), 1u);
  EXPECT_EQ(loaded.Get("c")->size(), 1u);
}

TEST_F(SnapshotFixture, CorruptCollectionFileFallsBackToOlderGeneration) {
  Database db;
  db.GetOrCreate("c").Insert(MakeObject({{"v", 1}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());
  db.GetOrCreate("c").Insert(MakeObject({{"v", 2}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());

  // Damage the newest generation's data file; its manifest still verifies,
  // so only the per-file CRC can catch this.
  {
    std::ofstream out(dir_ / "c-0000000002.jsonl",
                      std::ios::binary | std::ios::app);
    out << "{\"injected\":true}\n";
  }

  Database loaded;
  SnapshotLoadReport report;
  ASSERT_TRUE(loaded.LoadFromDir(dir(), SnapshotOptions{}, &report).ok());
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(report.generations_skipped, 1u);
  EXPECT_EQ(loaded.Get("c")->size(), 1u);
}

TEST_F(SnapshotFixture, TruncatedCollectionFileFallsBack) {
  Database db;
  db.GetOrCreate("c").Insert(MakeObject({{"v", 1}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());
  db.GetOrCreate("c").Insert(MakeObject({{"v", 2}}));
  db.GetOrCreate("c").Insert(MakeObject({{"v", 3}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());

  const fs::path data = dir_ / "c-0000000002.jsonl";
  std::string bytes;
  {
    std::ifstream in(data, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(data, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 2);
  }

  Database loaded;
  SnapshotLoadReport report;
  ASSERT_TRUE(loaded.LoadFromDir(dir(), SnapshotOptions{}, &report).ok());
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(loaded.Get("c")->size(), 1u);
}

TEST_F(SnapshotFixture, NoIntactGenerationIsAnError) {
  Database db;
  db.GetOrCreate("c").Insert(MakeObject({{"v", 1}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());
  {
    std::ofstream out(dir_ / ManifestFileName(1),
                      std::ios::binary | std::ios::trunc);
    out << "garbage\n";
  }
  Database loaded;
  SnapshotLoadReport report;
  Status s = loaded.LoadFromDir(dir(), SnapshotOptions{}, &report);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no intact snapshot generation"),
            std::string::npos)
      << s.ToString();
  EXPECT_EQ(report.generations_skipped, 1u);
}

TEST_F(SnapshotFixture, FailedLoadLeavesDatabaseUntouched) {
  Database db;
  db.GetOrCreate("c").Insert(MakeObject({{"v", 1}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());
  {
    std::ofstream out(dir_ / ManifestFileName(1),
                      std::ios::binary | std::ios::trunc);
    out << "garbage\n";
  }
  Database loaded;
  loaded.GetOrCreate("precious").Insert(MakeObject({{"v", 7}}));
  loaded.GetOrCreate("c").Insert(MakeObject({{"v", 8}}));
  EXPECT_FALSE(loaded.LoadFromDir(dir()).ok());
  // All-or-nothing: nothing was installed or clobbered by the failed load.
  EXPECT_EQ(loaded.Get("precious")->size(), 1u);
  EXPECT_EQ(loaded.Get("c")->All()[0].Find("v")->AsInt(), 8);
}

TEST_F(SnapshotFixture, LegacyDirectoryLoadsAndReportsFormat) {
  fs::create_directories(dir_);
  {
    std::ofstream out(dir_ / "c.jsonl");
    out << "{\"v\":1}\n";
  }
  Database db;
  SnapshotLoadReport report;
  ASSERT_TRUE(db.LoadFromDir(dir(), SnapshotOptions{}, &report).ok());
  EXPECT_TRUE(report.legacy_format);
  EXPECT_EQ(report.generation, 0u);
  EXPECT_EQ(db.Get("c")->size(), 1u);
}

TEST_F(SnapshotFixture, UnreadableDirectoryFailsCleanly) {
  // Injected ListDir failure (chmod tricks don't bite when running as
  // root, so the seam is the only reliable way to model an unreadable
  // directory).
  Database db;
  db.GetOrCreate("c").Insert(MakeObject({{"v", 1}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());

  datagen::StorageFaultOptions fopts;
  fopts.read_failure_rate = 1.0;
  datagen::FaultyFileIo faulty(DefaultFileIo(), fopts);
  SnapshotOptions opts;
  opts.io = &faulty;
  Database loaded;
  Status s = loaded.LoadFromDir(dir(), opts);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);

  // A path that is a regular file, not a directory, must also fail via the
  // error_code path rather than throwing.
  Database other;
  EXPECT_FALSE(other.LoadFromDir((dir_ / "c-0000000001.jsonl").string()).ok());
}

TEST_F(SnapshotFixture, CrashAtEveryPointDuringSaveRecovers) {
  // Simulate kill -9 at every filesystem operation of a save and verify
  // recovery always lands on a complete state: the previous generation if
  // the crash hit before the manifest commit, the new one after.
  for (size_t crash_at = 1; crash_at <= 24; ++crash_at) {
    SCOPED_TRACE("crash_after_ops=" + std::to_string(crash_at));
    fs::remove_all(dir_);

    Database db;
    db.GetOrCreate("news").Insert(MakeObject({{"title", "first"}}));
    db.GetOrCreate("tweets").Insert(MakeObject({{"text", "hello"}}));
    ASSERT_TRUE(db.SaveToDir(dir()).ok());
    const auto state1 = Dump(db);

    db.GetOrCreate("news").Insert(MakeObject({{"title", "second"}}));
    db.GetOrCreate("tweets").Insert(MakeObject({{"text", "world"}}));
    const auto state2 = Dump(db);

    datagen::StorageFaultOptions fopts;
    fopts.seed = 1000 + crash_at;
    fopts.crash_after_ops = crash_at;
    datagen::FaultyFileIo faulty(DefaultFileIo(), fopts);
    SnapshotOptions opts;
    opts.io = &faulty;
    Status saved = db.SaveToDir(dir(), opts);

    Database loaded;
    SnapshotLoadReport report;
    ASSERT_TRUE(loaded.LoadFromDir(dir(), SnapshotOptions{}, &report).ok());
    const auto recovered = Dump(loaded);
    if (saved.ok()) {
      // Crash (if any) hit after the commit point, e.g. during GC.
      EXPECT_EQ(recovered, state2);
    } else {
      EXPECT_EQ(recovered, state1)
          << "interrupted save must be invisible until its manifest commits";
    }
  }
}

TEST_F(SnapshotFixture, SavesUnderSilentCorruptionStillRecoverable) {
  // Lost tails and bit flips are reported as successful writes; the CRCs
  // must catch them at load time and fall back to an older intact
  // generation. With retention 3 and a moderate fault rate, at least one
  // generation survives in every seeded run below.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fs::remove_all(dir_);

    Database db;
    db.GetOrCreate("c").Insert(MakeObject({{"v", 0}}));
    ASSERT_TRUE(db.SaveToDir(dir()).ok());  // clean baseline generation
    std::vector<std::map<std::string, std::string>> states = {Dump(db)};

    datagen::StorageFaultOptions fopts;
    fopts.seed = seed;
    fopts.lost_tail_rate = 0.25;
    fopts.bit_flip_rate = 0.25;
    datagen::FaultyFileIo faulty(DefaultFileIo(), fopts);
    SnapshotOptions opts;
    opts.io = &faulty;
    opts.retain_generations = 4;
    for (int i = 1; i <= 3; ++i) {
      db.GetOrCreate("c").Insert(MakeObject({{"v", i}}));
      Status saved = db.SaveToDir(dir(), opts);
      if (saved.ok()) states.push_back(Dump(db));
    }

    Database loaded;
    SnapshotLoadReport report;
    ASSERT_TRUE(loaded.LoadFromDir(dir(), SnapshotOptions{}, &report).ok());
    const auto recovered = Dump(loaded);
    bool matches_some_commit = false;
    for (const auto& s : states) matches_some_commit |= (recovered == s);
    EXPECT_TRUE(matches_some_commit)
        << "recovered state matches no committed snapshot";
    EXPECT_EQ(report.generations_skipped, report.problems.size());
  }
}

}  // namespace
}  // namespace newsdiff::store
