// Tests for the trending-news and correlation modules (§4.5-§4.6) using a
// hand-built embedding store, so similarities are exactly controllable.
#include <gtest/gtest.h>

#include "core/correlation.h"
#include "core/trending.h"

namespace newsdiff::core {
namespace {

embed::PretrainedStore AxisStore() {
  // Three orthogonal concept groups.
  std::unordered_map<std::string, std::vector<double>> table;
  table["brexit"] = {1, 0, 0};
  table["vote"] = {0.9, 0.1, 0};
  table["tariff"] = {0, 1, 0};
  table["trade"] = {0.1, 0.9, 0};
  table["coffee"] = {0, 0, 1};
  table["espresso"] = {0, 0.1, 0.9};
  return embed::PretrainedStore(embed::WordVectors(3, std::move(table)));
}

event::Event MakeEvent(const std::string& main_word,
                       std::vector<std::string> related,
                       UnixSeconds start, UnixSeconds end) {
  event::Event ev;
  ev.main_word = main_word;
  ev.related_words = std::move(related);
  ev.related_weights.assign(ev.related_words.size(), 0.8);
  ev.start_time = start;
  ev.end_time = end;
  return ev;
}

topic::Topic MakeTopic(size_t id, std::vector<std::string> keywords) {
  topic::Topic t;
  t.id = id;
  t.keywords = std::move(keywords);
  t.weights.assign(t.keywords.size(), 1.0);
  return t;
}

TEST(EncodeTest, EventAndTopicVectors) {
  embed::PretrainedStore store = AxisStore();
  event::Event ev = MakeEvent("brexit", {"vote"}, 0, 10);
  std::vector<double> v = EncodeEvent(ev, store);
  EXPECT_GT(v[0], 0.9);
  EXPECT_LT(v[2], 0.1);
  topic::Topic t = MakeTopic(0, {"coffee", "espresso"});
  std::vector<double> tv = EncodeTopic(t, store);
  EXPECT_GT(tv[2], 0.9);
}

TEST(TrendingTest, MatchesTopicToBestEvent) {
  embed::PretrainedStore store = AxisStore();
  std::vector<topic::Topic> topics = {
      MakeTopic(0, {"brexit", "vote"}),
      MakeTopic(1, {"tariff", "trade"}),
  };
  std::vector<event::Event> events = {
      MakeEvent("tariff", {"trade"}, 0, 10),
      MakeEvent("brexit", {"vote"}, 0, 10),
  };
  TrendingOptions opts;
  opts.min_similarity = 0.7;
  auto trending = ExtractTrendingTopics(topics, events, store, opts);
  ASSERT_EQ(trending.size(), 2u);
  EXPECT_EQ(trending[0].topic_id, 0u);
  EXPECT_EQ(trending[0].news_event, 1u);
  EXPECT_EQ(trending[1].topic_id, 1u);
  EXPECT_EQ(trending[1].news_event, 0u);
  EXPECT_GT(trending[0].similarity, 0.9);
}

TEST(TrendingTest, ThresholdFiltersWeakMatches) {
  embed::PretrainedStore store = AxisStore();
  std::vector<topic::Topic> topics = {MakeTopic(0, {"coffee"})};
  std::vector<event::Event> events = {MakeEvent("brexit", {"vote"}, 0, 10)};
  TrendingOptions opts;
  opts.min_similarity = 0.7;
  EXPECT_TRUE(ExtractTrendingTopics(topics, events, store, opts).empty());
}

TEST(TrendingTest, EmptyInputs) {
  embed::PretrainedStore store = AxisStore();
  EXPECT_TRUE(ExtractTrendingTopics({}, {}, store, TrendingOptions{}).empty());
  EXPECT_TRUE(ExtractTrendingTopics({MakeTopic(0, {"brexit"})}, {}, store,
                                    TrendingOptions{})
                  .empty());
}

class CorrelationFixture : public ::testing::Test {
 protected:
  CorrelationFixture() : store_(AxisStore()) {
    news_events_ = {
        MakeEvent("brexit", {"vote"}, Day(0), Day(4)),
        MakeEvent("tariff", {"trade"}, Day(10), Day(14)),
    };
    trending_ = {{0, 0, 0.95}, {1, 1, 0.95}};
    twitter_events_ = {
        MakeEvent("vote", {"brexit"}, Day(2), Day(8)),     // matches NT0
        MakeEvent("trade", {"tariff"}, Day(12), Day(20)),  // matches NT1
        MakeEvent("coffee", {"espresso"}, Day(2), Day(30)),  // chatter
        MakeEvent("vote", {"brexit"}, Day(20), Day(25)),   // outside window
    };
  }

  static UnixSeconds Day(int d) { return d * kSecondsPerDay; }

  embed::PretrainedStore store_;
  std::vector<event::Event> news_events_;
  std::vector<TrendingNewsTopic> trending_;
  std::vector<event::Event> twitter_events_;
};

TEST_F(CorrelationFixture, ForwardCorrelationRespectsWindowAndSim) {
  CorrelationOptions opts;
  opts.min_similarity = 0.65;
  opts.start_window_seconds = 5 * kSecondsPerDay;
  auto pairs = CorrelateTrendingWithTwitter(trending_, news_events_,
                                            twitter_events_, store_, opts);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].trending, 0u);
  EXPECT_EQ(pairs[0].twitter_event, 0u);
  EXPECT_EQ(pairs[1].trending, 1u);
  EXPECT_EQ(pairs[1].twitter_event, 1u);
}

TEST_F(CorrelationFixture, ReverseCorrelationYieldsSamePairs) {
  CorrelationOptions opts;
  auto forward = CorrelateTrendingWithTwitter(trending_, news_events_,
                                              twitter_events_, store_, opts);
  auto reverse = CorrelateTwitterWithTrending(trending_, news_events_,
                                              twitter_events_, store_, opts);
  ASSERT_EQ(forward.size(), reverse.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i].trending, reverse[i].trending);
    EXPECT_EQ(forward[i].twitter_event, reverse[i].twitter_event);
    EXPECT_NEAR(forward[i].similarity, reverse[i].similarity, 1e-12);
  }
}

TEST_F(CorrelationFixture, UnrelatedEventsIdentified) {
  CorrelationOptions opts;
  auto pairs = CorrelateTrendingWithTwitter(trending_, news_events_,
                                            twitter_events_, store_, opts);
  auto unrelated = UnrelatedTwitterEvents(pairs, twitter_events_.size());
  // The chatter event and the out-of-window event are unrelated.
  EXPECT_EQ(unrelated, (std::vector<size_t>{2, 3}));
}

TEST_F(CorrelationFixture, WindowIsOneSided) {
  // A Twitter event starting *before* the news event cannot match.
  std::vector<event::Event> early = {
      MakeEvent("vote", {"brexit"}, -Day(2), Day(2))};
  CorrelationOptions opts;
  auto pairs = CorrelateTrendingWithTwitter(trending_, news_events_, early,
                                            store_, opts);
  EXPECT_TRUE(pairs.empty());
}

TEST(UnrelatedTest, AllUnrelatedWhenNoPairs) {
  auto unrelated = UnrelatedTwitterEvents({}, 3);
  EXPECT_EQ(unrelated, (std::vector<size_t>{0, 1, 2}));
  EXPECT_TRUE(UnrelatedTwitterEvents({}, 0).empty());
}

}  // namespace
}  // namespace newsdiff::core
