#include "nn/metrics.h"

#include <gtest/gtest.h>

namespace newsdiff::nn {
namespace {

TEST(ConfusionMatrixTest, CountsCells) {
  //            predicted
  // truth 0: [2, 1, 0]
  // truth 1: [0, 1, 1]
  // truth 2: [0, 0, 2]
  std::vector<int> truth = {0, 0, 0, 1, 1, 2, 2};
  std::vector<int> pred = {0, 0, 1, 1, 2, 2, 2};
  ConfusionMatrix cm(truth, pred, 3);
  EXPECT_EQ(cm.total(), 7u);
  EXPECT_EQ(cm.At(0, 0), 2u);
  EXPECT_EQ(cm.At(0, 1), 1u);
  EXPECT_EQ(cm.At(1, 2), 1u);
  EXPECT_EQ(cm.At(2, 2), 2u);
  EXPECT_EQ(cm.At(2, 0), 0u);
}

TEST(ConfusionMatrixTest, PerClassCounts) {
  std::vector<int> truth = {0, 0, 0, 1, 1, 2, 2};
  std::vector<int> pred = {0, 0, 1, 1, 2, 2, 2};
  ConfusionMatrix cm(truth, pred, 3);
  EXPECT_EQ(cm.TruePositives(0), 2u);
  EXPECT_EQ(cm.FalseNegatives(0), 1u);
  EXPECT_EQ(cm.FalsePositives(0), 0u);
  EXPECT_EQ(cm.TrueNegatives(0), 4u);
  EXPECT_EQ(cm.TruePositives(2), 2u);
  EXPECT_EQ(cm.FalsePositives(2), 1u);
}

TEST(ConfusionMatrixTest, AccuracyAndEquation17) {
  std::vector<int> truth = {0, 0, 0, 1, 1, 2, 2};
  std::vector<int> pred = {0, 0, 1, 1, 2, 2, 2};
  ConfusionMatrix cm(truth, pred, 3);
  EXPECT_NEAR(cm.Accuracy(), 5.0 / 7.0, 1e-12);
  // Eq. 17: mean over classes of (TP + TN) / total.
  double expected = ((2 + 4) / 7.0 + (1 + 4) / 7.0 + (2 + 4) / 7.0) / 3.0;
  EXPECT_NEAR(cm.AverageAccuracy(), expected, 1e-12);
}

TEST(ConfusionMatrixTest, PerfectPrediction) {
  std::vector<int> y = {0, 1, 2, 1, 0};
  ConfusionMatrix cm(y, y, 3);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.AverageAccuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroRecall(), 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
}

TEST(ConfusionMatrixTest, EmptyInput) {
  ConfusionMatrix cm({}, {}, 3);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.AverageAccuracy(), 0.0);
}

TEST(ConfusionMatrixTest, AverageAccuracyAtLeastAccuracyFor3Classes) {
  // Eq. 17 counts true negatives, so it is >= plain accuracy for k >= 2.
  std::vector<int> truth = {0, 1, 2, 0, 1, 2, 0, 1};
  std::vector<int> pred = {1, 1, 0, 0, 2, 2, 0, 0};
  ConfusionMatrix cm(truth, pred, 3);
  EXPECT_GE(cm.AverageAccuracy(), cm.Accuracy());
}

TEST(MacroMetricsTest, KnownValues) {
  // Class 0: TP=1 FP=1 FN=0; class 1: TP=1 FP=0 FN=1.
  std::vector<int> truth = {0, 1, 1};
  std::vector<int> pred = {0, 0, 1};
  ConfusionMatrix cm(truth, pred, 2);
  EXPECT_NEAR(cm.MacroPrecision(), (0.5 + 1.0) / 2.0, 1e-12);
  EXPECT_NEAR(cm.MacroRecall(), (1.0 + 0.5) / 2.0, 1e-12);
}

TEST(ArgmaxRowsTest, PicksLargest) {
  la::Matrix m = la::Matrix::FromRows({{0.1, 0.7, 0.2}, {5, 1, 2}});
  EXPECT_EQ(ArgmaxRows(m), (std::vector<int>{1, 0}));
}

TEST(ArgmaxRowsTest, TieGoesToFirst) {
  la::Matrix m = la::Matrix::FromRows({{1.0, 1.0}});
  EXPECT_EQ(ArgmaxRows(m), (std::vector<int>{0}));
}

TEST(AccuracyTest, Fraction) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 0, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

}  // namespace
}  // namespace newsdiff::nn
