#include "embed/doc2vec.h"

#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace newsdiff::embed {
namespace {

PretrainedStore TwoWordStore() {
  std::unordered_map<std::string, std::vector<double>> table;
  table["alpha"] = {1.0, 0.0, 0.0};
  table["beta"] = {0.0, 1.0, 0.0};
  table["gamma"] = {0.0, 0.0, 1.0};
  return PretrainedStore(WordVectors(3, std::move(table)));
}

TEST(Doc2VecTest, SwAveragesInVocabWords) {
  PretrainedStore store = TwoWordStore();
  auto vec = EmbedDocument({"alpha", "beta"}, store, Doc2VecVariant::kSw);
  EXPECT_DOUBLE_EQ(vec[0], 0.5);
  EXPECT_DOUBLE_EQ(vec[1], 0.5);
  EXPECT_DOUBLE_EQ(vec[2], 0.0);
}

TEST(Doc2VecTest, SwIgnoresOovWords) {
  PretrainedStore store = TwoWordStore();
  auto with_oov =
      EmbedDocument({"alpha", "unknown1", "unknown2"}, store,
                    Doc2VecVariant::kSw);
  auto without = EmbedDocument({"alpha"}, store, Doc2VecVariant::kSw);
  EXPECT_EQ(with_oov, without);
}

TEST(Doc2VecTest, RndIncludesOovWordsDeterministically) {
  PretrainedStore store = TwoWordStore();
  auto v1 = EmbedDocument({"alpha", "zzz_unknown"}, store,
                          Doc2VecVariant::kRnd);
  auto v2 = EmbedDocument({"alpha", "zzz_unknown"}, store,
                          Doc2VecVariant::kRnd);
  EXPECT_EQ(v1, v2);
  auto sw = EmbedDocument({"alpha", "zzz_unknown"}, store,
                          Doc2VecVariant::kSw);
  EXPECT_NE(v1, sw);  // the OOV word contributed
}

TEST(Doc2VecTest, RndVectorBoundsAndStability) {
  auto v1 = RandomVectorForToken("token_x", 64);
  auto v2 = RandomVectorForToken("token_x", 64);
  auto v3 = RandomVectorForToken("token_y", 64);
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, v3);
  for (double x : v1) {
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Doc2VecTest, SwmScalesByEventWeight) {
  PretrainedStore store = TwoWordStore();
  EventWordWeights weights = {{"alpha", 1.0}, {"beta", 0.5}};
  auto vec = EmbedDocument({"alpha", "beta"}, store, Doc2VecVariant::kSwm,
                           &weights);
  EXPECT_DOUBLE_EQ(vec[0], 0.5);    // 1.0 * alpha / 2
  EXPECT_DOUBLE_EQ(vec[1], 0.25);   // 0.5 * beta / 2
}

TEST(Doc2VecTest, EventVocabularyRestrictsTokens) {
  PretrainedStore store = TwoWordStore();
  EventWordWeights weights = {{"alpha", 1.0}};
  // beta/gamma are in the store but not in the event vocabulary.
  auto vec = EmbedDocument({"alpha", "beta", "gamma"}, store,
                           Doc2VecVariant::kSw, &weights);
  EXPECT_DOUBLE_EQ(vec[0], 1.0);
  EXPECT_DOUBLE_EQ(vec[1], 0.0);
}

TEST(Doc2VecTest, NoContributorsYieldsZeroVector) {
  PretrainedStore store = TwoWordStore();
  auto vec = EmbedDocument({"unknown"}, store, Doc2VecVariant::kSw);
  EXPECT_EQ(vec, (std::vector<double>{0.0, 0.0, 0.0}));
  auto empty = EmbedDocument({}, store, Doc2VecVariant::kRnd);
  EXPECT_EQ(empty, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(Doc2VecTest, RepeatedTokensWeightTheAverage) {
  PretrainedStore store = TwoWordStore();
  auto vec = EmbedDocument({"alpha", "alpha", "beta"}, store,
                           Doc2VecVariant::kSw);
  EXPECT_NEAR(vec[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(vec[1], 1.0 / 3.0, 1e-12);
}

TEST(Doc2VecTest, EmbedKeywordsIsUnrestrictedSw) {
  PretrainedStore store = TwoWordStore();
  EXPECT_EQ(EmbedKeywords({"alpha", "beta"}, store),
            EmbedDocument({"alpha", "beta"}, store, Doc2VecVariant::kSw));
}

TEST(PretrainedStoreTest, SaveLoadRoundTrip) {
  PretrainedStore store = TwoWordStore();
  std::string path =
      (std::filesystem::temp_directory_path() / "newsdiff_pretrained_test.txt")
          .string();
  ASSERT_TRUE(store.SaveText(path).ok());
  auto loaded = PretrainedStore::LoadText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dimension(), 3u);
  EXPECT_EQ(loaded->size(), 3u);
  ASSERT_TRUE(loaded->Contains("alpha"));
  EXPECT_NEAR((*loaded->Get("alpha"))[0], 1.0, 1e-6);
  std::filesystem::remove(path);
}

TEST(PretrainedStoreTest, LoadRejectsMalformed) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "newsdiff_pretrained_bad.txt").string();
  {
    std::ofstream out(path);
    out << "2 3\nalpha 1 2 3\nbeta 1 2\n";  // short vector
  }
  EXPECT_FALSE(PretrainedStore::LoadText(path).ok());
  {
    std::ofstream out(path);
    out << "nonsense\n";
  }
  EXPECT_FALSE(PretrainedStore::LoadText(path).ok());
  {
    std::ofstream out(path);
    out << "5 3\nalpha 1 2 3\n";  // count mismatch
  }
  EXPECT_FALSE(PretrainedStore::LoadText(path).ok());
  EXPECT_FALSE(PretrainedStore::LoadText("/no/such/file").ok());
  fs::remove(path);
}

/// Property sweep over all three variants: output dimension always matches
/// the store, and the embedding never contains NaNs.
class Doc2VecVariantSweep : public ::testing::TestWithParam<Doc2VecVariant> {
};

TEST_P(Doc2VecVariantSweep, WellFormedOutput) {
  PretrainedStore store = TwoWordStore();
  EventWordWeights weights = {{"alpha", 1.0}, {"missing", 0.7}};
  auto vec = EmbedDocument({"alpha", "missing", "beta"}, store, GetParam(),
                           &weights);
  ASSERT_EQ(vec.size(), 3u);
  for (double v : vec) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Variants, Doc2VecVariantSweep,
                         ::testing::Values(Doc2VecVariant::kSw,
                                           Doc2VecVariant::kRnd,
                                           Doc2VecVariant::kSwm));

}  // namespace
}  // namespace newsdiff::embed
