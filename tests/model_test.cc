#include "nn/model.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/architectures.h"
#include "nn/dense.h"
#include "nn/dropout.h"

namespace newsdiff::nn {
namespace {

/// Two well-separated Gaussian blobs per class -> any sane classifier
/// should reach near-perfect accuracy.
void MakeBlobs(size_t per_class, size_t classes, size_t dim, uint64_t seed,
               la::Matrix* x, std::vector<int>* y) {
  Rng rng(seed);
  x->Resize(per_class * classes, dim);
  y->assign(per_class * classes, 0);
  size_t row = 0;
  for (size_t c = 0; c < classes; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      double* out = x->RowPtr(row);
      for (size_t d = 0; d < dim; ++d) {
        double center = (d % classes == c) ? 3.0 : 0.0;
        out[d] = rng.Gaussian(center, 0.5);
      }
      (*y)[row] = static_cast<int>(c);
      ++row;
    }
  }
}

TEST(ModelTest, AddTracksOutputSize) {
  Rng rng(1);
  Model model(10);
  EXPECT_EQ(model.input_size(), 10u);
  model.Add(std::make_unique<Dense>(10, 6, rng));
  EXPECT_EQ(model.output_size(), 6u);
  model.Add(std::make_unique<Activation>(ActivationKind::kRelu));
  EXPECT_EQ(model.output_size(), 6u);
  model.Add(std::make_unique<Dense>(6, 3, rng));
  EXPECT_EQ(model.output_size(), 3u);
  EXPECT_EQ(model.num_layers(), 3u);
  EXPECT_EQ(model.ParameterCount(), 10u * 6 + 6 + 6 * 3 + 3);
}

TEST(ModelTest, FitValidatesInputs) {
  MlpConfig cfg;
  cfg.input_size = 4;
  cfg.hidden_sizes = {4};
  Model model = BuildMlp(cfg);
  Sgd sgd({0.1, 0.0});
  FitOptions fit;
  la::Matrix x(3, 4);
  EXPECT_FALSE(model.Fit(x, {0, 1}, sgd, fit).ok());       // size mismatch
  EXPECT_FALSE(model.Fit(x, {0, 1, 9}, sgd, fit).ok());    // label range
  EXPECT_FALSE(model.Fit(la::Matrix(0, 4), {}, sgd, fit).ok());
  la::Matrix wrong(3, 5);
  EXPECT_FALSE(model.Fit(wrong, {0, 1, 2}, sgd, fit).ok());
  Model empty(4);
  EXPECT_FALSE(empty.Fit(x, {0, 1, 2}, sgd, fit).ok());
}

TEST(ModelTest, LearnsSeparableBlobs) {
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(40, 3, 6, 7, &x, &y);
  MlpConfig cfg;
  cfg.input_size = 6;
  cfg.hidden_sizes = {16};
  Model model = BuildMlp(cfg);
  Sgd sgd({0.2, 0.0});
  FitOptions fit;
  fit.epochs = 60;
  fit.batch_size = 16;
  fit.early_stopping.enabled = false;
  auto history = model.Fit(x, y, sgd, fit);
  ASSERT_TRUE(history.ok());
  auto [loss, acc] = model.Evaluate(x, y);
  EXPECT_GT(acc, 0.95);
  EXPECT_LT(loss, 0.3);
}

TEST(ModelTest, LossDecreasesOverTraining) {
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(30, 2, 4, 8, &x, &y);
  MlpConfig cfg;
  cfg.input_size = 4;
  cfg.hidden_sizes = {8};
  Model model = BuildMlp(cfg);
  Sgd sgd({0.1, 0.0});
  FitOptions fit;
  fit.epochs = 30;
  fit.batch_size = 8;
  fit.early_stopping.enabled = false;
  auto history = model.Fit(x, y, sgd, fit);
  ASSERT_TRUE(history.ok());
  EXPECT_LT(history->train_loss.back(), history->train_loss.front());
  EXPECT_GT(history->train_accuracy.back(), history->train_accuracy.front());
}

TEST(ModelTest, EarlyStoppingTriggers) {
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(30, 2, 4, 9, &x, &y);
  MlpConfig cfg;
  cfg.input_size = 4;
  cfg.hidden_sizes = {8};
  Model model = BuildMlp(cfg);
  Sgd sgd({0.3, 0.0});
  FitOptions fit;
  fit.epochs = 500;
  fit.batch_size = 60;
  fit.early_stopping = {true, 1e-3, 2};
  auto history = model.Fit(x, y, sgd, fit);
  ASSERT_TRUE(history.ok());
  EXPECT_TRUE(history->stopped_early);
  EXPECT_LT(history->epochs_run, 500u);
}

TEST(ModelTest, ValidationSplitTracked) {
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(40, 2, 4, 10, &x, &y);
  MlpConfig cfg;
  cfg.input_size = 4;
  cfg.hidden_sizes = {8};
  Model model = BuildMlp(cfg);
  Sgd sgd({0.1, 0.0});
  FitOptions fit;
  fit.epochs = 5;
  fit.batch_size = 16;
  fit.validation_split = 0.25;
  fit.early_stopping.enabled = false;
  auto history = model.Fit(x, y, sgd, fit);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->val_loss.size(), 5u);
  EXPECT_EQ(history->val_accuracy.size(), 5u);
}

TEST(ModelTest, PredictProbaRowsSumToOne) {
  MlpConfig cfg;
  cfg.input_size = 4;
  cfg.hidden_sizes = {8};
  cfg.num_classes = 3;
  Model model = BuildMlp(cfg);
  Rng rng(11);
  la::Matrix x = la::Matrix::Random(5, 4, -1.0, 1.0, rng);
  la::Matrix p = model.PredictProba(x);
  for (size_t r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < p.cols(); ++c) sum += p(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_EQ(model.Predict(x).size(), 5u);
}

TEST(ModelTest, DeterministicTraining) {
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(20, 2, 4, 12, &x, &y);
  auto run = [&]() {
    MlpConfig cfg;
    cfg.input_size = 4;
    cfg.hidden_sizes = {8};
    cfg.seed = 5;
    Model model = BuildMlp(cfg);
    Sgd sgd({0.1, 0.0});
    FitOptions fit;
    fit.epochs = 10;
    fit.batch_size = 8;
    fit.seed = 77;
    fit.early_stopping.enabled = false;
    auto history = model.Fit(x, y, sgd, fit);
    return history->train_loss.back();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(ModelTest, SummaryListsLayers) {
  MlpConfig cfg;
  cfg.input_size = 4;
  cfg.hidden_sizes = {8, 6};
  Model model = BuildMlp(cfg);
  std::string summary = model.Summary();
  EXPECT_NE(summary.find("Dense"), std::string::npos);
  EXPECT_NE(summary.find("ReLU"), std::string::npos);
}

TEST(ArchitecturesTest, CnnShapesAndTraining) {
  CnnConfig cfg;
  cfg.input_size = 24;
  cfg.filters = 4;
  cfg.kernel_size = 5;
  cfg.pool_size = 2;
  cfg.dense_size = 8;
  Model model = BuildCnn(cfg);
  EXPECT_EQ(model.output_size(), 3u);

  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(30, 3, 24, 13, &x, &y);
  Sgd sgd({0.1, 0.0});
  FitOptions fit;
  fit.epochs = 40;
  fit.batch_size = 16;
  fit.early_stopping.enabled = false;
  auto history = model.Fit(x, y, sgd, fit);
  ASSERT_TRUE(history.ok());
  auto [loss, acc] = model.Evaluate(x, y);
  EXPECT_GT(acc, 0.9);
}

TEST(ModelTest, ClippingKeepsHugeLearningRateFinite) {
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(30, 2, 4, 15, &x, &y);
  MlpConfig cfg;
  cfg.input_size = 4;
  cfg.hidden_sizes = {8};
  Model model = BuildMlp(cfg);
  Sgd sgd({25.0, 0.0});  // absurd learning rate
  FitOptions fit;
  fit.epochs = 15;
  fit.batch_size = 15;
  fit.clip_norm = 1.0;
  fit.early_stopping.enabled = false;
  auto history = model.Fit(x, y, sgd, fit);
  ASSERT_TRUE(history.ok());
  for (double loss : history->train_loss) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(ModelTest, DropoutModelStillLearns) {
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(40, 2, 6, 16, &x, &y);
  Rng rng(21);
  Model model(6);
  model.Add(std::make_unique<Dense>(6, 16, rng));
  model.Add(std::make_unique<Activation>(ActivationKind::kRelu));
  model.Add(std::make_unique<Dropout>(0.3, 5));
  model.Add(std::make_unique<Dense>(16, 2, rng));
  Sgd sgd({0.2, 0.0});
  FitOptions fit;
  fit.epochs = 60;
  fit.batch_size = 16;
  fit.early_stopping.enabled = false;
  auto history = model.Fit(x, y, sgd, fit);
  ASSERT_TRUE(history.ok());
  auto [loss, acc] = model.Evaluate(x, y);
  EXPECT_GT(acc, 0.9);
}

/// Property sweep: the MLP learns blobs with every optimizer used in the
/// paper's configurations.
class ModelOptimizerSweep : public ::testing::TestWithParam<int> {};

TEST_P(ModelOptimizerSweep, LearnsWithEachOptimizer) {
  la::Matrix x;
  std::vector<int> y;
  MakeBlobs(30, 2, 6, 14, &x, &y);
  MlpConfig cfg;
  cfg.input_size = 6;
  cfg.hidden_sizes = {12};
  cfg.num_classes = 2;
  Model model = BuildMlp(cfg);
  std::unique_ptr<Optimizer> opt;
  switch (GetParam()) {
    case 0:
      opt = std::make_unique<Sgd>(SgdOptions{0.5, 0.0});
      break;
    case 1:
      opt = std::make_unique<Adagrad>(AdagradOptions{0.1, 1e-8});
      break;
    default:
      opt = std::make_unique<Adadelta>(AdadeltaOptions{2.0, 0.95, 1e-6});
  }
  FitOptions fit;
  fit.epochs = 80;
  fit.batch_size = 15;
  fit.early_stopping.enabled = false;
  auto history = model.Fit(x, y, *opt, fit);
  ASSERT_TRUE(history.ok());
  auto [loss, acc] = model.Evaluate(x, y);
  EXPECT_GT(acc, 0.9) << "optimizer " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Optimizers, ModelOptimizerSweep,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace newsdiff::nn
