#include "topic/nmf.h"

#include <gtest/gtest.h>

#include "topic/topic_model.h"

namespace newsdiff::topic {
namespace {

la::CsrMatrix LowRankMatrix(size_t n, size_t m, size_t rank, uint64_t seed) {
  // Build A = W H with non-negative random factors, stored sparsely.
  Rng rng(seed);
  la::Matrix w = la::Matrix::Random(n, rank, 0.0, 1.0, rng);
  la::Matrix h = la::Matrix::Random(rank, m, 0.0, 1.0, rng);
  la::Matrix a = la::MatMul(w, h);
  std::vector<la::Triplet> triplets;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < m; ++c) {
      triplets.push_back({static_cast<uint32_t>(r), static_cast<uint32_t>(c),
                          a(r, c)});
    }
  }
  return la::CsrMatrix::FromTriplets(n, m, triplets);
}

TEST(NmfTest, RejectsBadArguments) {
  la::CsrMatrix a = LowRankMatrix(4, 5, 2, 1);
  NmfOptions opts;
  opts.components = 0;
  EXPECT_FALSE(Nmf(a, opts).ok());
  opts.components = 10;  // exceeds both dims
  EXPECT_FALSE(Nmf(a, opts).ok());
  la::CsrMatrix empty;
  opts.components = 1;
  EXPECT_FALSE(Nmf(empty, opts).ok());
}

TEST(NmfTest, FactorsAreNonNegative) {
  la::CsrMatrix a = LowRankMatrix(10, 8, 3, 2);
  NmfOptions opts;
  opts.components = 3;
  opts.max_iterations = 50;
  auto result = Nmf(a, opts);
  ASSERT_TRUE(result.ok());
  for (double v : result->w.data()) EXPECT_GE(v, 0.0);
  for (double v : result->h.data()) EXPECT_GE(v, 0.0);
}

TEST(NmfTest, ObjectiveDecreasesMonotonically) {
  la::CsrMatrix a = LowRankMatrix(12, 10, 3, 3);
  NmfOptions opts;
  opts.components = 3;
  opts.max_iterations = 100;
  opts.eval_every = 5;
  opts.tolerance = 0.0;  // run all checkpoints
  auto result = Nmf(a, opts);
  ASSERT_TRUE(result.ok());
  const auto& hist = result->objective_history;
  ASSERT_GE(hist.size(), 3u);
  for (size_t i = 1; i < hist.size(); ++i) {
    EXPECT_LE(hist[i], hist[i - 1] + 1e-8) << "checkpoint " << i;
  }
}

TEST(NmfTest, RecoversLowRankMatrixWell) {
  la::CsrMatrix a = LowRankMatrix(15, 12, 2, 4);
  NmfOptions opts;
  opts.components = 2;
  opts.max_iterations = 300;
  opts.tolerance = 1e-8;
  auto result = Nmf(a, opts);
  ASSERT_TRUE(result.ok());
  double rel = result->final_objective / a.SquaredFrobeniusNorm();
  EXPECT_LT(rel, 0.01);  // < 1% residual on an exactly rank-2 matrix
}

TEST(NmfTest, DeterministicForSeed) {
  la::CsrMatrix a = LowRankMatrix(8, 8, 2, 5);
  NmfOptions opts;
  opts.components = 2;
  opts.max_iterations = 20;
  auto r1 = Nmf(a, opts);
  auto r2 = Nmf(a, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->w.data(), r2->w.data());
  EXPECT_EQ(r1->h.data(), r2->h.data());
}

TEST(NmfTest, DifferentSeedsDifferentInit) {
  la::CsrMatrix a = LowRankMatrix(8, 8, 2, 6);
  NmfOptions o1, o2;
  o1.components = o2.components = 2;
  o1.max_iterations = o2.max_iterations = 1;
  o2.seed = o1.seed + 1;
  auto r1 = Nmf(a, o1);
  auto r2 = Nmf(a, o2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NE(r1->w.data(), r2->w.data());
}

TEST(NmfTest, ObjectiveFormulaMatchesDenseReference) {
  la::CsrMatrix a = LowRankMatrix(6, 5, 2, 7);
  Rng rng(8);
  la::Matrix w = la::Matrix::Random(6, 2, 0.0, 1.0, rng);
  la::Matrix h = la::Matrix::Random(2, 5, 0.0, 1.0, rng);
  double fast = NmfObjective(a, w, h);
  la::Matrix diff = a.ToDense();
  diff.Sub(la::MatMul(w, h));
  double reference = diff.FrobeniusNorm();
  EXPECT_NEAR(fast, reference * reference, 1e-8);
}

TEST(TopicModelTest, RecoversPlantedTopics) {
  // Two disjoint vocabularies; documents draw from exactly one.
  corpus::Corpus corp;
  std::vector<std::string> sports = {"goal", "match", "league", "striker"};
  std::vector<std::string> politics = {"vote", "election", "party",
                                       "parliament"};
  Rng rng(9);
  for (int d = 0; d < 40; ++d) {
    const auto& pool = d % 2 == 0 ? sports : politics;
    std::vector<std::string> doc;
    for (int i = 0; i < 12; ++i) {
      doc.push_back(pool[rng.NextBelow(pool.size())]);
    }
    corp.AddDocument(doc);
  }
  TopicModelOptions opts;
  opts.num_topics = 2;
  opts.keywords_per_topic = 4;
  opts.nmf.max_iterations = 200;
  auto model = TopicModel::Fit(corp, opts);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->topics().size(), 2u);
  // Each topic's keywords must come from a single planted vocabulary.
  for (const Topic& t : model->topics()) {
    size_t in_sports = 0, in_politics = 0;
    for (const std::string& kw : t.keywords) {
      if (std::find(sports.begin(), sports.end(), kw) != sports.end()) {
        ++in_sports;
      }
      if (std::find(politics.begin(), politics.end(), kw) != politics.end()) {
        ++in_politics;
      }
    }
    EXPECT_TRUE(in_sports == t.keywords.size() ||
                in_politics == t.keywords.size())
        << "mixed topic";
  }
  // Documents map to the right dominant topic consistently.
  size_t topic_of_even = model->DominantTopic(0);
  for (size_t d = 0; d < corp.size(); d += 2) {
    EXPECT_EQ(model->DominantTopic(d), topic_of_even);
  }
  for (size_t d = 1; d < corp.size(); d += 2) {
    EXPECT_NE(model->DominantTopic(d), topic_of_even);
  }
}

TEST(TopicModelTest, KeywordsSortedByWeight) {
  corpus::Corpus corp;
  Rng rng(10);
  const char* words[] = {"a", "b", "c", "d", "e", "f"};
  for (int d = 0; d < 20; ++d) {
    std::vector<std::string> doc;
    for (int i = 0; i < 8; ++i) doc.push_back(words[rng.NextBelow(6)]);
    corp.AddDocument(doc);
  }
  TopicModelOptions opts;
  opts.num_topics = 3;
  opts.keywords_per_topic = 6;
  auto model = TopicModel::Fit(corp, opts);
  ASSERT_TRUE(model.ok());
  for (const Topic& t : model->topics()) {
    for (size_t i = 1; i < t.weights.size(); ++i) {
      EXPECT_GE(t.weights[i - 1], t.weights[i]);
    }
  }
}

TEST(TopicModelTest, EmptyCorpusFails) {
  corpus::Corpus corp;
  EXPECT_FALSE(TopicModel::Fit(corp, TopicModelOptions{}).ok());
}

/// Property sweep over component counts: factor shapes follow k and the
/// objective never increases.
class NmfComponentSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(NmfComponentSweep, ShapesAndMonotonicity) {
  const size_t k = GetParam();
  la::CsrMatrix a = LowRankMatrix(20, 16, 4, 20 + k);
  NmfOptions opts;
  opts.components = k;
  opts.max_iterations = 60;
  opts.eval_every = 10;
  opts.tolerance = 0.0;
  auto result = Nmf(a, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->w.rows(), 20u);
  EXPECT_EQ(result->w.cols(), k);
  EXPECT_EQ(result->h.rows(), k);
  EXPECT_EQ(result->h.cols(), 16u);
  for (size_t i = 1; i < result->objective_history.size(); ++i) {
    EXPECT_LE(result->objective_history[i],
              result->objective_history[i - 1] + 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Components, NmfComponentSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace newsdiff::topic
