#include "topic/lda.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace newsdiff::topic {
namespace {

corpus::Corpus TwoThemeCorpus(uint64_t seed = 3) {
  corpus::Corpus corp;
  std::vector<std::string> sports = {"goal", "match", "league", "striker"};
  std::vector<std::string> politics = {"vote", "election", "party",
                                       "parliament"};
  Rng rng(seed);
  for (int d = 0; d < 60; ++d) {
    const auto& pool = d % 2 == 0 ? sports : politics;
    std::vector<std::string> doc;
    for (int i = 0; i < 15; ++i) {
      doc.push_back(pool[rng.NextBelow(pool.size())]);
    }
    corp.AddDocument(doc);
  }
  return corp;
}

TEST(LdaTest, RejectsBadInput) {
  corpus::Corpus empty;
  EXPECT_FALSE(FitLda(empty, LdaOptions{}).ok());
  corpus::Corpus corp = TwoThemeCorpus();
  LdaOptions opts;
  opts.num_topics = 0;
  EXPECT_FALSE(FitLda(corp, opts).ok());
}

TEST(LdaTest, DistributionsAreNormalised) {
  corpus::Corpus corp = TwoThemeCorpus();
  LdaOptions opts;
  opts.num_topics = 2;
  opts.iterations = 50;
  auto result = FitLda(corp, opts);
  ASSERT_TRUE(result.ok());
  for (size_t d = 0; d < result->doc_topic.rows(); ++d) {
    double sum = 0.0;
    for (size_t z = 0; z < result->doc_topic.cols(); ++z) {
      double p = result->doc_topic(d, z);
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  for (size_t z = 0; z < result->topic_word.rows(); ++z) {
    double sum = 0.0;
    for (size_t w = 0; w < result->topic_word.cols(); ++w) {
      sum += result->topic_word(z, w);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LdaTest, RecoversPlantedThemes) {
  corpus::Corpus corp = TwoThemeCorpus();
  LdaOptions opts;
  opts.num_topics = 2;
  opts.iterations = 150;
  auto result = FitLda(corp, opts);
  ASSERT_TRUE(result.ok());
  // Each topic's top-4 keywords should come from a single theme.
  std::vector<std::string> sports = {"goal", "match", "league", "striker"};
  for (size_t z = 0; z < 2; ++z) {
    auto keywords = LdaTopicKeywords(*result, corp, z, 4);
    size_t in_sports = 0;
    for (const std::string& kw : keywords) {
      if (std::find(sports.begin(), sports.end(), kw) != sports.end()) {
        ++in_sports;
      }
    }
    EXPECT_TRUE(in_sports == 0 || in_sports == 4)
        << "mixed topic " << z << " (" << in_sports << " sports words)";
  }
  // Documents of the two themes get opposite dominant topics.
  auto dominant = [&](size_t d) {
    return result->doc_topic(d, 0) > result->doc_topic(d, 1) ? 0 : 1;
  };
  EXPECT_NE(dominant(0), dominant(1));
  EXPECT_EQ(dominant(0), dominant(2));
}

TEST(LdaTest, LikelihoodImprovesWithSampling) {
  // Compare a barely-mixed chain (1 iteration) against a converged one.
  corpus::Corpus corp = TwoThemeCorpus();
  LdaOptions early;
  early.num_topics = 2;
  early.iterations = 1;
  LdaOptions late = early;
  late.iterations = 100;
  auto r_early = FitLda(corp, early);
  auto r_late = FitLda(corp, late);
  ASSERT_TRUE(r_early.ok() && r_late.ok());
  EXPECT_GT(r_late->log_likelihood.back(),
            r_early->log_likelihood.back());
  // And the converged chain never degrades between checkpoints by much.
  ASSERT_GE(r_late->log_likelihood.size(), 2u);
  EXPECT_GE(r_late->log_likelihood.back(),
            r_late->log_likelihood.front() - 1.0);
}

TEST(LdaTest, DeterministicForSeed) {
  corpus::Corpus corp = TwoThemeCorpus();
  LdaOptions opts;
  opts.num_topics = 2;
  opts.iterations = 30;
  auto r1 = FitLda(corp, opts);
  auto r2 = FitLda(corp, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->doc_topic.data(), r2->doc_topic.data());
}

TEST(LdaTest, KeywordsSortedByProbability) {
  corpus::Corpus corp = TwoThemeCorpus();
  LdaOptions opts;
  opts.num_topics = 2;
  opts.iterations = 50;
  auto result = FitLda(corp, opts);
  ASSERT_TRUE(result.ok());
  auto keywords = LdaTopicKeywords(*result, corp, 0, 8);
  EXPECT_EQ(keywords.size(), 8u);
  for (size_t i = 1; i < keywords.size(); ++i) {
    double prev = result->topic_word(
        0, corp.vocabulary().Get(keywords[i - 1]));
    double cur = result->topic_word(0, corp.vocabulary().Get(keywords[i]));
    EXPECT_GE(prev, cur);
  }
}

}  // namespace
}  // namespace newsdiff::topic
