#include "store/database.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "store/json.h"

namespace newsdiff::store {
namespace {

namespace fs = std::filesystem;

class DatabaseFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_db_test_" + std::to_string(0) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  fs::path dir_;
};

TEST_F(DatabaseFixture, GetOrCreateMakesCollections) {
  Database db;
  Collection& c1 = db.GetOrCreate("news");
  Collection& c2 = db.GetOrCreate("news");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(db.CollectionNames(), (std::vector<std::string>{"news"}));
}

TEST_F(DatabaseFixture, GetMissingReturnsNull) {
  Database db;
  EXPECT_EQ(db.Get("nope"), nullptr);
  const Database& cdb = db;
  EXPECT_EQ(cdb.Get("nope"), nullptr);
}

TEST_F(DatabaseFixture, Drop) {
  Database db;
  db.GetOrCreate("a");
  EXPECT_TRUE(db.Drop("a").ok());
  EXPECT_EQ(db.Drop("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(db.Get("a"), nullptr);
}

TEST_F(DatabaseFixture, SaveLoadRoundTrip) {
  Database db;
  Collection& tweets = db.GetOrCreate("tweets");
  tweets.Insert(MakeObject({{"text", "hello"}, {"likes", 5}}));
  tweets.Insert(MakeObject(
      {{"text", "world \"quoted\"\nline"}, {"likes", 2.5}}));
  Collection& users = db.GetOrCreate("users");
  users.Insert(MakeObject({{"handle", "user_0"}, {"followers", 120}}));

  ASSERT_TRUE(db.SaveToDir(dir()).ok());

  Database loaded;
  ASSERT_TRUE(loaded.LoadFromDir(dir()).ok());
  ASSERT_NE(loaded.Get("tweets"), nullptr);
  ASSERT_NE(loaded.Get("users"), nullptr);
  EXPECT_EQ(loaded.Get("tweets")->size(), 2u);
  EXPECT_EQ(loaded.Get("users")->size(), 1u);

  auto docs = loaded.Get("tweets")->All();
  EXPECT_EQ(docs[0].Find("text")->AsString(), "hello");
  EXPECT_EQ(docs[1].Find("text")->AsString(), "world \"quoted\"\nline");
  EXPECT_DOUBLE_EQ(docs[1].Find("likes")->AsDouble(), 2.5);
}

TEST_F(DatabaseFixture, LoadReplacesExistingCollection) {
  Database db;
  db.GetOrCreate("c").Insert(MakeObject({{"v", 1}}));
  ASSERT_TRUE(db.SaveToDir(dir()).ok());

  Database other;
  other.GetOrCreate("c").Insert(MakeObject({{"v", 99}}));
  other.GetOrCreate("c").Insert(MakeObject({{"v", 98}}));
  ASSERT_TRUE(other.LoadFromDir(dir()).ok());
  EXPECT_EQ(other.Get("c")->size(), 1u);
  EXPECT_EQ(other.Get("c")->All()[0].Find("v")->AsInt(), 1);
}

TEST_F(DatabaseFixture, LoadMissingDirFails) {
  Database db;
  EXPECT_FALSE(db.LoadFromDir(dir() + "/does/not/exist").ok());
}

TEST_F(DatabaseFixture, LoadRejectsMalformedLines) {
  fs::create_directories(dir_);
  {
    std::ofstream out(dir_ / "bad.jsonl");
    out << "{\"ok\":1}\n{not json\n";
  }
  Database db;
  Status s = db.LoadFromDir(dir());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST_F(DatabaseFixture, LoadSkipsNonJsonlFiles) {
  fs::create_directories(dir_);
  {
    std::ofstream out(dir_ / "notes.txt");
    out << "not a collection\n";
  }
  {
    std::ofstream out(dir_ / "c.jsonl");
    out << "{\"v\":1}\n";
  }
  Database db;
  ASSERT_TRUE(db.LoadFromDir(dir()).ok());
  EXPECT_EQ(db.CollectionNames(), (std::vector<std::string>{"c"}));
}

TEST_F(DatabaseFixture, EmptyLinesIgnored) {
  fs::create_directories(dir_);
  {
    std::ofstream out(dir_ / "c.jsonl");
    out << "{\"v\":1}\n\n{\"v\":2}\n";
  }
  Database db;
  ASSERT_TRUE(db.LoadFromDir(dir()).ok());
  EXPECT_EQ(db.Get("c")->size(), 2u);
}

}  // namespace
}  // namespace newsdiff::store
