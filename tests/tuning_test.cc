#include "core/tuning.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace newsdiff::core {
namespace {

void MakeSeparable(size_t n, size_t dim, la::Matrix* x, std::vector<int>* y) {
  Rng rng(9);
  x->Resize(n, dim);
  y->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    int cls = static_cast<int>(i % 2);
    for (size_t d = 0; d < dim; ++d) {
      (*x)(i, d) = rng.Gaussian(d % 2 == static_cast<size_t>(cls) ? 2.0 : 0.0,
                                0.5);
    }
    (*y)[i] = cls;
  }
}

PredictorOptions FastBase() {
  PredictorOptions o;
  o.max_epochs = 20;
  o.batch_size = 32;
  o.mlp_hidden = {8};
  o.cnn_filters = 2;
  o.cnn_kernel = 3;
  o.cnn_pool = 2;
  o.cnn_dense = 4;
  o.num_classes = 2;
  o.max_restarts = 0;
  return o;
}

TEST(TuningTest, RejectsEmptyCandidates) {
  la::Matrix x(20, 4);
  std::vector<int> y(20, 0);
  EXPECT_FALSE(TunePredictor(x, y, {}, 2).ok());
}

TEST(TuningTest, PicksClearlyBetterCandidate) {
  la::Matrix x;
  std::vector<int> y;
  MakeSeparable(150, 6, &x, &y);
  // Candidate 0 cannot learn (0 epochs of progress via lr 0); candidate 1
  // is a normal configuration.
  TuningCandidate bad;
  bad.label = "SGD lr=0 (frozen)";
  bad.kind = NetworkKind::kMlp1;
  bad.options = FastBase();
  bad.options.sgd_learning_rate = 0.0;
  TuningCandidate good;
  good.label = "SGD lr=0.5";
  good.kind = NetworkKind::kMlp1;
  good.options = FastBase();

  auto result = TunePredictor(x, y, {bad, good}, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_candidate.size(), 2u);
  EXPECT_EQ(result->best_index, 1u);
  EXPECT_GT(result->per_candidate[1].mean_accuracy,
            result->per_candidate[0].mean_accuracy);
}

TEST(TuningTest, PaperSearchSpaceShape) {
  auto space = PaperSearchSpace(FastBase());
  ASSERT_EQ(space.size(), 8u);  // 2 architectures x 4 optimizer settings
  size_t mlps = 0, cnns = 0;
  for (const TuningCandidate& c : space) {
    EXPECT_FALSE(c.label.empty());
    if (c.kind == NetworkKind::kMlp1 || c.kind == NetworkKind::kMlp2) ++mlps;
    if (c.kind == NetworkKind::kCnn1 || c.kind == NetworkKind::kCnn2) ++cnns;
  }
  EXPECT_EQ(mlps, 4u);
  EXPECT_EQ(cnns, 4u);
}

}  // namespace
}  // namespace newsdiff::core
