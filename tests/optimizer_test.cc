#include "nn/optimizer.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace newsdiff::nn {
namespace {

/// Minimizes f(w) = 0.5 * ||w - target||^2 with the given optimizer and
/// returns the final distance to the optimum.
double MinimizeQuadratic(Optimizer& opt, int steps) {
  la::Matrix w(1, 4);
  la::Matrix grad(1, 4);
  la::Matrix target = la::Matrix::FromRows({{1.0, -2.0, 0.5, 3.0}});
  std::vector<Param> params = {{&w, &grad, "w"}};
  for (int s = 0; s < steps; ++s) {
    for (size_t i = 0; i < 4; ++i) grad(0, i) = w(0, i) - target(0, i);
    opt.Step(params);
  }
  la::Matrix diff = w;
  diff.Sub(target);
  return diff.FrobeniusNorm();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Sgd sgd({0.1, 0.0});
  EXPECT_LT(MinimizeQuadratic(sgd, 200), 1e-6);
}

TEST(SgdTest, MomentumAcceleratesEarlyProgress) {
  Sgd plain({0.05, 0.0});
  Sgd momentum({0.05, 0.9});
  double plain_dist = MinimizeQuadratic(plain, 20);
  double momentum_dist = MinimizeQuadratic(momentum, 20);
  EXPECT_LT(momentum_dist, plain_dist);
}

TEST(AdagradTest, ConvergesOnQuadratic) {
  Adagrad ada({0.5, 1e-8});
  EXPECT_LT(MinimizeQuadratic(ada, 500), 1e-2);
}

TEST(AdagradTest, EffectiveStepShrinks) {
  // With constant gradient 1, step t is lr / sqrt(t): strictly decreasing.
  Adagrad ada({1.0, 1e-8});
  la::Matrix w(1, 1);
  la::Matrix grad(1, 1);
  std::vector<Param> params = {{&w, &grad, "w"}};
  double prev_step = 1e9;
  double prev_w = 0.0;
  for (int s = 0; s < 5; ++s) {
    grad(0, 0) = 1.0;
    ada.Step(params);
    double step = prev_w - w(0, 0);
    EXPECT_LT(step, prev_step);
    prev_step = step;
    prev_w = w(0, 0);
  }
}

TEST(AdadeltaTest, ConvergesOnQuadratic) {
  Adadelta ada({2.0, 0.95, 1e-6});
  EXPECT_LT(MinimizeQuadratic(ada, 800), 1e-2);
}

TEST(AdadeltaTest, NoManualLearningRateNeeded) {
  // Even with learning_rate 1 (the canonical parameter-free setting),
  // ADADELTA makes progress.
  Adadelta ada({1.0, 0.95, 1e-6});
  double start;
  {
    la::Matrix w(1, 4);
    la::Matrix target = la::Matrix::FromRows({{1.0, -2.0, 0.5, 3.0}});
    la::Matrix diff = w;
    diff.Sub(target);
    start = diff.FrobeniusNorm();
  }
  EXPECT_LT(MinimizeQuadratic(ada, 300), start * 0.5);
}

TEST(OptimizerTest, StatePerParameterIsIndependent) {
  Sgd sgd({0.1, 0.9});
  la::Matrix w1(1, 1), g1(1, 1), w2(1, 1), g2(1, 1);
  std::vector<Param> params = {{&w1, &g1, "w1"}, {&w2, &g2, "w2"}};
  g1(0, 0) = 1.0;
  g2(0, 0) = 0.0;
  sgd.Step(params);
  EXPECT_LT(w1(0, 0), 0.0);
  EXPECT_EQ(w2(0, 0), 0.0);  // zero grad, no momentum yet -> no movement
}

TEST(OptimizerTest, Names) {
  EXPECT_EQ(Sgd({}).Name(), "SGD");
  EXPECT_EQ(Adagrad({}).Name(), "ADAGRAD");
  EXPECT_EQ(Adadelta({}).Name(), "ADADELTA");
  EXPECT_EQ(Adam({}).Name(), "Adam");
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Adam adam({0.05, 0.9, 0.999, 1e-8});
  EXPECT_LT(MinimizeQuadratic(adam, 600), 1e-2);
}

TEST(AdamTest, BiasCorrectionGivesFullFirstStep) {
  // With constant unit gradient, the very first Adam step equals lr.
  Adam adam({0.1, 0.9, 0.999, 1e-12});
  la::Matrix w(1, 1);
  la::Matrix g(1, 1);
  g(0, 0) = 1.0;
  std::vector<Param> params = {{&w, &g, "w"}};
  adam.Step(params);
  EXPECT_NEAR(w(0, 0), -0.1, 1e-6);
}

/// Property sweep: every optimizer reduces the quadratic objective.
class OptimizerConvergenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerConvergenceSweep, ReducesObjective) {
  std::unique_ptr<Optimizer> opt;
  switch (GetParam()) {
    case 0:
      opt = std::make_unique<Sgd>(SgdOptions{0.1, 0.0});
      break;
    case 1:
      opt = std::make_unique<Sgd>(SgdOptions{0.05, 0.9});
      break;
    case 2:
      opt = std::make_unique<Adagrad>(AdagradOptions{0.5, 1e-8});
      break;
    default:
      opt = std::make_unique<Adadelta>(AdadeltaOptions{2.0, 0.95, 1e-6});
  }
  double initial = std::sqrt(1.0 + 4.0 + 0.25 + 9.0);  // ||0 - target||
  // ADADELTA warms its accumulators up slowly on a cold start, so give
  // every optimizer the same generous step budget.
  EXPECT_LT(MinimizeQuadratic(*opt, 1200), initial * 0.2);
}

INSTANTIATE_TEST_SUITE_P(Optimizers, OptimizerConvergenceSweep,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace newsdiff::nn
