file(REMOVE_RECURSE
  "CMakeFiles/breaking_news_monitor.dir/breaking_news_monitor.cpp.o"
  "CMakeFiles/breaking_news_monitor.dir/breaking_news_monitor.cpp.o.d"
  "breaking_news_monitor"
  "breaking_news_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breaking_news_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
