# Empty dependencies file for breaking_news_monitor.
# This may be replaced when dependencies are built.
