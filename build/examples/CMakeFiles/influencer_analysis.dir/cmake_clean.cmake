file(REMOVE_RECURSE
  "CMakeFiles/influencer_analysis.dir/influencer_analysis.cpp.o"
  "CMakeFiles/influencer_analysis.dir/influencer_analysis.cpp.o.d"
  "influencer_analysis"
  "influencer_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/influencer_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
