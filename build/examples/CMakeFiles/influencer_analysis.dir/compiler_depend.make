# Empty compiler generated dependencies file for influencer_analysis.
# This may be replaced when dependencies are built.
