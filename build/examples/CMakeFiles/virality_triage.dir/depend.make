# Empty dependencies file for virality_triage.
# This may be replaced when dependencies are built.
