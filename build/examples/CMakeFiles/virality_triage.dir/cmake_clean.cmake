file(REMOVE_RECURSE
  "CMakeFiles/virality_triage.dir/virality_triage.cpp.o"
  "CMakeFiles/virality_triage.dir/virality_triage.cpp.o.d"
  "virality_triage"
  "virality_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virality_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
