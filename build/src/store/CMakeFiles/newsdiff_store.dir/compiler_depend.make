# Empty compiler generated dependencies file for newsdiff_store.
# This may be replaced when dependencies are built.
