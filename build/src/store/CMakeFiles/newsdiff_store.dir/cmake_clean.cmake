file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_store.dir/collection.cc.o"
  "CMakeFiles/newsdiff_store.dir/collection.cc.o.d"
  "CMakeFiles/newsdiff_store.dir/database.cc.o"
  "CMakeFiles/newsdiff_store.dir/database.cc.o.d"
  "CMakeFiles/newsdiff_store.dir/json.cc.o"
  "CMakeFiles/newsdiff_store.dir/json.cc.o.d"
  "CMakeFiles/newsdiff_store.dir/value.cc.o"
  "CMakeFiles/newsdiff_store.dir/value.cc.o.d"
  "libnewsdiff_store.a"
  "libnewsdiff_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
