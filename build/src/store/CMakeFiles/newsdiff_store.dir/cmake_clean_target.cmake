file(REMOVE_RECURSE
  "libnewsdiff_store.a"
)
