file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_topic.dir/coherence.cc.o"
  "CMakeFiles/newsdiff_topic.dir/coherence.cc.o.d"
  "CMakeFiles/newsdiff_topic.dir/lda.cc.o"
  "CMakeFiles/newsdiff_topic.dir/lda.cc.o.d"
  "CMakeFiles/newsdiff_topic.dir/nmf.cc.o"
  "CMakeFiles/newsdiff_topic.dir/nmf.cc.o.d"
  "CMakeFiles/newsdiff_topic.dir/topic_model.cc.o"
  "CMakeFiles/newsdiff_topic.dir/topic_model.cc.o.d"
  "libnewsdiff_topic.a"
  "libnewsdiff_topic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_topic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
