# Empty dependencies file for newsdiff_topic.
# This may be replaced when dependencies are built.
