file(REMOVE_RECURSE
  "libnewsdiff_topic.a"
)
