
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topic/coherence.cc" "src/topic/CMakeFiles/newsdiff_topic.dir/coherence.cc.o" "gcc" "src/topic/CMakeFiles/newsdiff_topic.dir/coherence.cc.o.d"
  "/root/repo/src/topic/lda.cc" "src/topic/CMakeFiles/newsdiff_topic.dir/lda.cc.o" "gcc" "src/topic/CMakeFiles/newsdiff_topic.dir/lda.cc.o.d"
  "/root/repo/src/topic/nmf.cc" "src/topic/CMakeFiles/newsdiff_topic.dir/nmf.cc.o" "gcc" "src/topic/CMakeFiles/newsdiff_topic.dir/nmf.cc.o.d"
  "/root/repo/src/topic/topic_model.cc" "src/topic/CMakeFiles/newsdiff_topic.dir/topic_model.cc.o" "gcc" "src/topic/CMakeFiles/newsdiff_topic.dir/topic_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/newsdiff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/newsdiff_la.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/newsdiff_corpus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
