
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cc" "src/core/CMakeFiles/newsdiff_core.dir/assignment.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/assignment.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/newsdiff_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/collection.cc" "src/core/CMakeFiles/newsdiff_core.dir/collection.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/collection.cc.o.d"
  "/root/repo/src/core/correlation.cc" "src/core/CMakeFiles/newsdiff_core.dir/correlation.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/correlation.cc.o.d"
  "/root/repo/src/core/cross_validation.cc" "src/core/CMakeFiles/newsdiff_core.dir/cross_validation.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/cross_validation.cc.o.d"
  "/root/repo/src/core/embedding_cache.cc" "src/core/CMakeFiles/newsdiff_core.dir/embedding_cache.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/embedding_cache.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/newsdiff_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/features.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/newsdiff_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/newsdiff_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/predictor.cc.o.d"
  "/root/repo/src/core/preprocess.cc" "src/core/CMakeFiles/newsdiff_core.dir/preprocess.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/preprocess.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/newsdiff_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/report.cc.o.d"
  "/root/repo/src/core/trending.cc" "src/core/CMakeFiles/newsdiff_core.dir/trending.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/trending.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/core/CMakeFiles/newsdiff_core.dir/tuning.cc.o" "gcc" "src/core/CMakeFiles/newsdiff_core.dir/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/newsdiff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/newsdiff_la.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/newsdiff_store.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/newsdiff_text.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/newsdiff_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/topic/CMakeFiles/newsdiff_topic.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/newsdiff_event.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/newsdiff_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/newsdiff_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/newsdiff_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
