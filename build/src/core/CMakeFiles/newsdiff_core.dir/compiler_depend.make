# Empty compiler generated dependencies file for newsdiff_core.
# This may be replaced when dependencies are built.
