file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_core.dir/assignment.cc.o"
  "CMakeFiles/newsdiff_core.dir/assignment.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/checkpoint.cc.o"
  "CMakeFiles/newsdiff_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/collection.cc.o"
  "CMakeFiles/newsdiff_core.dir/collection.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/correlation.cc.o"
  "CMakeFiles/newsdiff_core.dir/correlation.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/cross_validation.cc.o"
  "CMakeFiles/newsdiff_core.dir/cross_validation.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/embedding_cache.cc.o"
  "CMakeFiles/newsdiff_core.dir/embedding_cache.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/features.cc.o"
  "CMakeFiles/newsdiff_core.dir/features.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/pipeline.cc.o"
  "CMakeFiles/newsdiff_core.dir/pipeline.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/predictor.cc.o"
  "CMakeFiles/newsdiff_core.dir/predictor.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/preprocess.cc.o"
  "CMakeFiles/newsdiff_core.dir/preprocess.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/report.cc.o"
  "CMakeFiles/newsdiff_core.dir/report.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/trending.cc.o"
  "CMakeFiles/newsdiff_core.dir/trending.cc.o.d"
  "CMakeFiles/newsdiff_core.dir/tuning.cc.o"
  "CMakeFiles/newsdiff_core.dir/tuning.cc.o.d"
  "libnewsdiff_core.a"
  "libnewsdiff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
