file(REMOVE_RECURSE
  "libnewsdiff_core.a"
)
