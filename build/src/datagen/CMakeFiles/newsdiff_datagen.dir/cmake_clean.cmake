file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_datagen.dir/feeds.cc.o"
  "CMakeFiles/newsdiff_datagen.dir/feeds.cc.o.d"
  "CMakeFiles/newsdiff_datagen.dir/themes.cc.o"
  "CMakeFiles/newsdiff_datagen.dir/themes.cc.o.d"
  "CMakeFiles/newsdiff_datagen.dir/world.cc.o"
  "CMakeFiles/newsdiff_datagen.dir/world.cc.o.d"
  "libnewsdiff_datagen.a"
  "libnewsdiff_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
