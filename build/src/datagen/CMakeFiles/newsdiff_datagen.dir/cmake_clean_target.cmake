file(REMOVE_RECURSE
  "libnewsdiff_datagen.a"
)
