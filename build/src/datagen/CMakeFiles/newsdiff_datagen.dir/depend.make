# Empty dependencies file for newsdiff_datagen.
# This may be replaced when dependencies are built.
