
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/feeds.cc" "src/datagen/CMakeFiles/newsdiff_datagen.dir/feeds.cc.o" "gcc" "src/datagen/CMakeFiles/newsdiff_datagen.dir/feeds.cc.o.d"
  "/root/repo/src/datagen/themes.cc" "src/datagen/CMakeFiles/newsdiff_datagen.dir/themes.cc.o" "gcc" "src/datagen/CMakeFiles/newsdiff_datagen.dir/themes.cc.o.d"
  "/root/repo/src/datagen/world.cc" "src/datagen/CMakeFiles/newsdiff_datagen.dir/world.cc.o" "gcc" "src/datagen/CMakeFiles/newsdiff_datagen.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/newsdiff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/newsdiff_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
