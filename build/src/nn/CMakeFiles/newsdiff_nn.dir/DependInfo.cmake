
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/newsdiff_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/newsdiff_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/architectures.cc" "src/nn/CMakeFiles/newsdiff_nn.dir/architectures.cc.o" "gcc" "src/nn/CMakeFiles/newsdiff_nn.dir/architectures.cc.o.d"
  "/root/repo/src/nn/conv1d.cc" "src/nn/CMakeFiles/newsdiff_nn.dir/conv1d.cc.o" "gcc" "src/nn/CMakeFiles/newsdiff_nn.dir/conv1d.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/nn/CMakeFiles/newsdiff_nn.dir/dense.cc.o" "gcc" "src/nn/CMakeFiles/newsdiff_nn.dir/dense.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/nn/CMakeFiles/newsdiff_nn.dir/dropout.cc.o" "gcc" "src/nn/CMakeFiles/newsdiff_nn.dir/dropout.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/newsdiff_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/newsdiff_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/metrics.cc" "src/nn/CMakeFiles/newsdiff_nn.dir/metrics.cc.o" "gcc" "src/nn/CMakeFiles/newsdiff_nn.dir/metrics.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/nn/CMakeFiles/newsdiff_nn.dir/model.cc.o" "gcc" "src/nn/CMakeFiles/newsdiff_nn.dir/model.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/newsdiff_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/newsdiff_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/newsdiff_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/newsdiff_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/newsdiff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/newsdiff_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
