file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_nn.dir/activations.cc.o"
  "CMakeFiles/newsdiff_nn.dir/activations.cc.o.d"
  "CMakeFiles/newsdiff_nn.dir/architectures.cc.o"
  "CMakeFiles/newsdiff_nn.dir/architectures.cc.o.d"
  "CMakeFiles/newsdiff_nn.dir/conv1d.cc.o"
  "CMakeFiles/newsdiff_nn.dir/conv1d.cc.o.d"
  "CMakeFiles/newsdiff_nn.dir/dense.cc.o"
  "CMakeFiles/newsdiff_nn.dir/dense.cc.o.d"
  "CMakeFiles/newsdiff_nn.dir/dropout.cc.o"
  "CMakeFiles/newsdiff_nn.dir/dropout.cc.o.d"
  "CMakeFiles/newsdiff_nn.dir/loss.cc.o"
  "CMakeFiles/newsdiff_nn.dir/loss.cc.o.d"
  "CMakeFiles/newsdiff_nn.dir/metrics.cc.o"
  "CMakeFiles/newsdiff_nn.dir/metrics.cc.o.d"
  "CMakeFiles/newsdiff_nn.dir/model.cc.o"
  "CMakeFiles/newsdiff_nn.dir/model.cc.o.d"
  "CMakeFiles/newsdiff_nn.dir/optimizer.cc.o"
  "CMakeFiles/newsdiff_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/newsdiff_nn.dir/serialize.cc.o"
  "CMakeFiles/newsdiff_nn.dir/serialize.cc.o.d"
  "libnewsdiff_nn.a"
  "libnewsdiff_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
