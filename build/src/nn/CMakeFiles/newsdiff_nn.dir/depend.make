# Empty dependencies file for newsdiff_nn.
# This may be replaced when dependencies are built.
