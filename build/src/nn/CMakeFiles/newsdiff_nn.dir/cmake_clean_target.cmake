file(REMOVE_RECURSE
  "libnewsdiff_nn.a"
)
