
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/doc2vec.cc" "src/embed/CMakeFiles/newsdiff_embed.dir/doc2vec.cc.o" "gcc" "src/embed/CMakeFiles/newsdiff_embed.dir/doc2vec.cc.o.d"
  "/root/repo/src/embed/pretrained.cc" "src/embed/CMakeFiles/newsdiff_embed.dir/pretrained.cc.o" "gcc" "src/embed/CMakeFiles/newsdiff_embed.dir/pretrained.cc.o.d"
  "/root/repo/src/embed/pvdbow.cc" "src/embed/CMakeFiles/newsdiff_embed.dir/pvdbow.cc.o" "gcc" "src/embed/CMakeFiles/newsdiff_embed.dir/pvdbow.cc.o.d"
  "/root/repo/src/embed/word2vec.cc" "src/embed/CMakeFiles/newsdiff_embed.dir/word2vec.cc.o" "gcc" "src/embed/CMakeFiles/newsdiff_embed.dir/word2vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/newsdiff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/newsdiff_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
