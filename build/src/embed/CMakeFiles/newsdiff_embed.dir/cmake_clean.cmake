file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_embed.dir/doc2vec.cc.o"
  "CMakeFiles/newsdiff_embed.dir/doc2vec.cc.o.d"
  "CMakeFiles/newsdiff_embed.dir/pretrained.cc.o"
  "CMakeFiles/newsdiff_embed.dir/pretrained.cc.o.d"
  "CMakeFiles/newsdiff_embed.dir/pvdbow.cc.o"
  "CMakeFiles/newsdiff_embed.dir/pvdbow.cc.o.d"
  "CMakeFiles/newsdiff_embed.dir/word2vec.cc.o"
  "CMakeFiles/newsdiff_embed.dir/word2vec.cc.o.d"
  "libnewsdiff_embed.a"
  "libnewsdiff_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
