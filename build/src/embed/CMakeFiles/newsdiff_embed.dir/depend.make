# Empty dependencies file for newsdiff_embed.
# This may be replaced when dependencies are built.
