file(REMOVE_RECURSE
  "libnewsdiff_embed.a"
)
