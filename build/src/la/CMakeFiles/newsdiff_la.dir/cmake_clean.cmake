file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_la.dir/matrix.cc.o"
  "CMakeFiles/newsdiff_la.dir/matrix.cc.o.d"
  "CMakeFiles/newsdiff_la.dir/sparse.cc.o"
  "CMakeFiles/newsdiff_la.dir/sparse.cc.o.d"
  "libnewsdiff_la.a"
  "libnewsdiff_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
