file(REMOVE_RECURSE
  "libnewsdiff_la.a"
)
