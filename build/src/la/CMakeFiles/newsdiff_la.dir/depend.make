# Empty dependencies file for newsdiff_la.
# This may be replaced when dependencies are built.
