
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/event/mabed.cc" "src/event/CMakeFiles/newsdiff_event.dir/mabed.cc.o" "gcc" "src/event/CMakeFiles/newsdiff_event.dir/mabed.cc.o.d"
  "/root/repo/src/event/time_slicer.cc" "src/event/CMakeFiles/newsdiff_event.dir/time_slicer.cc.o" "gcc" "src/event/CMakeFiles/newsdiff_event.dir/time_slicer.cc.o.d"
  "/root/repo/src/event/tracker.cc" "src/event/CMakeFiles/newsdiff_event.dir/tracker.cc.o" "gcc" "src/event/CMakeFiles/newsdiff_event.dir/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/newsdiff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/newsdiff_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/newsdiff_text.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/newsdiff_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
