file(REMOVE_RECURSE
  "libnewsdiff_event.a"
)
