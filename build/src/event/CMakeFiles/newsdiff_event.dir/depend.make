# Empty dependencies file for newsdiff_event.
# This may be replaced when dependencies are built.
