file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_event.dir/mabed.cc.o"
  "CMakeFiles/newsdiff_event.dir/mabed.cc.o.d"
  "CMakeFiles/newsdiff_event.dir/time_slicer.cc.o"
  "CMakeFiles/newsdiff_event.dir/time_slicer.cc.o.d"
  "CMakeFiles/newsdiff_event.dir/tracker.cc.o"
  "CMakeFiles/newsdiff_event.dir/tracker.cc.o.d"
  "libnewsdiff_event.a"
  "libnewsdiff_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
