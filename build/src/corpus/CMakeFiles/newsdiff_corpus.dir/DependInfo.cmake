
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus.cc" "src/corpus/CMakeFiles/newsdiff_corpus.dir/corpus.cc.o" "gcc" "src/corpus/CMakeFiles/newsdiff_corpus.dir/corpus.cc.o.d"
  "/root/repo/src/corpus/vocabulary.cc" "src/corpus/CMakeFiles/newsdiff_corpus.dir/vocabulary.cc.o" "gcc" "src/corpus/CMakeFiles/newsdiff_corpus.dir/vocabulary.cc.o.d"
  "/root/repo/src/corpus/weighting.cc" "src/corpus/CMakeFiles/newsdiff_corpus.dir/weighting.cc.o" "gcc" "src/corpus/CMakeFiles/newsdiff_corpus.dir/weighting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/newsdiff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/newsdiff_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
