file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_corpus.dir/corpus.cc.o"
  "CMakeFiles/newsdiff_corpus.dir/corpus.cc.o.d"
  "CMakeFiles/newsdiff_corpus.dir/vocabulary.cc.o"
  "CMakeFiles/newsdiff_corpus.dir/vocabulary.cc.o.d"
  "CMakeFiles/newsdiff_corpus.dir/weighting.cc.o"
  "CMakeFiles/newsdiff_corpus.dir/weighting.cc.o.d"
  "libnewsdiff_corpus.a"
  "libnewsdiff_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
