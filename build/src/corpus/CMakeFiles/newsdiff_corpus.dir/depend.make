# Empty dependencies file for newsdiff_corpus.
# This may be replaced when dependencies are built.
