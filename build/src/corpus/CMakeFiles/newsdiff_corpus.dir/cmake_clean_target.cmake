file(REMOVE_RECURSE
  "libnewsdiff_corpus.a"
)
