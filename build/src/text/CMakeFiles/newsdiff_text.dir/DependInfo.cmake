
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/lemmatizer.cc" "src/text/CMakeFiles/newsdiff_text.dir/lemmatizer.cc.o" "gcc" "src/text/CMakeFiles/newsdiff_text.dir/lemmatizer.cc.o.d"
  "/root/repo/src/text/ner.cc" "src/text/CMakeFiles/newsdiff_text.dir/ner.cc.o" "gcc" "src/text/CMakeFiles/newsdiff_text.dir/ner.cc.o.d"
  "/root/repo/src/text/phrases.cc" "src/text/CMakeFiles/newsdiff_text.dir/phrases.cc.o" "gcc" "src/text/CMakeFiles/newsdiff_text.dir/phrases.cc.o.d"
  "/root/repo/src/text/pipeline.cc" "src/text/CMakeFiles/newsdiff_text.dir/pipeline.cc.o" "gcc" "src/text/CMakeFiles/newsdiff_text.dir/pipeline.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/text/CMakeFiles/newsdiff_text.dir/stopwords.cc.o" "gcc" "src/text/CMakeFiles/newsdiff_text.dir/stopwords.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/newsdiff_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/newsdiff_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/newsdiff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
