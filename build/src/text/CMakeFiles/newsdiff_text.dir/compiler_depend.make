# Empty compiler generated dependencies file for newsdiff_text.
# This may be replaced when dependencies are built.
