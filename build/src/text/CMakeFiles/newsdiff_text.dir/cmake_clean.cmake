file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_text.dir/lemmatizer.cc.o"
  "CMakeFiles/newsdiff_text.dir/lemmatizer.cc.o.d"
  "CMakeFiles/newsdiff_text.dir/ner.cc.o"
  "CMakeFiles/newsdiff_text.dir/ner.cc.o.d"
  "CMakeFiles/newsdiff_text.dir/phrases.cc.o"
  "CMakeFiles/newsdiff_text.dir/phrases.cc.o.d"
  "CMakeFiles/newsdiff_text.dir/pipeline.cc.o"
  "CMakeFiles/newsdiff_text.dir/pipeline.cc.o.d"
  "CMakeFiles/newsdiff_text.dir/stopwords.cc.o"
  "CMakeFiles/newsdiff_text.dir/stopwords.cc.o.d"
  "CMakeFiles/newsdiff_text.dir/tokenizer.cc.o"
  "CMakeFiles/newsdiff_text.dir/tokenizer.cc.o.d"
  "libnewsdiff_text.a"
  "libnewsdiff_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
