file(REMOVE_RECURSE
  "libnewsdiff_text.a"
)
