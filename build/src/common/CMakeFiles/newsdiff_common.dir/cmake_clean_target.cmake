file(REMOVE_RECURSE
  "libnewsdiff_common.a"
)
