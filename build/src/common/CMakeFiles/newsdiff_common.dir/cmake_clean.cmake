file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_common.dir/logging.cc.o"
  "CMakeFiles/newsdiff_common.dir/logging.cc.o.d"
  "CMakeFiles/newsdiff_common.dir/rng.cc.o"
  "CMakeFiles/newsdiff_common.dir/rng.cc.o.d"
  "CMakeFiles/newsdiff_common.dir/status.cc.o"
  "CMakeFiles/newsdiff_common.dir/status.cc.o.d"
  "CMakeFiles/newsdiff_common.dir/strings.cc.o"
  "CMakeFiles/newsdiff_common.dir/strings.cc.o.d"
  "CMakeFiles/newsdiff_common.dir/table_printer.cc.o"
  "CMakeFiles/newsdiff_common.dir/table_printer.cc.o.d"
  "CMakeFiles/newsdiff_common.dir/time.cc.o"
  "CMakeFiles/newsdiff_common.dir/time.cc.o.d"
  "libnewsdiff_common.a"
  "libnewsdiff_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
