# Empty compiler generated dependencies file for newsdiff_common.
# This may be replaced when dependencies are built.
