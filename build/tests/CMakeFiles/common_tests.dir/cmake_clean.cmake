file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/logging_test.cc.o"
  "CMakeFiles/common_tests.dir/logging_test.cc.o.d"
  "CMakeFiles/common_tests.dir/matrix_test.cc.o"
  "CMakeFiles/common_tests.dir/matrix_test.cc.o.d"
  "CMakeFiles/common_tests.dir/rng_test.cc.o"
  "CMakeFiles/common_tests.dir/rng_test.cc.o.d"
  "CMakeFiles/common_tests.dir/sparse_test.cc.o"
  "CMakeFiles/common_tests.dir/sparse_test.cc.o.d"
  "CMakeFiles/common_tests.dir/status_test.cc.o"
  "CMakeFiles/common_tests.dir/status_test.cc.o.d"
  "CMakeFiles/common_tests.dir/strings_test.cc.o"
  "CMakeFiles/common_tests.dir/strings_test.cc.o.d"
  "CMakeFiles/common_tests.dir/table_printer_test.cc.o"
  "CMakeFiles/common_tests.dir/table_printer_test.cc.o.d"
  "CMakeFiles/common_tests.dir/time_test.cc.o"
  "CMakeFiles/common_tests.dir/time_test.cc.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
