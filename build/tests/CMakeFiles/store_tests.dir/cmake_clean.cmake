file(REMOVE_RECURSE
  "CMakeFiles/store_tests.dir/collection_test.cc.o"
  "CMakeFiles/store_tests.dir/collection_test.cc.o.d"
  "CMakeFiles/store_tests.dir/database_test.cc.o"
  "CMakeFiles/store_tests.dir/database_test.cc.o.d"
  "CMakeFiles/store_tests.dir/find_options_test.cc.o"
  "CMakeFiles/store_tests.dir/find_options_test.cc.o.d"
  "CMakeFiles/store_tests.dir/fuzz_test.cc.o"
  "CMakeFiles/store_tests.dir/fuzz_test.cc.o.d"
  "CMakeFiles/store_tests.dir/json_test.cc.o"
  "CMakeFiles/store_tests.dir/json_test.cc.o.d"
  "CMakeFiles/store_tests.dir/value_test.cc.o"
  "CMakeFiles/store_tests.dir/value_test.cc.o.d"
  "store_tests"
  "store_tests.pdb"
  "store_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
