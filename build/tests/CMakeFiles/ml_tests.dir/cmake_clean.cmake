file(REMOVE_RECURSE
  "CMakeFiles/ml_tests.dir/coherence_test.cc.o"
  "CMakeFiles/ml_tests.dir/coherence_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/corpus_test.cc.o"
  "CMakeFiles/ml_tests.dir/corpus_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/doc2vec_test.cc.o"
  "CMakeFiles/ml_tests.dir/doc2vec_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/lda_test.cc.o"
  "CMakeFiles/ml_tests.dir/lda_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/mabed_test.cc.o"
  "CMakeFiles/ml_tests.dir/mabed_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/nmf_test.cc.o"
  "CMakeFiles/ml_tests.dir/nmf_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/pvdbow_test.cc.o"
  "CMakeFiles/ml_tests.dir/pvdbow_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/time_slicer_test.cc.o"
  "CMakeFiles/ml_tests.dir/time_slicer_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/tracker_test.cc.o"
  "CMakeFiles/ml_tests.dir/tracker_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/weighting_schemes_test.cc.o"
  "CMakeFiles/ml_tests.dir/weighting_schemes_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/word2vec_test.cc.o"
  "CMakeFiles/ml_tests.dir/word2vec_test.cc.o.d"
  "ml_tests"
  "ml_tests.pdb"
  "ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
