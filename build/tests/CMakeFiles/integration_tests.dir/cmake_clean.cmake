file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/assignment_test.cc.o"
  "CMakeFiles/integration_tests.dir/assignment_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/checkpoint_test.cc.o"
  "CMakeFiles/integration_tests.dir/checkpoint_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/core_collection_test.cc.o"
  "CMakeFiles/integration_tests.dir/core_collection_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/core_features_test.cc.o"
  "CMakeFiles/integration_tests.dir/core_features_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/core_matching_test.cc.o"
  "CMakeFiles/integration_tests.dir/core_matching_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/core_pipeline_test.cc.o"
  "CMakeFiles/integration_tests.dir/core_pipeline_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/core_predictor_test.cc.o"
  "CMakeFiles/integration_tests.dir/core_predictor_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/cross_validation_test.cc.o"
  "CMakeFiles/integration_tests.dir/cross_validation_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/feeds_test.cc.o"
  "CMakeFiles/integration_tests.dir/feeds_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/report_test.cc.o"
  "CMakeFiles/integration_tests.dir/report_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/tuning_test.cc.o"
  "CMakeFiles/integration_tests.dir/tuning_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/world_test.cc.o"
  "CMakeFiles/integration_tests.dir/world_test.cc.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
