file(REMOVE_RECURSE
  "../bench/fig5_retweets_metadata"
  "../bench/fig5_retweets_metadata.pdb"
  "CMakeFiles/fig5_retweets_metadata.dir/fig5_retweets_metadata.cc.o"
  "CMakeFiles/fig5_retweets_metadata.dir/fig5_retweets_metadata.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_retweets_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
