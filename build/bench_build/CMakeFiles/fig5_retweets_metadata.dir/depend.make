# Empty dependencies file for fig5_retweets_metadata.
# This may be replaced when dependencies are built.
