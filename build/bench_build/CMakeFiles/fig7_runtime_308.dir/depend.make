# Empty dependencies file for fig7_runtime_308.
# This may be replaced when dependencies are built.
