file(REMOVE_RECURSE
  "../bench/fig7_runtime_308"
  "../bench/fig7_runtime_308.pdb"
  "CMakeFiles/fig7_runtime_308.dir/fig7_runtime_308.cc.o"
  "CMakeFiles/fig7_runtime_308.dir/fig7_runtime_308.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_runtime_308.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
