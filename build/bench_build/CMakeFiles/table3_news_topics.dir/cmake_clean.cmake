file(REMOVE_RECURSE
  "../bench/table3_news_topics"
  "../bench/table3_news_topics.pdb"
  "CMakeFiles/table3_news_topics.dir/table3_news_topics.cc.o"
  "CMakeFiles/table3_news_topics.dir/table3_news_topics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_news_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
