# Empty compiler generated dependencies file for table3_news_topics.
# This may be replaced when dependencies are built.
