# Empty dependencies file for table9_retweets_accuracy.
# This may be replaced when dependencies are built.
