file(REMOVE_RECURSE
  "../bench/table9_retweets_accuracy"
  "../bench/table9_retweets_accuracy.pdb"
  "CMakeFiles/table9_retweets_accuracy.dir/table9_retweets_accuracy.cc.o"
  "CMakeFiles/table9_retweets_accuracy.dir/table9_retweets_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_retweets_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
