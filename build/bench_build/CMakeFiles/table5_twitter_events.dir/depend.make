# Empty dependencies file for table5_twitter_events.
# This may be replaced when dependencies are built.
