file(REMOVE_RECURSE
  "../bench/table5_twitter_events"
  "../bench/table5_twitter_events.pdb"
  "CMakeFiles/table5_twitter_events.dir/table5_twitter_events.cc.o"
  "CMakeFiles/table5_twitter_events.dir/table5_twitter_events.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_twitter_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
