file(REMOVE_RECURSE
  "../bench/table10_scalability"
  "../bench/table10_scalability.pdb"
  "CMakeFiles/table10_scalability.dir/table10_scalability.cc.o"
  "CMakeFiles/table10_scalability.dir/table10_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
