# Empty compiler generated dependencies file for table10_scalability.
# This may be replaced when dependencies are built.
