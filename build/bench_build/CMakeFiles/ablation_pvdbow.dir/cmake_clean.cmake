file(REMOVE_RECURSE
  "../bench/ablation_pvdbow"
  "../bench/ablation_pvdbow.pdb"
  "CMakeFiles/ablation_pvdbow.dir/ablation_pvdbow.cc.o"
  "CMakeFiles/ablation_pvdbow.dir/ablation_pvdbow.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pvdbow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
