# Empty dependencies file for ablation_pvdbow.
# This may be replaced when dependencies are built.
