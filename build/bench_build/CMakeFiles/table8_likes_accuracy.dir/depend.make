# Empty dependencies file for table8_likes_accuracy.
# This may be replaced when dependencies are built.
