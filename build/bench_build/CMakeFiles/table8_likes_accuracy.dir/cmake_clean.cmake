file(REMOVE_RECURSE
  "../bench/table8_likes_accuracy"
  "../bench/table8_likes_accuracy.pdb"
  "CMakeFiles/table8_likes_accuracy.dir/table8_likes_accuracy.cc.o"
  "CMakeFiles/table8_likes_accuracy.dir/table8_likes_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_likes_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
