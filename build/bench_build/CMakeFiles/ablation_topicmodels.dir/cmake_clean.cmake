file(REMOVE_RECURSE
  "../bench/ablation_topicmodels"
  "../bench/ablation_topicmodels.pdb"
  "CMakeFiles/ablation_topicmodels.dir/ablation_topicmodels.cc.o"
  "CMakeFiles/ablation_topicmodels.dir/ablation_topicmodels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_topicmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
