# Empty compiler generated dependencies file for ablation_topicmodels.
# This may be replaced when dependencies are built.
