file(REMOVE_RECURSE
  "../bench/table6_correlation"
  "../bench/table6_correlation.pdb"
  "CMakeFiles/table6_correlation.dir/table6_correlation.cc.o"
  "CMakeFiles/table6_correlation.dir/table6_correlation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
