# Empty compiler generated dependencies file for table6_correlation.
# This may be replaced when dependencies are built.
