file(REMOVE_RECURSE
  "CMakeFiles/newsdiff_bench_harness.dir/harness.cc.o"
  "CMakeFiles/newsdiff_bench_harness.dir/harness.cc.o.d"
  "libnewsdiff_bench_harness.a"
  "libnewsdiff_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsdiff_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
