file(REMOVE_RECURSE
  "libnewsdiff_bench_harness.a"
)
