# Empty dependencies file for newsdiff_bench_harness.
# This may be replaced when dependencies are built.
