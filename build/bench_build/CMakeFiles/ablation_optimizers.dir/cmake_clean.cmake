file(REMOVE_RECURSE
  "../bench/ablation_optimizers"
  "../bench/ablation_optimizers.pdb"
  "CMakeFiles/ablation_optimizers.dir/ablation_optimizers.cc.o"
  "CMakeFiles/ablation_optimizers.dir/ablation_optimizers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
