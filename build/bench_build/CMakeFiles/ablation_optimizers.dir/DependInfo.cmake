
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_optimizers.cc" "bench_build/CMakeFiles/ablation_optimizers.dir/ablation_optimizers.cc.o" "gcc" "bench_build/CMakeFiles/ablation_optimizers.dir/ablation_optimizers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/newsdiff_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/newsdiff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topic/CMakeFiles/newsdiff_topic.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/newsdiff_event.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/newsdiff_text.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/newsdiff_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/newsdiff_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/newsdiff_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/newsdiff_la.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/newsdiff_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/newsdiff_store.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/newsdiff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
