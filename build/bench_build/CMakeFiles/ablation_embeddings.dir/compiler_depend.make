# Empty compiler generated dependencies file for ablation_embeddings.
# This may be replaced when dependencies are built.
