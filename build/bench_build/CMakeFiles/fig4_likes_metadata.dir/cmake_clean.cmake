file(REMOVE_RECURSE
  "../bench/fig4_likes_metadata"
  "../bench/fig4_likes_metadata.pdb"
  "CMakeFiles/fig4_likes_metadata.dir/fig4_likes_metadata.cc.o"
  "CMakeFiles/fig4_likes_metadata.dir/fig4_likes_metadata.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_likes_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
