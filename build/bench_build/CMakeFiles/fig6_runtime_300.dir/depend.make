# Empty dependencies file for fig6_runtime_300.
# This may be replaced when dependencies are built.
