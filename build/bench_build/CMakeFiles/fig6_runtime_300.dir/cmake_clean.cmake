file(REMOVE_RECURSE
  "../bench/fig6_runtime_300"
  "../bench/fig6_runtime_300.pdb"
  "CMakeFiles/fig6_runtime_300.dir/fig6_runtime_300.cc.o"
  "CMakeFiles/fig6_runtime_300.dir/fig6_runtime_300.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_runtime_300.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
