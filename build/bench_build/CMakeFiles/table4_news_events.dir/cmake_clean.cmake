file(REMOVE_RECURSE
  "../bench/table4_news_events"
  "../bench/table4_news_events.pdb"
  "CMakeFiles/table4_news_events.dir/table4_news_events.cc.o"
  "CMakeFiles/table4_news_events.dir/table4_news_events.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_news_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
