file(REMOVE_RECURSE
  "../bench/ablation_weighting"
  "../bench/ablation_weighting.pdb"
  "CMakeFiles/ablation_weighting.dir/ablation_weighting.cc.o"
  "CMakeFiles/ablation_weighting.dir/ablation_weighting.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
