# Empty compiler generated dependencies file for table7_unrelated_events.
# This may be replaced when dependencies are built.
