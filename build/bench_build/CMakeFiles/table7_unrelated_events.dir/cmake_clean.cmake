file(REMOVE_RECURSE
  "../bench/table7_unrelated_events"
  "../bench/table7_unrelated_events.pdb"
  "CMakeFiles/table7_unrelated_events.dir/table7_unrelated_events.cc.o"
  "CMakeFiles/table7_unrelated_events.dir/table7_unrelated_events.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_unrelated_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
