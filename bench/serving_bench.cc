// Closed-loop serving benchmark: the traffic measuring stick every later
// scaling PR is judged by.
//
// Drives a seeded open-loop request mix — tweet ingests, article upserts,
// QueryTrending, PredictInterest — through the newsdiff::Engine facade at
// configured arrival rates, with Zipf/NURand hot-key skew and the standard
// three-phase plan (steady -> flash crowd -> outlet outage), while a
// background thread rebuilds the index mid-run to exercise the concurrent
// generation swap. Reports p50/p99/p999 per op class, achieved-vs-offered
// throughput, and a saturation search (step the arrival rate until the SLO
// breaks).
//
// Gating policy (same as kernels_bench/index_bench: CI-noise-proof):
//   * determinism — regenerating the trace from the same seed must yield a
//     bit-identical request stream (TraceHash equality);
//   * correctness — zero serving errors across every phase, and the
//     mid-run index swap must have completed;
//   * SLO-ratio — achieved/offered throughput at the base rate must hold
//     the floor (a saturated driver falls behind its own open-loop
//     schedule; runner noise can only make this fail, never pass).
// Wall-clock latency percentiles and the saturation throughput are
// *recorded* in BENCH_serving.json but never gated, so a loaded CI runner
// cannot flake the job.
//
// CI runs `serving_bench --smoke` on the Release legs; the scheduled full
// run produces the checked-in BENCH_serving.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "datagen/world.h"
#include "loadgen/driver.h"
#include "loadgen/workload.h"
#include "store/database.h"

using namespace newsdiff;

namespace {

struct BenchConfig {
  bool smoke = false;
  uint64_t seed = 2021;
  double base_rate = 400.0;
  double phase_seconds = 4.0;
  double ratio_floor = 0.85;
  double saturation_start = 250.0;
  double saturation_growth = 2.0;
  size_t saturation_steps = 7;
  double saturation_window = 1.5;
  size_t threads = 8;
  /// Batched-vs-per-call model path comparison (tentpole gate).
  size_t predict_drafts = 256;
  size_t predict_reps = 8;
  /// Feature rows for the isolated model-path measurement.
  size_t model_rows = 512;
  /// Floor on the model-path speedup (batched GEMM vs one queued request
  /// per row) — the acceptance gate.
  double predict_speedup_floor = 5.0;
  /// Floor on the end-to-end PredictInterestBatch-vs-PredictInterest
  /// ratio. Retrieval cost (shared by both sides) caps the gain at ~1.1-
  /// 1.2x here, too small to gate above 1.0 without flaking on a noisy
  /// runner — so the floor only catches "batching actively hurts"; the
  /// measured ratio is recorded in BENCH_serving.json.
  double e2e_floor = 0.9;
};

BenchConfig SmokeConfig() {
  BenchConfig config;
  config.smoke = true;
  config.base_rate = 200.0;
  config.phase_seconds = 1.5;
  // Shared two-core CI runners legitimately run slower; the smoke floor
  // only has to catch "the serving path stopped keeping pace at all".
  config.ratio_floor = 0.70;
  config.saturation_start = 150.0;
  config.saturation_steps = 3;
  config.saturation_window = 0.6;
  config.threads = 4;
  config.predict_drafts = 96;
  config.predict_reps = 3;
  config.model_rows = 256;
  // The strong 5x claim is certified by the full run on the reference
  // machine; the smoke floors only catch "batching stopped helping".
  config.predict_speedup_floor = 2.0;
  config.e2e_floor = 0.5;
  return config;
}

/// Result of the batched-vs-per-call PredictInterest comparison.
struct InferenceSection {
  size_t drafts = 0;
  double per_call_rows_per_s = 0.0;
  double batched_rows_per_s = 0.0;
  double speedup = 0.0;
  /// Isolated model path: identical feature rows through the inference
  /// server, one queued request per row vs coalesced batches.
  double model_per_call_rows_per_s = 0.0;
  double model_batched_rows_per_s = 0.0;
  double model_speedup = 0.0;
  bool model_bitwise = false;  ///< Batched row i == per-call row i exactly.
  uint64_t batches = 0;          ///< Coalesced batches this section executed.
  double mean_batch_fill = 0.0;  ///< Rows per batch across the batched runs.
  uint64_t queue_rejections = 0;
  uint64_t serving_errors = 0;
  uint64_t model_predictions = 0;
  uint64_t index_swaps = 0;  ///< Rebuilds completed mid-batched-measurement.
  uint64_t model_version = 0;
  bool ok = false;
};

/// Measures the tentpole: PredictInterestBatch (all drafts coalesced into
/// one inference batch per call) against the per-call path (each
/// PredictInterest submits its own rows through the server). A rebuild
/// runs concurrently with the batched measurement, so the speedup is
/// earned across a live model/index swap — zero serving errors required.
InferenceSection RunInferenceComparison(
    Engine& engine, store::Database& db,
    const std::vector<std::string>& candidates, const BenchConfig& config) {
  using Clock = std::chrono::steady_clock;
  InferenceSection section;
  const size_t k = 10;  // loadgen::DriverOptions::query_k

  // Keep only drafts the current index can answer (synthetic ledes may
  // match no tweet -> NotFound, which is a miss, not an error). The filter
  // pass doubles as warmup: it packs the weights into the cross-call
  // cache and faults in the candidate features.
  std::vector<std::string> drafts;
  for (const std::string& d : candidates) {
    if (drafts.size() >= config.predict_drafts) break;
    if (engine.PredictInterest(d, k).ok()) drafts.push_back(d);
  }
  section.drafts = drafts.size();
  if (drafts.empty()) return section;

  const EngineStatsSnapshot before = engine.stats();

  // Per-call path: every prediction rides the queue alone.
  uint64_t per_call_ok = 0;
  const Clock::time_point t0 = Clock::now();
  for (size_t rep = 0; rep < config.predict_reps; ++rep) {
    for (const std::string& draft : drafts) {
      StatusOr<InterestPrediction> p = engine.PredictInterest(draft, k);
      if (p.ok()) ++per_call_ok;
    }
  }
  const Clock::time_point t1 = Clock::now();

  // Batched path: every rep scores all drafts through one coalesced
  // inference batch.
  uint64_t batched_ok = 0;
  const Clock::time_point t2 = Clock::now();
  for (size_t rep = 0; rep < config.predict_reps; ++rep) {
    const std::vector<StatusOr<InterestPrediction>> results =
        engine.PredictInterestBatch(drafts, k);
    for (const StatusOr<InterestPrediction>& p : results) {
      if (p.ok()) ++batched_ok;
    }
  }
  const Clock::time_point t3 = Clock::now();

  // Correctness across a live swap (untimed: the rebuild competes for
  // cores, so it must not contaminate the throughput comparison): keep
  // the batched path serving while BuildIndex swaps the index AND the
  // model generation underneath it.
  const uint64_t swaps_before = engine.stats().index_swaps;
  std::atomic<bool> rebuilt_done{false};
  std::thread refresher([&] {
    StatusOr<BuildIndexReport> rebuilt = engine.BuildIndex(db);
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "predict refresher: BuildIndex failed: %s\n",
                   rebuilt.status().ToString().c_str());
    }
    rebuilt_done.store(true, std::memory_order_release);
  });
  uint64_t swap_ok = 0;
  uint64_t swap_total = 0;
  while (!rebuilt_done.load(std::memory_order_acquire)) {
    const std::vector<StatusOr<InterestPrediction>> results =
        engine.PredictInterestBatch(drafts, k);
    for (const StatusOr<InterestPrediction>& p : results) {
      ++swap_total;
      if (p.ok()) ++swap_ok;
    }
  }
  refresher.join();

  // Isolated model path — the acceptance gate. The same feature rows are
  // served two ways through the engine's inference server: one queued
  // request per row (the unbatched per-call path) vs coalesced batches.
  // Both sides run the identical f32 kernels, so the batched output must
  // be bitwise equal row-for-row ("equal error rate" in the strictest
  // sense); the ratio isolates what coalescing buys — one queue/future
  // round-trip and one GEMM dispatch amortized over the whole batch.
  serve::InferenceServer* server = engine.inference_server();
  const size_t dim = serve::InterestModelOptions{}.feature_dim;
  la::Matrix feats(config.model_rows, dim);
  {
    Rng rng(config.seed ^ 0x9e3779b97f4a7c15ull);
    for (double& v : feats.data()) v = rng.Uniform(-1.0, 1.0);
  }
  std::vector<la::Matrix> single_rows(config.model_rows);
  for (size_t i = 0; i < config.model_rows; ++i) {
    single_rows[i].Resize(1, dim);
    for (size_t j = 0; j < dim; ++j) {
      single_rows[i](0, j) = feats(i, j);
    }
  }
  section.model_bitwise = true;
  const Clock::time_point m0 = Clock::now();
  std::vector<la::Matrix> per_row_out(config.model_rows);
  for (size_t i = 0; i < config.model_rows; ++i) {
    serve::InferenceServer::Result r = server->Predict(single_rows[i]);
    if (!r.ok()) {
      section.model_bitwise = false;
      break;
    }
    per_row_out[i] = std::move(*r);
  }
  const Clock::time_point m1 = Clock::now();
  serve::InferenceServer::Result batched_out = server->Predict(feats);
  const Clock::time_point m2 = Clock::now();
  for (size_t rep = 0; rep < config.predict_reps; ++rep) {
    batched_out = server->Predict(feats);
    if (!batched_out.ok()) break;
  }
  const Clock::time_point m3 = Clock::now();
  if (!batched_out.ok()) {
    section.model_bitwise = false;
  } else if (section.model_bitwise) {
    for (size_t i = 0; i < config.model_rows; ++i) {
      for (size_t c = 0; c < batched_out->cols(); ++c) {
        if ((*batched_out)(i, c) != per_row_out[i](0, c)) {
          section.model_bitwise = false;
        }
      }
    }
  }
  const double model_per_call_s =
      std::chrono::duration<double>(m1 - m0).count();
  const double model_batched_s =
      std::chrono::duration<double>(m3 - m2).count();
  const double model_rows = static_cast<double>(config.model_rows);
  section.model_per_call_rows_per_s =
      model_per_call_s > 0.0 ? model_rows / model_per_call_s : 0.0;
  section.model_batched_rows_per_s =
      model_batched_s > 0.0
          ? model_rows * static_cast<double>(config.predict_reps) /
                model_batched_s
          : 0.0;
  section.model_speedup = section.model_per_call_rows_per_s > 0.0
                              ? section.model_batched_rows_per_s /
                                    section.model_per_call_rows_per_s
                              : 0.0;

  const EngineStatsSnapshot after = engine.stats();
  const double per_call_s = std::chrono::duration<double>(t1 - t0).count();
  const double batched_s = std::chrono::duration<double>(t3 - t2).count();
  const uint64_t total = config.predict_reps * drafts.size();
  const double totald = static_cast<double>(total);
  section.per_call_rows_per_s = per_call_s > 0.0 ? totald / per_call_s : 0.0;
  section.batched_rows_per_s = batched_s > 0.0 ? totald / batched_s : 0.0;
  section.speedup = section.per_call_rows_per_s > 0.0
                        ? section.batched_rows_per_s /
                              section.per_call_rows_per_s
                        : 0.0;
  section.batches = after.inference_batches - before.inference_batches;
  const uint64_t batched_rows =
      after.inference_batched_rows - before.inference_batched_rows;
  section.mean_batch_fill =
      section.batches > 0
          ? static_cast<double>(batched_rows) /
                static_cast<double>(section.batches)
          : 0.0;
  section.queue_rejections =
      after.inference_queue_rejections - before.inference_queue_rejections;
  section.serving_errors = after.serving_errors - before.serving_errors;
  section.model_predictions =
      after.model_predictions - before.model_predictions;
  section.index_swaps = after.index_swaps - swaps_before;
  section.model_version = engine.model_version();

  // Equal error rate: both paths must answer every draft, the server must
  // never shed load, and the swap must complete without a serving error.
  // The telemetry cross-check mirrors the swap counters: the batches the
  // engine reports must account for every prediction made here.
  const bool clean = section.serving_errors == 0 &&
                     section.queue_rejections == 0 && per_call_ok == total &&
                     batched_ok == total && swap_ok == swap_total;
  const bool telemetry_ok = section.batches > 0 &&
                            section.model_predictions >= 2 * total &&
                            section.index_swaps >= 1;
  section.ok = clean && telemetry_ok && section.model_bitwise &&
               section.model_speedup >= config.predict_speedup_floor &&
               section.speedup >= config.e2e_floor;
  return section;
}

void PrintClassRow(const char* scope, size_t cls,
                   const loadgen::OpClassStats& s) {
  if (s.issued == 0) return;
  std::printf(
      "  %-14s %-16s issued=%6llu ok=%6llu nf=%4llu err=%3llu "
      "p50=%.2fms p99=%.2fms p999=%.2fms max=%.2fms\n",
      scope, loadgen::OpClassName(static_cast<loadgen::OpClass>(cls)),
      static_cast<unsigned long long>(s.issued),
      static_cast<unsigned long long>(s.ok),
      static_cast<unsigned long long>(s.not_found),
      static_cast<unsigned long long>(s.errors),
      s.latency.PercentileMillis(0.50), s.latency.PercentileMillis(0.99),
      s.latency.PercentileMillis(0.999),
      static_cast<double>(s.latency.max_nanos()) / 1.0e6);
}

void AppendClassJson(std::FILE* f, const loadgen::OpClassStats& s,
                     size_t cls, bool last) {
  std::fprintf(
      f,
      "      {\"op\": \"%s\", \"issued\": %llu, \"ok\": %llu, "
      "\"not_found\": %llu, \"errors\": %llu, \"p50_ms\": %.3f, "
      "\"p99_ms\": %.3f, \"p999_ms\": %.3f, \"max_ms\": %.3f, "
      "\"mean_service_ms\": %.4f}%s\n",
      loadgen::OpClassName(static_cast<loadgen::OpClass>(cls)),
      static_cast<unsigned long long>(s.issued),
      static_cast<unsigned long long>(s.ok),
      static_cast<unsigned long long>(s.not_found),
      static_cast<unsigned long long>(s.errors),
      s.latency.PercentileMillis(0.50), s.latency.PercentileMillis(0.99),
      s.latency.PercentileMillis(0.999),
      static_cast<double>(s.latency.max_nanos()) / 1.0e6,
      s.service.MeanNanos() / 1.0e6, last ? "" : ",");
}

bool WriteJson(const std::string& path, const BenchConfig& config,
               uint64_t trace_hash, const loadgen::RunReport& report,
               const std::vector<loadgen::PhaseSpec>& phases,
               const loadgen::SaturationResult& saturation,
               uint64_t index_swaps, const InferenceSection& inference,
               bool gates_ok) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", config.smoke ? "smoke" : "full");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(config.seed));
  std::fprintf(f, "  \"trace_hash\": \"%016llx\",\n",
               static_cast<unsigned long long>(trace_hash));
  std::fprintf(f, "  \"threads\": %zu,\n", config.threads);
  std::fprintf(f, "  \"offered_rate\": %.1f,\n", report.offered_rate);
  std::fprintf(f, "  \"achieved_rate\": %.1f,\n", report.achieved_rate);
  std::fprintf(f, "  \"achieved_ratio\": %.4f,\n", report.AchievedRatio());
  std::fprintf(f, "  \"ratio_floor\": %.2f,\n", config.ratio_floor);
  std::fprintf(f, "  \"requests\": %llu,\n",
               static_cast<unsigned long long>(report.issued));
  std::fprintf(f, "  \"errors\": %llu,\n",
               static_cast<unsigned long long>(report.errors));
  std::fprintf(f, "  \"index_swaps_under_load\": %llu,\n",
               static_cast<unsigned long long>(index_swaps));
  std::fprintf(f, "  \"gates_ok\": %s,\n", gates_ok ? "true" : "false");
  std::fprintf(f, "  \"inference\": {\n");
  std::fprintf(f, "    \"drafts\": %zu,\n", inference.drafts);
  std::fprintf(f, "    \"per_call_rows_per_s\": %.1f,\n",
               inference.per_call_rows_per_s);
  std::fprintf(f, "    \"batched_rows_per_s\": %.1f,\n",
               inference.batched_rows_per_s);
  std::fprintf(f, "    \"speedup\": %.2f,\n", inference.speedup);
  std::fprintf(f, "    \"e2e_floor\": %.2f,\n", config.e2e_floor);
  std::fprintf(f, "    \"model_per_call_rows_per_s\": %.1f,\n",
               inference.model_per_call_rows_per_s);
  std::fprintf(f, "    \"model_batched_rows_per_s\": %.1f,\n",
               inference.model_batched_rows_per_s);
  std::fprintf(f, "    \"model_speedup\": %.2f,\n", inference.model_speedup);
  std::fprintf(f, "    \"model_bitwise\": %s,\n",
               inference.model_bitwise ? "true" : "false");
  std::fprintf(f, "    \"speedup_floor\": %.1f,\n",
               config.predict_speedup_floor);
  std::fprintf(f, "    \"batches\": %llu,\n",
               static_cast<unsigned long long>(inference.batches));
  std::fprintf(f, "    \"mean_batch_fill\": %.1f,\n",
               inference.mean_batch_fill);
  std::fprintf(f, "    \"queue_rejections\": %llu,\n",
               static_cast<unsigned long long>(inference.queue_rejections));
  std::fprintf(f, "    \"serving_errors\": %llu,\n",
               static_cast<unsigned long long>(inference.serving_errors));
  std::fprintf(f, "    \"index_swaps_during_batched\": %llu,\n",
               static_cast<unsigned long long>(inference.index_swaps));
  std::fprintf(f, "    \"model_version\": %llu,\n",
               static_cast<unsigned long long>(inference.model_version));
  std::fprintf(f, "    \"ok\": %s\n", inference.ok ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"per_class\": [\n");
  for (size_t c = 0; c < loadgen::kNumOpClasses; ++c) {
    AppendClassJson(f, report.per_class[c], c,
                    c + 1 == loadgen::kNumOpClasses);
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"phases\": [\n");
  for (size_t p = 0; p < report.per_phase.size(); ++p) {
    uint64_t issued = 0;
    double worst_p99 = 0.0;
    for (size_t c = 0; c < loadgen::kNumOpClasses; ++c) {
      const loadgen::OpClassStats& s = report.per_phase[p][c];
      issued += s.issued;
      if (s.latency.count() > 0) {
        worst_p99 = std::max(worst_p99, s.latency.PercentileMillis(0.99));
      }
    }
    std::fprintf(f,
                 "    {\"phase\": \"%s\", \"offered_rate\": %.1f, "
                 "\"requests\": %llu, \"worst_p99_ms\": %.3f}%s\n",
                 p < phases.size() ? phases[p].name.c_str() : "?",
                 p < phases.size() ? phases[p].arrival_rate : 0.0,
                 static_cast<unsigned long long>(issued), worst_p99,
                 p + 1 < report.per_phase.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"saturation\": {\n");
  std::fprintf(f, "    \"max_sustained_rate\": %.1f,\n",
               saturation.max_sustained_rate);
  std::fprintf(f, "    \"breaking_rate\": %.1f,\n", saturation.breaking_rate);
  std::fprintf(f, "    \"steps\": [\n");
  for (size_t i = 0; i < saturation.steps.size(); ++i) {
    const loadgen::SaturationStep& s = saturation.steps[i];
    std::fprintf(f,
                 "      {\"offered_rate\": %.1f, \"achieved_ratio\": %.4f, "
                 "\"p99_ms\": %.3f, \"slo_ok\": %s%s%s}%s\n",
                 s.offered_rate, s.achieved_ratio, s.p99_ms,
                 s.slo_ok ? "true" : "false",
                 s.violation.empty() ? "" : ", \"violated\": \"",
                 s.violation.empty() ? "" : (s.violation + "\"").c_str(),
                 i + 1 < saturation.steps.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config = SmokeConfig();
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  std::printf("=== Serving load harness (%s mode) ===\n\n",
              config.smoke ? "smoke" : "full");

  // World + engine under test. The index lives in memory: this bench
  // measures the serving path, not the filesystem.
  datagen::WorldOptions world_options;
  world_options.seed = config.seed;
  if (config.smoke) {
    world_options.num_articles = 1500;
    world_options.num_tweets = 4000;
    world_options.num_users = 600;
  }
  datagen::World world = datagen::GenerateWorld(world_options);
  store::Database db;
  world.LoadInto(db);

  Engine engine{EngineOptions{}};
  StatusOr<BuildIndexReport> built = engine.BuildIndex(db);
  if (!built.ok()) {
    std::fprintf(stderr, "FAIL: initial BuildIndex: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::printf("world: %zu articles, %zu tweets; index: %zu news docs, "
              "%zu tweet docs\n\n",
              world.articles.size(), world.tweets.size(), built->news_docs,
              built->tweet_docs);

  bool gates_ok = true;

  // Gate 1: seed-determinism. The same options must synthesize the same
  // request stream, byte for byte.
  loadgen::WorkloadOptions workload;
  workload.seed = config.seed;
  workload.num_users = world_options.num_users;
  workload.phases =
      loadgen::StandardPhases(config.base_rate, config.phase_seconds);
  const loadgen::WorkloadGenerator generator(workload);
  const std::vector<loadgen::Request> trace = generator.GenerateTrace();
  const std::vector<loadgen::Request> replay = generator.GenerateTrace();
  const uint64_t trace_hash = loadgen::TraceHash(trace);
  const bool deterministic =
      trace_hash == loadgen::TraceHash(replay) && trace == replay;
  std::printf("trace: %zu requests, hash=%016llx, deterministic=%s\n",
              trace.size(), static_cast<unsigned long long>(trace_hash),
              deterministic ? "ok" : "FAIL");
  gates_ok = gates_ok && deterministic;

  // Measured run with a concurrent index rebuild: the refresher grabs the
  // driver's db mutex (ingests pause while it reads the store) and swaps
  // a new generation in while queries are in flight.
  loadgen::DriverOptions driver_options;
  driver_options.threads = config.threads;
  loadgen::LoadDriver driver(engine, db, driver_options);
  const uint64_t swaps_before = engine.stats().index_swaps;
  std::thread refresher([&] {
    std::lock_guard<std::mutex> lock(driver.db_mutex());
    StatusOr<BuildIndexReport> rebuilt = engine.BuildIndex(db);
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "refresher: BuildIndex failed: %s\n",
                   rebuilt.status().ToString().c_str());
    }
  });
  const loadgen::RunReport report = driver.Run(trace);
  refresher.join();
  const uint64_t index_swaps = engine.stats().index_swaps - swaps_before;

  std::printf("\nrun: offered=%.0f/s achieved=%.0f/s ratio=%.3f "
              "(floor %.2f) errors=%llu index_swaps=%llu\n",
              report.offered_rate, report.achieved_rate,
              report.AchievedRatio(), config.ratio_floor,
              static_cast<unsigned long long>(report.errors),
              static_cast<unsigned long long>(index_swaps));
  for (size_t p = 0; p < report.per_phase.size(); ++p) {
    for (size_t c = 0; c < loadgen::kNumOpClasses; ++c) {
      PrintClassRow(workload.phases[p].name.c_str(), c,
                    report.per_phase[p][c]);
    }
  }

  // Gate 2: correctness — every request served without a non-NotFound
  // failure, and the concurrent generation swap completed.
  const bool correctness_ok = report.errors == 0 && index_swaps >= 1;
  // Gate 3: SLO-ratio — the driver kept pace with its own schedule.
  const bool ratio_ok = report.AchievedRatio() >= config.ratio_floor;
  gates_ok = gates_ok && correctness_ok && ratio_ok;
  std::printf("\ngates: determinism=%s correctness=%s slo_ratio=%s\n",
              deterministic ? "ok" : "FAIL", correctness_ok ? "ok" : "FAIL",
              ratio_ok ? "ok" : "FAIL");

  // Saturation search (recorded, not gated): step the offered rate until
  // the latency SLO or the achieved-ratio floor breaks.
  loadgen::SloSpec slo;
  slo.p99_ms = config.smoke ? 100.0 : 50.0;
  slo.p50_ms = config.smoke ? 50.0 : 20.0;
  slo.p999_ms = config.smoke ? 500.0 : 250.0;
  slo.min_achieved_ratio = config.ratio_floor;
  loadgen::WorkloadOptions saturation_base = workload;
  const loadgen::SaturationResult saturation = SaturationSearch(
      driver, saturation_base, slo, config.saturation_start,
      config.saturation_growth, config.saturation_steps,
      config.saturation_window);
  std::printf("\nsaturation search (p99 SLO %.0fms, ratio >= %.2f):\n",
              slo.p99_ms, slo.min_achieved_ratio);
  for (const loadgen::SaturationStep& s : saturation.steps) {
    std::printf("  offered=%7.0f/s ratio=%.3f p99=%8.2fms %s%s%s\n",
                s.offered_rate, s.achieved_ratio, s.p99_ms,
                s.slo_ok ? "ok" : "broke", s.violation.empty() ? "" : ": ",
                s.violation.c_str());
  }
  std::printf("  max sustained: %.0f/s%s\n", saturation.max_sustained_rate,
              saturation.breaking_rate > 0.0 ? "" : " (never broke)");

  // Gate 4: batched model path — PredictInterestBatch must beat the
  // per-call path by the floor, at equal error rate, across a concurrent
  // rebuild, with the engine's batch telemetry accounting for the work.
  std::vector<std::string> candidates;
  for (const loadgen::Request& r : trace) {
    if (r.op == loadgen::OpClass::kPredictInterest) {
      candidates.push_back(r.text);
    }
  }
  const InferenceSection inference =
      RunInferenceComparison(engine, db, candidates, config);
  std::printf(
      "\npredict e2e:   drafts=%zu per_call=%.0f/s batched=%.0f/s "
      "speedup=%.2f (floor %.2f)\n",
      inference.drafts, inference.per_call_rows_per_s,
      inference.batched_rows_per_s, inference.speedup, config.e2e_floor);
  std::printf(
      "predict model: per_call=%.0f rows/s batched=%.0f rows/s "
      "speedup=%.2f (floor %.1f) bitwise=%s\n",
      inference.model_per_call_rows_per_s,
      inference.model_batched_rows_per_s, inference.model_speedup,
      config.predict_speedup_floor, inference.model_bitwise ? "ok" : "FAIL");
  std::printf(
      "predict telemetry: batches=%llu fill=%.1f rejections=%llu "
      "errors=%llu swaps=%llu model_gen=%llu -> %s\n",
      static_cast<unsigned long long>(inference.batches),
      inference.mean_batch_fill,
      static_cast<unsigned long long>(inference.queue_rejections),
      static_cast<unsigned long long>(inference.serving_errors),
      static_cast<unsigned long long>(inference.index_swaps),
      static_cast<unsigned long long>(inference.model_version),
      inference.ok ? "ok" : "FAIL");
  gates_ok = gates_ok && inference.ok;

  if (!WriteJson(out_path, config, trace_hash, report, workload.phases,
                 saturation, index_swaps, inference, gates_ok)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!gates_ok) {
    std::fprintf(stderr,
                 "\nFAIL: a determinism/correctness/SLO-ratio gate tripped\n");
    return 1;
  }
  return 0;
}
