// Closed-loop serving benchmark: the traffic measuring stick every later
// scaling PR is judged by.
//
// Drives a seeded open-loop request mix — tweet ingests, article upserts,
// QueryTrending, PredictInterest — through the newsdiff::Engine facade at
// configured arrival rates, with Zipf/NURand hot-key skew and the standard
// three-phase plan (steady -> flash crowd -> outlet outage), while a
// background thread rebuilds the index mid-run to exercise the concurrent
// generation swap. Reports p50/p99/p999 per op class, achieved-vs-offered
// throughput, and a saturation search (step the arrival rate until the SLO
// breaks).
//
// Gating policy (same as kernels_bench/index_bench: CI-noise-proof):
//   * determinism — regenerating the trace from the same seed must yield a
//     bit-identical request stream (TraceHash equality);
//   * correctness — zero serving errors across every phase, and the
//     mid-run index swap must have completed;
//   * SLO-ratio — achieved/offered throughput at the base rate must hold
//     the floor (a saturated driver falls behind its own open-loop
//     schedule; runner noise can only make this fail, never pass).
// Wall-clock latency percentiles and the saturation throughput are
// *recorded* in BENCH_serving.json but never gated, so a loaded CI runner
// cannot flake the job.
//
// CI runs `serving_bench --smoke` on the Release legs; the scheduled full
// run produces the checked-in BENCH_serving.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/world.h"
#include "loadgen/driver.h"
#include "loadgen/workload.h"
#include "store/database.h"

using namespace newsdiff;

namespace {

struct BenchConfig {
  bool smoke = false;
  uint64_t seed = 2021;
  double base_rate = 400.0;
  double phase_seconds = 4.0;
  double ratio_floor = 0.85;
  double saturation_start = 250.0;
  double saturation_growth = 2.0;
  size_t saturation_steps = 7;
  double saturation_window = 1.5;
  size_t threads = 8;
};

BenchConfig SmokeConfig() {
  BenchConfig config;
  config.smoke = true;
  config.base_rate = 200.0;
  config.phase_seconds = 1.5;
  // Shared two-core CI runners legitimately run slower; the smoke floor
  // only has to catch "the serving path stopped keeping pace at all".
  config.ratio_floor = 0.70;
  config.saturation_start = 150.0;
  config.saturation_steps = 3;
  config.saturation_window = 0.6;
  config.threads = 4;
  return config;
}

void PrintClassRow(const char* scope, size_t cls,
                   const loadgen::OpClassStats& s) {
  if (s.issued == 0) return;
  std::printf(
      "  %-14s %-16s issued=%6llu ok=%6llu nf=%4llu err=%3llu "
      "p50=%.2fms p99=%.2fms p999=%.2fms max=%.2fms\n",
      scope, loadgen::OpClassName(static_cast<loadgen::OpClass>(cls)),
      static_cast<unsigned long long>(s.issued),
      static_cast<unsigned long long>(s.ok),
      static_cast<unsigned long long>(s.not_found),
      static_cast<unsigned long long>(s.errors),
      s.latency.PercentileMillis(0.50), s.latency.PercentileMillis(0.99),
      s.latency.PercentileMillis(0.999),
      static_cast<double>(s.latency.max_nanos()) / 1.0e6);
}

void AppendClassJson(std::FILE* f, const loadgen::OpClassStats& s,
                     size_t cls, bool last) {
  std::fprintf(
      f,
      "      {\"op\": \"%s\", \"issued\": %llu, \"ok\": %llu, "
      "\"not_found\": %llu, \"errors\": %llu, \"p50_ms\": %.3f, "
      "\"p99_ms\": %.3f, \"p999_ms\": %.3f, \"max_ms\": %.3f, "
      "\"mean_service_ms\": %.4f}%s\n",
      loadgen::OpClassName(static_cast<loadgen::OpClass>(cls)),
      static_cast<unsigned long long>(s.issued),
      static_cast<unsigned long long>(s.ok),
      static_cast<unsigned long long>(s.not_found),
      static_cast<unsigned long long>(s.errors),
      s.latency.PercentileMillis(0.50), s.latency.PercentileMillis(0.99),
      s.latency.PercentileMillis(0.999),
      static_cast<double>(s.latency.max_nanos()) / 1.0e6,
      s.service.MeanNanos() / 1.0e6, last ? "" : ",");
}

bool WriteJson(const std::string& path, const BenchConfig& config,
               uint64_t trace_hash, const loadgen::RunReport& report,
               const std::vector<loadgen::PhaseSpec>& phases,
               const loadgen::SaturationResult& saturation,
               uint64_t index_swaps, bool gates_ok) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", config.smoke ? "smoke" : "full");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(config.seed));
  std::fprintf(f, "  \"trace_hash\": \"%016llx\",\n",
               static_cast<unsigned long long>(trace_hash));
  std::fprintf(f, "  \"threads\": %zu,\n", config.threads);
  std::fprintf(f, "  \"offered_rate\": %.1f,\n", report.offered_rate);
  std::fprintf(f, "  \"achieved_rate\": %.1f,\n", report.achieved_rate);
  std::fprintf(f, "  \"achieved_ratio\": %.4f,\n", report.AchievedRatio());
  std::fprintf(f, "  \"ratio_floor\": %.2f,\n", config.ratio_floor);
  std::fprintf(f, "  \"requests\": %llu,\n",
               static_cast<unsigned long long>(report.issued));
  std::fprintf(f, "  \"errors\": %llu,\n",
               static_cast<unsigned long long>(report.errors));
  std::fprintf(f, "  \"index_swaps_under_load\": %llu,\n",
               static_cast<unsigned long long>(index_swaps));
  std::fprintf(f, "  \"gates_ok\": %s,\n", gates_ok ? "true" : "false");
  std::fprintf(f, "  \"per_class\": [\n");
  for (size_t c = 0; c < loadgen::kNumOpClasses; ++c) {
    AppendClassJson(f, report.per_class[c], c,
                    c + 1 == loadgen::kNumOpClasses);
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"phases\": [\n");
  for (size_t p = 0; p < report.per_phase.size(); ++p) {
    uint64_t issued = 0;
    double worst_p99 = 0.0;
    for (size_t c = 0; c < loadgen::kNumOpClasses; ++c) {
      const loadgen::OpClassStats& s = report.per_phase[p][c];
      issued += s.issued;
      if (s.latency.count() > 0) {
        worst_p99 = std::max(worst_p99, s.latency.PercentileMillis(0.99));
      }
    }
    std::fprintf(f,
                 "    {\"phase\": \"%s\", \"offered_rate\": %.1f, "
                 "\"requests\": %llu, \"worst_p99_ms\": %.3f}%s\n",
                 p < phases.size() ? phases[p].name.c_str() : "?",
                 p < phases.size() ? phases[p].arrival_rate : 0.0,
                 static_cast<unsigned long long>(issued), worst_p99,
                 p + 1 < report.per_phase.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"saturation\": {\n");
  std::fprintf(f, "    \"max_sustained_rate\": %.1f,\n",
               saturation.max_sustained_rate);
  std::fprintf(f, "    \"breaking_rate\": %.1f,\n", saturation.breaking_rate);
  std::fprintf(f, "    \"steps\": [\n");
  for (size_t i = 0; i < saturation.steps.size(); ++i) {
    const loadgen::SaturationStep& s = saturation.steps[i];
    std::fprintf(f,
                 "      {\"offered_rate\": %.1f, \"achieved_ratio\": %.4f, "
                 "\"p99_ms\": %.3f, \"slo_ok\": %s%s%s}%s\n",
                 s.offered_rate, s.achieved_ratio, s.p99_ms,
                 s.slo_ok ? "true" : "false",
                 s.violation.empty() ? "" : ", \"violated\": \"",
                 s.violation.empty() ? "" : (s.violation + "\"").c_str(),
                 i + 1 < saturation.steps.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config = SmokeConfig();
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  std::printf("=== Serving load harness (%s mode) ===\n\n",
              config.smoke ? "smoke" : "full");

  // World + engine under test. The index lives in memory: this bench
  // measures the serving path, not the filesystem.
  datagen::WorldOptions world_options;
  world_options.seed = config.seed;
  if (config.smoke) {
    world_options.num_articles = 1500;
    world_options.num_tweets = 4000;
    world_options.num_users = 600;
  }
  datagen::World world = datagen::GenerateWorld(world_options);
  store::Database db;
  world.LoadInto(db);

  Engine engine{EngineOptions{}};
  StatusOr<BuildIndexReport> built = engine.BuildIndex(db);
  if (!built.ok()) {
    std::fprintf(stderr, "FAIL: initial BuildIndex: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::printf("world: %zu articles, %zu tweets; index: %zu news docs, "
              "%zu tweet docs\n\n",
              world.articles.size(), world.tweets.size(), built->news_docs,
              built->tweet_docs);

  bool gates_ok = true;

  // Gate 1: seed-determinism. The same options must synthesize the same
  // request stream, byte for byte.
  loadgen::WorkloadOptions workload;
  workload.seed = config.seed;
  workload.num_users = world_options.num_users;
  workload.phases =
      loadgen::StandardPhases(config.base_rate, config.phase_seconds);
  const loadgen::WorkloadGenerator generator(workload);
  const std::vector<loadgen::Request> trace = generator.GenerateTrace();
  const std::vector<loadgen::Request> replay = generator.GenerateTrace();
  const uint64_t trace_hash = loadgen::TraceHash(trace);
  const bool deterministic =
      trace_hash == loadgen::TraceHash(replay) && trace == replay;
  std::printf("trace: %zu requests, hash=%016llx, deterministic=%s\n",
              trace.size(), static_cast<unsigned long long>(trace_hash),
              deterministic ? "ok" : "FAIL");
  gates_ok = gates_ok && deterministic;

  // Measured run with a concurrent index rebuild: the refresher grabs the
  // driver's db mutex (ingests pause while it reads the store) and swaps
  // a new generation in while queries are in flight.
  loadgen::DriverOptions driver_options;
  driver_options.threads = config.threads;
  loadgen::LoadDriver driver(engine, db, driver_options);
  const uint64_t swaps_before = engine.stats().index_swaps;
  std::thread refresher([&] {
    std::lock_guard<std::mutex> lock(driver.db_mutex());
    StatusOr<BuildIndexReport> rebuilt = engine.BuildIndex(db);
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "refresher: BuildIndex failed: %s\n",
                   rebuilt.status().ToString().c_str());
    }
  });
  const loadgen::RunReport report = driver.Run(trace);
  refresher.join();
  const uint64_t index_swaps = engine.stats().index_swaps - swaps_before;

  std::printf("\nrun: offered=%.0f/s achieved=%.0f/s ratio=%.3f "
              "(floor %.2f) errors=%llu index_swaps=%llu\n",
              report.offered_rate, report.achieved_rate,
              report.AchievedRatio(), config.ratio_floor,
              static_cast<unsigned long long>(report.errors),
              static_cast<unsigned long long>(index_swaps));
  for (size_t p = 0; p < report.per_phase.size(); ++p) {
    for (size_t c = 0; c < loadgen::kNumOpClasses; ++c) {
      PrintClassRow(workload.phases[p].name.c_str(), c,
                    report.per_phase[p][c]);
    }
  }

  // Gate 2: correctness — every request served without a non-NotFound
  // failure, and the concurrent generation swap completed.
  const bool correctness_ok = report.errors == 0 && index_swaps >= 1;
  // Gate 3: SLO-ratio — the driver kept pace with its own schedule.
  const bool ratio_ok = report.AchievedRatio() >= config.ratio_floor;
  gates_ok = gates_ok && correctness_ok && ratio_ok;
  std::printf("\ngates: determinism=%s correctness=%s slo_ratio=%s\n",
              deterministic ? "ok" : "FAIL", correctness_ok ? "ok" : "FAIL",
              ratio_ok ? "ok" : "FAIL");

  // Saturation search (recorded, not gated): step the offered rate until
  // the latency SLO or the achieved-ratio floor breaks.
  loadgen::SloSpec slo;
  slo.p99_ms = config.smoke ? 100.0 : 50.0;
  slo.p50_ms = config.smoke ? 50.0 : 20.0;
  slo.p999_ms = config.smoke ? 500.0 : 250.0;
  slo.min_achieved_ratio = config.ratio_floor;
  loadgen::WorkloadOptions saturation_base = workload;
  const loadgen::SaturationResult saturation = SaturationSearch(
      driver, saturation_base, slo, config.saturation_start,
      config.saturation_growth, config.saturation_steps,
      config.saturation_window);
  std::printf("\nsaturation search (p99 SLO %.0fms, ratio >= %.2f):\n",
              slo.p99_ms, slo.min_achieved_ratio);
  for (const loadgen::SaturationStep& s : saturation.steps) {
    std::printf("  offered=%7.0f/s ratio=%.3f p99=%8.2fms %s%s%s\n",
                s.offered_rate, s.achieved_ratio, s.p99_ms,
                s.slo_ok ? "ok" : "broke", s.violation.empty() ? "" : ": ",
                s.violation.c_str());
  }
  std::printf("  max sustained: %.0f/s%s\n", saturation.max_sustained_rate,
              saturation.breaking_rate > 0.0 ? "" : " (never broke)");

  if (!WriteJson(out_path, config, trace_hash, report, workload.phases,
                 saturation, index_swaps, gates_ok)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!gates_ok) {
    std::fprintf(stderr,
                 "\nFAIL: a determinism/correctness/SLO-ratio gate tripped\n");
    return 1;
  }
  return 0;
}
