// Reproduces Table 6 (§5.5): the correlation between news topics, news
// events, and Twitter events, plus the paper's three headline findings:
//   * trending news topics = <topic, news event> pairs with sim > 0.7
//   * <trending, Twitter event> pairs need sim > 0.65 and a start date
//     within 5 days of the news event's start
//   * the reverse correlation yields the SAME pair set, and every trending
//     topic matches at least one Twitter event.
#include <cstdio>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"

using namespace newsdiff;

int main() {
  std::printf("=== Table 6: Correlation between topics and events ===\n\n");
  std::printf("Paper reference: 83 trending news topics (sim > 0.7), 421\n"
              "<trending, Twitter event> pairs (sim > 0.65, 5-day window);\n"
              "NT-NE similarities 0.73-0.90, NE-TE similarities 0.69-0.89.\n\n");

  bench::BenchContext ctx;
  const core::PipelineResult& r = ctx.pipeline_result();

  std::printf("Measured: %zu topics, %zu news events, %zu twitter events ->\n"
              "%zu trending news topics, %zu correlation pairs "
              "(%.2fs trending + %.2fs correlation)\n\n",
              r.topics.size(), r.news_events.size(), r.twitter_events.size(),
              r.trending.size(), r.correlations.size(), r.trending_seconds,
              r.correlation_seconds);

  // Best Twitter match per trending topic for the table.
  TablePrinter table({"#NT", "#NE", "#TE", "Sim NT NE", "Sim NE TE"});
  size_t shown = 0;
  for (size_t ti = 0; ti < r.trending.size() && shown < 10; ++ti) {
    const core::TrendingNewsTopic& t = r.trending[ti];
    double best = -1.0;
    size_t best_te = 0;
    for (const core::EventCorrelation& p : r.correlations) {
      if (p.trending == ti && p.similarity > best) {
        best = p.similarity;
        best_te = p.twitter_event;
      }
    }
    if (best < 0.0) continue;
    table.AddRow({std::to_string(t.topic_id + 1),
                  std::to_string(t.news_event + 1),
                  std::to_string(best_te + 1), FormatDouble(t.similarity, 2),
                  FormatDouble(best, 2)});
    ++shown;
  }
  table.Print();

  // Finding 1: every trending topic matches at least one Twitter event.
  size_t trending_with_match = 0;
  for (size_t ti = 0; ti < r.trending.size(); ++ti) {
    for (const core::EventCorrelation& p : r.correlations) {
      if (p.trending == ti) {
        ++trending_with_match;
        break;
      }
    }
  }
  std::printf("\nQ1 check: %zu/%zu trending news topics correlate with at "
              "least one Twitter event (paper: all).\n",
              trending_with_match, r.trending.size());

  // Finding 2: the reverse correlation yields the same pair set.
  std::vector<core::EventCorrelation> reverse =
      core::CorrelateTwitterWithTrending(r.trending, r.news_events,
                                         r.twitter_events, ctx.store(),
                                         core::CorrelationOptions{});
  bool same = reverse.size() == r.correlations.size();
  if (same) {
    for (size_t i = 0; i < reverse.size(); ++i) {
      if (reverse[i].trending != r.correlations[i].trending ||
          reverse[i].twitter_event != r.correlations[i].twitter_event) {
        same = false;
        break;
      }
    }
  }
  std::printf("Q2 check: reverse correlation (TE -> trending) pair set is "
              "%s (paper: identical).\n", same ? "IDENTICAL" : "DIFFERENT");
  return same ? 0 : 1;
}
