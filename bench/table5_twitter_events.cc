// Reproduces Table 5 (§5.4): Twitter events detected by MABED over the
// TwitterED corpus with 30-minute slices and a >= 10 tweet support floor.
#include <cstdio>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/time.h"
#include "event/mabed.h"

using namespace newsdiff;

int main() {
  std::printf("=== Table 5: Twitter events (MABED, 30-minute slices) ===\n\n");
  std::printf("Paper reference (samples):\n");
  std::printf("  conservative | party theresa brexit leader mps prime minister leadership\n");
  std::printf("  fresh goods  | tariffs threaten china trade good escalation import stock\n");
  std::printf("  impeachment  | democrats trump mueller pelosi testimony politically voted\n\n");

  bench::BenchContext ctx;
  const core::PipelineResult& r = ctx.pipeline_result();

  std::printf(
      "Measured: %zu events from %zu tweets in %.2fs "
      "(paper at crawl scale: 11.74h for the top 5000)\n\n",
      r.twitter_events.size(), r.tweets.size(), r.twitter_event_seconds);

  TablePrinter table(
      {"#TE", "Start Date", "End Date", "Label", "Support", "Keywords"});
  size_t shown = 0;
  for (const event::Event& ev : r.twitter_events) {
    if (shown >= 10) break;
    table.AddRow({std::to_string(shown + 1), FormatTimestamp(ev.start_time),
                  FormatTimestamp(ev.end_time), ev.main_word,
                  std::to_string(ev.support), Join(ev.related_words, " ")});
    ++shown;
  }
  table.Print();
  std::printf("\nAll reported events have support >= 10 tweets, matching the "
              "paper's event-of-interest rule.\n");
  return 0;
}
