// Kernel regression harness for the blocked GEMM layer (la/kernels.cc).
//
// Reports GFLOP/s for each dense product and the CSR·dense product under
// three variants — naive, blocked single-thread, blocked + 4 threads — and
// wall-clock for an end-to-end cross-validation run at both parallelism
// grains. Alongside the numbers it enforces the kernel layer's contracts
// and exits nonzero on any violation:
//   * blocked results are EXACTLY equal run-to-run and across thread
//     counts (the determinism contract of la/kernels.h);
//   * blocked agrees with naive within 1e-9 relative error per element;
//   * the blocked CSR paths are bitwise equal to naive;
//   * fold-grain CV reproduces serial CV bitwise.
// CI runs `kernels_bench --smoke` on the Release legs; full mode produces
// the checked-in BENCH_kernels.json (see --out).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/cross_validation.h"
#include "la/kernels.h"
#include "la/matrix.h"
#include "la/sparse.h"

using namespace newsdiff;

namespace {

constexpr double kRelTolerance = 1e-9;

la::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  la::Matrix m(rows, cols);
  Rng rng(seed);
  for (double& v : m.data()) v = rng.Uniform(-1.0, 1.0);
  return m;
}

la::CsrMatrix RandomCsr(size_t rows, size_t cols, double density,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  const auto nnz = static_cast<size_t>(
      density * static_cast<double>(rows) * static_cast<double>(cols));
  t.reserve(nnz);
  for (size_t i = 0; i < nnz; ++i) {
    t.push_back({static_cast<uint32_t>(rng.NextBelow(rows)),
                 static_cast<uint32_t>(rng.NextBelow(cols)),
                 rng.NextDouble() + 0.1});
  }
  return la::CsrMatrix::FromTriplets(rows, cols, t);
}

bool BitwiseEqual(const la::Matrix& a, const la::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         a.data() == b.data();
}

/// Worst absolute error normalized by the reference's largest magnitude.
/// The per-element relative metric below is meaningless for a quantized
/// path: quantization error is absolute, so elements that happen to land
/// near zero show unbounded relative error while the answer is fine.
double MaxScaledError(const la::Matrix& got, const la::Matrix& want) {
  double worst = 0.0;
  double magnitude = 1e-12;
  for (size_t i = 0; i < want.size(); ++i) {
    magnitude = std::max(magnitude, std::abs(want.data()[i]));
    worst = std::max(worst, std::abs(got.data()[i] - want.data()[i]));
  }
  return worst / magnitude;
}

double MaxRelError(const la::Matrix& got, const la::Matrix& want) {
  double worst = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    double denom = std::max(std::abs(want.data()[i]), 1e-12);
    worst = std::max(worst, std::abs(got.data()[i] - want.data()[i]) / denom);
  }
  return worst;
}

Parallelism Config(KernelKind kind, size_t threads) {
  Parallelism par;
  par.kernels.kind = kind;
  par.threads = threads;
  return par;
}

/// Best-of-`reps` wall time for fn() (the product is recomputed each rep).
double BestSeconds(size_t reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    double s = bench::TimedSeconds(fn);
    if (r == 0 || s < best) best = s;
  }
  return best;
}

struct KernelRow {
  std::string kernel;
  std::string variant;
  double seconds = 0.0;
  double gflops = 0.0;
  double speedup_vs_naive = 0.0;
};

struct CvRow {
  std::string variant;
  double seconds = 0.0;
  bool bitwise_equal_serial = true;
};

struct InferenceRow {
  std::string shape;    // "n x k x m"
  std::string variant;  // blocked / prepacked / int8
  double seconds = 0.0;
  double gflops = 0.0;
  double speedup_vs_blocked = 0.0;
};

struct Report {
  std::string mode;
  std::vector<KernelRow> kernels;
  std::vector<CvRow> cv;
  std::vector<InferenceRow> inference;
  double gemm_blocked_speedup_1t = 0.0;
  double max_rel_error_vs_naive = 0.0;
  double fold_vs_intra_speedup = 0.0;
  double int8_speedup_vs_blocked = 0.0;
  double int8_max_rel_error = 0.0;
  bool gates_ok = true;
};

bool WriteJson(const Report& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", r.mode.c_str());
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", HardwareThreads());
  std::fprintf(f, "  \"rel_tolerance\": %.1e,\n", kRelTolerance);
  std::fprintf(f, "  \"max_rel_error_vs_naive\": %.3e,\n",
               r.max_rel_error_vs_naive);
  std::fprintf(f, "  \"gemm_blocked_speedup_1t\": %.2f,\n",
               r.gemm_blocked_speedup_1t);
  std::fprintf(f, "  \"fold_vs_intra_speedup\": %.2f,\n",
               r.fold_vs_intra_speedup);
  std::fprintf(f, "  \"int8_speedup_vs_blocked\": %.2f,\n",
               r.int8_speedup_vs_blocked);
  std::fprintf(f, "  \"int8_max_rel_error\": %.3e,\n", r.int8_max_rel_error);
  std::fprintf(f, "  \"gates_ok\": %s,\n", r.gates_ok ? "true" : "false");
  std::fprintf(f, "  \"inference\": [\n");
  for (size_t i = 0; i < r.inference.size(); ++i) {
    const InferenceRow& k = r.inference[i];
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"variant\": \"%s\", "
                 "\"seconds\": %.6f, \"gflops\": %.3f, "
                 "\"speedup_vs_blocked\": %.2f}%s\n",
                 k.shape.c_str(), k.variant.c_str(), k.seconds, k.gflops,
                 k.speedup_vs_blocked, i + 1 < r.inference.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < r.kernels.size(); ++i) {
    const KernelRow& k = r.kernels[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"variant\": \"%s\", "
                 "\"seconds\": %.6f, \"gflops\": %.3f, "
                 "\"speedup_vs_naive\": %.2f}%s\n",
                 k.kernel.c_str(), k.variant.c_str(), k.seconds, k.gflops,
                 k.speedup_vs_naive, i + 1 < r.kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"cross_validation\": [\n");
  for (size_t i = 0; i < r.cv.size(); ++i) {
    const CvRow& c = r.cv[i];
    std::fprintf(f,
                 "    {\"variant\": \"%s\", \"seconds\": %.4f, "
                 "\"bitwise_equal_serial\": %s}%s\n",
                 c.variant.c_str(), c.seconds,
                 c.bitwise_equal_serial ? "true" : "false",
                 i + 1 < r.cv.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  Report report;
  report.mode = smoke ? "smoke" : "full";
  std::printf("=== Kernel regression harness (%s mode) ===\n",
              report.mode.c_str());
  std::printf("hardware_threads=%zu tolerance=%.0e\n\n", HardwareThreads(),
              kRelTolerance);

  const size_t dim = smoke ? 192 : 512;
  const size_t reps = smoke ? 2 : 3;
  bool gates_ok = true;

  // --- Dense kernels: naive vs blocked vs blocked+4t, plus the gates. ---
  struct DenseCase {
    const char* name;
    void (*into)(const la::Matrix&, const la::Matrix&, la::Matrix*,
                 const Parallelism&);
  };
  const DenseCase dense_cases[] = {
      {"matmul", la::MatMulInto},
      {"matmul_ta", la::MatMulTransAInto},
      {"matmul_tb", la::MatMulTransBInto},
  };
  la::Matrix a = RandomMatrix(dim, dim, 1);
  la::Matrix b = RandomMatrix(dim, dim, 2);
  const double dense_flops = 2.0 * static_cast<double>(dim) *
                             static_cast<double>(dim) *
                             static_cast<double>(dim);

  for (const DenseCase& dc : dense_cases) {
    la::Matrix naive_out, blocked_out, scratch;
    double naive_s = BestSeconds(reps, [&] {
      dc.into(a, b, &naive_out, Config(KernelKind::kNaive, 1));
    });
    double blocked_s = BestSeconds(reps, [&] {
      dc.into(a, b, &blocked_out, Config(KernelKind::kBlocked, 1));
    });
    double blocked4_s = BestSeconds(reps, [&] {
      dc.into(a, b, &scratch, Config(KernelKind::kBlocked, 4));
    });

    // Gate: exact repeat and exact thread/shard invariance.
    la::Matrix repeat;
    dc.into(a, b, &repeat, Config(KernelKind::kBlocked, 1));
    bool repeat_ok = BitwiseEqual(repeat, blocked_out);
    bool threads_ok = true;
    for (size_t threads : {2ul, 4ul}) {
      la::Matrix t_out;
      dc.into(a, b, &t_out, Config(KernelKind::kBlocked, threads));
      threads_ok = threads_ok && BitwiseEqual(t_out, blocked_out);
    }
    // Gate: blocked within tolerance of naive.
    double rel = MaxRelError(blocked_out, naive_out);
    report.max_rel_error_vs_naive =
        std::max(report.max_rel_error_vs_naive, rel);
    bool rel_ok = rel <= kRelTolerance;
    gates_ok = gates_ok && repeat_ok && threads_ok && rel_ok;

    auto add_row = [&](const char* variant, double seconds) {
      KernelRow row;
      row.kernel = dc.name;
      row.variant = variant;
      row.seconds = seconds;
      row.gflops = seconds > 0.0 ? dense_flops / seconds / 1e9 : 0.0;
      row.speedup_vs_naive = seconds > 0.0 ? naive_s / seconds : 0.0;
      report.kernels.push_back(row);
      std::printf(
          "kernel=%s variant=%s seconds=%.4f gflops=%.2f speedup=%.2f\n",
          row.kernel.c_str(), row.variant.c_str(), row.seconds, row.gflops,
          row.speedup_vs_naive);
    };
    add_row("naive", naive_s);
    add_row("blocked", blocked_s);
    add_row("blocked_4t", blocked4_s);
    std::printf(
        "kernel=%s repeat_exact=%s thread_invariant=%s max_rel=%.2e (%s)\n",
        dc.name, repeat_ok ? "ok" : "FAIL", threads_ok ? "ok" : "FAIL", rel,
        rel_ok ? "ok" : "FAIL");
    if (std::strcmp(dc.name, "matmul") == 0) {
      report.gemm_blocked_speedup_1t =
          blocked_s > 0.0 ? naive_s / blocked_s : 0.0;
    }
  }

  // --- CSR·dense: the blocked paths must be bitwise equal to naive. ---
  {
    const size_t rows = smoke ? 1500 : 6000;
    const size_t cols = smoke ? 500 : 2000;
    const size_t width = 64;
    la::CsrMatrix csr = RandomCsr(rows, cols, 0.02, 3);
    la::Matrix d = RandomMatrix(cols, width, 4);
    la::Matrix dt = RandomMatrix(width, cols, 5);
    const double csr_flops = 2.0 * static_cast<double>(csr.nnz()) *
                             static_cast<double>(width);

    la::Matrix naive_out, blocked_out;
    double naive_s = BestSeconds(reps, [&] {
      naive_out = csr.MultiplyDense(d, Config(KernelKind::kNaive, 1));
    });
    double blocked_s = BestSeconds(reps, [&] {
      blocked_out =
          csr.MultiplyDense(d, Config(KernelKind::kBlocked, 1));
    });
    double blocked4_s = BestSeconds(reps, [&] {
      csr.MultiplyDense(d, Config(KernelKind::kBlocked, 4));
    });
    bool csr_exact = BitwiseEqual(naive_out, blocked_out);
    la::Matrix tr_naive = csr.MultiplyDenseTransposed(
        dt, Config(KernelKind::kNaive, 1));
    la::Matrix tr_blocked = csr.MultiplyDenseTransposed(
        dt, Config(KernelKind::kBlocked, 1));
    bool csr_tr_exact = BitwiseEqual(tr_naive, tr_blocked);
    gates_ok = gates_ok && csr_exact && csr_tr_exact;

    auto add_row = [&](const char* variant, double seconds) {
      KernelRow row;
      row.kernel = "csr_dense";
      row.variant = variant;
      row.seconds = seconds;
      row.gflops = seconds > 0.0 ? csr_flops / seconds / 1e9 : 0.0;
      row.speedup_vs_naive = seconds > 0.0 ? naive_s / seconds : 0.0;
      report.kernels.push_back(row);
      std::printf(
          "kernel=%s variant=%s seconds=%.4f gflops=%.2f speedup=%.2f\n",
          row.kernel.c_str(), row.variant.c_str(), row.seconds, row.gflops,
          row.speedup_vs_naive);
    };
    add_row("naive", naive_s);
    add_row("blocked", blocked_s);
    add_row("blocked_4t", blocked4_s);
    std::printf("kernel=csr_dense bitwise_vs_naive=%s transposed=%s\n",
                csr_exact ? "ok" : "FAIL", csr_tr_exact ? "ok" : "FAIL");
  }

  // --- Inference shapes: per-call blocked vs prepacked vs int8 (PR 10).
  // Gates: the prepacked f32 path is bitwise equal to the per-call blocked
  // path; both are bitwise invariant to batch composition (row i of a
  // batch-of-N equals the same row as a batch-of-1, the contract the
  // coalescing server depends on); the int8 path is >= kInt8SpeedupFloor
  // faster than per-call blocked on the inference shape and stays within
  // kInt8ErrorBudget relative of the f32 answer.
  {
    const double int8_speedup_floor = smoke ? 1.2 : 2.0;
    const double int8_error_budget = 0.05;
    const size_t batch = 256, depth = 256, width = 64;
    const size_t inf_reps = smoke ? 200 : 1000;
    char shape_buf[64];
    std::snprintf(shape_buf, sizeof(shape_buf), "%zux%zux%zu", batch, depth,
                  width);
    la::Matrix ia = RandomMatrix(batch, depth, 21);
    la::Matrix ib = RandomMatrix(depth, width, 22);
    const Parallelism par = Config(KernelKind::kBlocked, 1);
    const double inf_flops = 2.0 * static_cast<double>(batch) *
                             static_cast<double>(depth) *
                             static_cast<double>(width);

    la::PackedB packed = la::PackMatrixB(ib, par.kernels);
    la::QuantizedB quantized = la::QuantizeMatrixB(ib);

    la::Matrix blocked_out, prepacked_out, int8_out;
    double blocked_s = BestSeconds(reps, [&] {
      for (size_t r = 0; r < inf_reps; ++r) {
        la::MatMulInto(ia, ib, &blocked_out, par);
      }
    }) / static_cast<double>(inf_reps);
    double prepacked_s = BestSeconds(reps, [&] {
      for (size_t r = 0; r < inf_reps; ++r) {
        la::internal::BlockedMatMulPrepacked(ia, packed, &prepacked_out, par);
      }
    }) / static_cast<double>(inf_reps);
    double int8_s = BestSeconds(reps, [&] {
      for (size_t r = 0; r < inf_reps; ++r) {
        la::internal::Int8MatMulPrepacked(ia, quantized, &int8_out, par);
      }
    }) / static_cast<double>(inf_reps);

    const bool prepacked_bitwise = BitwiseEqual(prepacked_out, blocked_out);
    const double int8_rel = MaxScaledError(int8_out, blocked_out);
    report.int8_max_rel_error = int8_rel;
    const bool int8_accurate = int8_rel <= int8_error_budget;
    report.int8_speedup_vs_blocked =
        int8_s > 0.0 ? blocked_s / int8_s : 0.0;
    const bool int8_fast = report.int8_speedup_vs_blocked >= int8_speedup_floor;

    // Batch-composition invariance, f32 prepacked AND int8: every row of
    // the batch product must be bitwise equal to the one-row product.
    bool batch_invariant = true;
    la::Matrix one(1, depth), single;
    for (size_t r = 0; r < batch && batch_invariant; r += 17) {
      for (size_t c = 0; c < depth; ++c) one.RowPtr(0)[c] = ia.RowPtr(r)[c];
      la::internal::BlockedMatMulPrepacked(one, packed, &single, par);
      for (size_t c = 0; c < width; ++c) {
        if (single.RowPtr(0)[c] != prepacked_out.RowPtr(r)[c]) {
          batch_invariant = false;
        }
      }
      la::internal::Int8MatMulPrepacked(one, quantized, &single, par);
      for (size_t c = 0; c < width; ++c) {
        if (single.RowPtr(0)[c] != int8_out.RowPtr(r)[c]) {
          batch_invariant = false;
        }
      }
    }
    gates_ok = gates_ok && prepacked_bitwise && batch_invariant &&
               int8_accurate && int8_fast;

    auto add_row = [&](const char* variant, double seconds) {
      InferenceRow row;
      row.shape = shape_buf;
      row.variant = variant;
      row.seconds = seconds;
      row.gflops = seconds > 0.0 ? inf_flops / seconds / 1e9 : 0.0;
      row.speedup_vs_blocked = seconds > 0.0 ? blocked_s / seconds : 0.0;
      report.inference.push_back(row);
      std::printf(
          "inference shape=%s variant=%s seconds=%.6f gflops=%.2f "
          "speedup=%.2f\n",
          row.shape.c_str(), row.variant.c_str(), row.seconds, row.gflops,
          row.speedup_vs_blocked);
    };
    add_row("blocked", blocked_s);
    add_row("prepacked", prepacked_s);
    add_row("int8", int8_s);
    std::printf(
        "inference prepacked_bitwise=%s batch_invariant=%s "
        "int8_rel=%.2e (%s) int8_speedup=%.2f (floor %.1f: %s)\n",
        prepacked_bitwise ? "ok" : "FAIL", batch_invariant ? "ok" : "FAIL",
        int8_rel, int8_accurate ? "ok" : "FAIL",
        report.int8_speedup_vs_blocked, int8_speedup_floor,
        int8_fast ? "ok" : "FAIL");
  }

  // --- End-to-end cross-validation at both grains. Shards pinned at 16 in
  // every variant so the bitwise gate compares identical configurations. ---
  {
    Rng rng(11);
    const size_t n = smoke ? 150 : 600;
    const size_t width = 32;
    la::Matrix x(n, width);
    std::vector<int> y(n);
    for (size_t i = 0; i < n; ++i) {
      size_t c = i % 3;
      double* row = x.RowPtr(i);
      for (size_t dcol = 0; dcol < width; ++dcol) {
        row[dcol] = rng.Gaussian((dcol % 3 == c) ? 2.0 : 0.0, 0.8);
      }
      y[i] = static_cast<int>(c);
    }
    core::PredictorOptions base;
    base.max_epochs = smoke ? 6 : 20;
    base.batch_size = 32;
    base.early_stopping.enabled = false;
    base.max_restarts = 0;
    base.parallelism.shards = 16;
    base.fold_parallelism.shards = 16;

    auto run_cv = [&](const char* name, size_t intra_threads,
                      size_t fold_threads,
                      const std::vector<double>* baseline) {
      core::PredictorOptions opts = base;
      opts.parallelism.threads = intra_threads;
      opts.fold_parallelism.threads = fold_threads;
      CvRow row;
      row.variant = name;
      std::vector<double> accs;
      row.seconds = bench::TimedSeconds([&] {
        auto cv =
            core::CrossValidate(x, y, core::NetworkKind::kMlp1, opts, 4);
        if (cv.ok()) accs = cv->fold_accuracies;
      });
      row.bitwise_equal_serial =
          baseline == nullptr ? !accs.empty() : accs == *baseline;
      report.cv.push_back(row);
      std::printf("cv variant=%s seconds=%.3f bitwise=%s\n", name,
                  row.seconds, row.bitwise_equal_serial ? "ok" : "FAIL");
      return accs;
    };
    std::vector<double> serial =
        run_cv("serial", 1, 1, nullptr);
    run_cv("intra_op_4t", 4, 1, &serial);
    run_cv("fold_tasks_4t", 1, 4, &serial);
    for (const CvRow& c : report.cv) {
      gates_ok = gates_ok && c.bitwise_equal_serial;
    }
    report.fold_vs_intra_speedup =
        report.cv[2].seconds > 0.0
            ? report.cv[1].seconds / report.cv[2].seconds
            : 0.0;
  }

  report.gates_ok = gates_ok;
  std::printf("\ngemm_blocked_speedup_1t=%.2f fold_vs_intra=%.2f gates=%s\n",
              report.gemm_blocked_speedup_1t, report.fold_vs_intra_speedup,
              gates_ok ? "ok" : "FAIL");
  if (!WriteJson(report, out_path)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!gates_ok) {
    std::fprintf(stderr,
                 "\nFAIL: a kernel determinism or tolerance gate tripped\n");
    return 1;
  }
  return 0;
}
