// Serving-layer benchmark: block-compressed inverted index (index/index.h)
// vs the all-pairs brute-force scan it must exactly reproduce.
//
// Builds the news and tweets indexes over a deterministic synthetic world,
// replays a fixed query mix through both InvertedIndex::TopK (MaxScore
// pruning) and BruteForceTopK (reference scan), and reports wall-clock,
// speedup, and pruning counters. Alongside the numbers it enforces the
// index layer's contracts and exits nonzero on any violation:
//   * recall@k == 1.0 — every query's top-k is IDENTICAL to the
//     brute-force ranking: same docs, same order, bitwise-equal scores
//     (the exactness contract of index/index.h);
//   * full mode: the index answers the mix >= 10x faster than the scan
//     (smoke uses a 2x floor so shared CI runners do not flake).
// CI runs `index_bench --smoke` on the Release legs; full mode produces
// the checked-in BENCH_index.json (see --out).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "core/collection.h"
#include "core/preprocess.h"
#include "corpus/corpus.h"
#include "datagen/world.h"
#include "index/index.h"
#include "store/database.h"

using namespace newsdiff;

namespace {

struct CorpusRow {
  std::string name;
  size_t docs = 0;
  size_t terms = 0;
  size_t queries = 0;
  double brute_seconds = 0.0;
  double index_seconds = 0.0;
  double speedup = 0.0;
  double recall_at_k = 0.0;
  // Work actually done by the pruned path, as a fraction of the corpus:
  // docs_scored / (queries * docs). The scan's fraction is 1.0 by
  // definition; this is the "why is it faster" number.
  double scored_fraction = 0.0;
  size_t blocks_decoded = 0;
};

/// A fixed, deterministic query mix: mostly terms sampled from real
/// documents (guaranteed matches, realistic df skew), plus a sprinkle of
/// out-of-vocabulary terms to exercise the unknown-term path.
std::vector<std::vector<std::string>> MakeQueries(
    const corpus::Corpus& corpus, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::string>> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    const corpus::Document& doc =
        corpus.doc(rng.NextBelow(corpus.size()));
    const size_t num_terms = 2 + rng.NextBelow(3);  // 2..4 terms
    std::vector<std::string> terms;
    for (size_t t = 0; t < num_terms && !doc.tokens.empty(); ++t) {
      uint32_t id = doc.tokens[rng.NextBelow(doc.tokens.size())];
      terms.push_back(corpus.vocabulary().Term(id));
    }
    if (q % 7 == 0) terms.push_back("zz_never_indexed_token");
    queries.push_back(std::move(terms));
  }
  return queries;
}

bool SameRanking(const std::vector<index::SearchResult>& got,
                 const std::vector<index::SearchResult>& want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].doc != want[i].doc || got[i].score != want[i].score) {
      return false;
    }
  }
  return true;
}

CorpusRow BenchCorpus(const std::string& name, const corpus::Corpus& corpus,
                      const index::IndexOptions& options, size_t num_queries,
                      size_t k, uint64_t seed, bool* gates_ok,
                      double speedup_floor) {
  CorpusRow row;
  row.name = name;
  row.docs = corpus.size();
  row.terms = corpus.vocabulary().size();

  StatusOr<index::InvertedIndex> built =
      index::InvertedIndex::Build(corpus, options);
  if (!built.ok()) {
    std::fprintf(stderr, "FAIL: build %s: %s\n", name.c_str(),
                 built.status().ToString().c_str());
    *gates_ok = false;
    return row;
  }
  const index::InvertedIndex& ix = *built;
  const std::vector<std::vector<std::string>> queries =
      MakeQueries(corpus, num_queries, seed);
  row.queries = queries.size();

  // Correctness sweep first (untimed): every ranking must be identical.
  size_t exact = 0;
  size_t docs_scored = 0;
  for (const std::vector<std::string>& q : queries) {
    index::QueryStats stats;
    std::vector<index::SearchResult> fast = ix.TopK(q, k, &stats);
    std::vector<index::SearchResult> reference =
        index::BruteForceTopK(corpus, options, q, k);
    if (SameRanking(fast, reference)) ++exact;
    docs_scored += stats.docs_scored;
    row.blocks_decoded += stats.blocks_decoded;
  }
  row.recall_at_k =
      queries.empty() ? 1.0
                      : static_cast<double>(exact) /
                            static_cast<double>(queries.size());
  row.scored_fraction =
      static_cast<double>(docs_scored) /
      (static_cast<double>(queries.size()) * static_cast<double>(row.docs));

  // Timed replay of the whole mix through each path.
  row.index_seconds = bench::TimedSeconds([&] {
    for (const std::vector<std::string>& q : queries) ix.TopK(q, k);
  });
  row.brute_seconds = bench::TimedSeconds([&] {
    for (const std::vector<std::string>& q : queries) {
      index::BruteForceTopK(corpus, options, q, k);
    }
  });
  row.speedup =
      row.index_seconds > 0.0 ? row.brute_seconds / row.index_seconds : 0.0;

  const bool recall_ok = row.recall_at_k == 1.0;
  const bool speedup_ok = row.speedup >= speedup_floor;
  *gates_ok = *gates_ok && recall_ok && speedup_ok;
  std::printf(
      "corpus=%s docs=%zu terms=%zu queries=%zu k=%zu\n"
      "  brute=%.4fs index=%.4fs speedup=%.1fx (floor %.0fx, %s)\n"
      "  recall@k=%.3f (%s) scored_fraction=%.4f blocks=%zu\n",
      name.c_str(), row.docs, row.terms, row.queries, k, row.brute_seconds,
      row.index_seconds, row.speedup, speedup_floor,
      speedup_ok ? "ok" : "FAIL", row.recall_at_k,
      recall_ok ? "ok" : "FAIL", row.scored_fraction, row.blocks_decoded);
  return row;
}

bool WriteJson(const std::vector<CorpusRow>& rows, const std::string& mode,
               size_t k, double speedup_floor, bool gates_ok,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", mode.c_str());
  std::fprintf(f, "  \"k\": %zu,\n", k);
  std::fprintf(f, "  \"speedup_floor\": %.1f,\n", speedup_floor);
  std::fprintf(f, "  \"gates_ok\": %s,\n", gates_ok ? "true" : "false");
  std::fprintf(f, "  \"corpora\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const CorpusRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"corpus\": \"%s\", \"docs\": %zu, \"terms\": %zu, "
        "\"queries\": %zu, \"brute_seconds\": %.6f, "
        "\"index_seconds\": %.6f, \"speedup\": %.2f, "
        "\"recall_at_k\": %.4f, \"scored_fraction\": %.4f, "
        "\"blocks_decoded\": %zu}%s\n",
        r.name.c_str(), r.docs, r.terms, r.queries, r.brute_seconds,
        r.index_seconds, r.speedup, r.recall_at_k, r.scored_fraction,
        r.blocks_decoded, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_index.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const std::string mode = smoke ? "smoke" : "full";
  // The 10x acceptance gate runs on the full corpus; smoke keeps a 2x
  // floor so loaded CI runners cannot flake the leg while still catching
  // a pruning regression that makes the index no faster than the scan.
  const double speedup_floor = smoke ? 2.0 : 10.0;
  const size_t k = 10;
  const size_t num_queries = smoke ? 50 : 200;

  std::printf("=== Index vs brute-force serving bench (%s mode) ===\n\n",
              mode.c_str());

  datagen::WorldOptions world_options;
  world_options.seed = 2021;
  if (smoke) {
    world_options.num_articles = 1500;
    world_options.num_tweets = 4000;
    world_options.num_users = 600;
  }
  datagen::World world = datagen::GenerateWorld(world_options);
  store::Database db;
  world.LoadInto(db);

  StatusOr<std::vector<core::NewsRecord>> news = core::LoadNews(db);
  StatusOr<std::vector<core::TweetRecord>> tweets = core::LoadTweets(db);
  if (!news.ok() || !tweets.ok()) {
    std::fprintf(stderr, "FAIL: world load\n");
    return 1;
  }
  const corpus::Corpus news_corpus = core::BuildNewsED(*news);
  const corpus::Corpus tweet_corpus = core::BuildTwitterED(*tweets);

  index::IndexOptions options;
  bool gates_ok = true;
  std::vector<CorpusRow> rows;
  rows.push_back(BenchCorpus("news", news_corpus, options, num_queries, k,
                             7, &gates_ok, speedup_floor));
  rows.push_back(BenchCorpus("tweets", tweet_corpus, options, num_queries, k,
                             11, &gates_ok, speedup_floor));

  std::printf("\ngates=%s\n", gates_ok ? "ok" : "FAIL");
  if (!WriteJson(rows, mode, k, speedup_floor, gates_ok, out_path)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!gates_ok) {
    std::fprintf(stderr,
                 "\nFAIL: an index exactness or speedup gate tripped\n");
    return 1;
  }
  return 0;
}
