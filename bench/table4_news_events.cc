// Reproduces Table 4 (§5.3): news events detected by MABED over the NewsED
// corpus with 60-minute time slices, with the phase timing breakdown the
// paper reports (load / partition / detect).
#include <cstdio>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/time.h"
#include "event/mabed.h"

using namespace newsdiff;

int main() {
  std::printf("=== Table 4: News events (MABED, 60-minute slices) ===\n\n");
  std::printf("Paper reference (samples):\n");
  std::printf("  politics | political european eu current election vote campaign voters\n");
  std::printf("  threats  | iran nuclear washington waters foreign american\n");
  std::printf("  conflict | military gaza israeli killed group hamas islamic political\n");
  std::printf("  bob      | derby security win mueller kentucky times\n\n");

  bench::BenchContext ctx;

  event::MabedOptions opts;
  opts.time_slice_seconds = 60 * kSecondsPerMinute;  // paper: 60 min
  opts.max_events = 100;
  event::Mabed mabed(opts);
  double total = 0.0;
  auto events = bench::Timed(
      &total, [&] { return mabed.Detect(ctx.pipeline_result().news_ed); });
  if (!events.ok()) {
    std::fprintf(stderr, "mabed: %s\n", events.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Measured: %zu events from %zu articles. Phases: partition %.2fs, "
      "detect %.2fs, total %.2fs\n"
      "(paper at crawl scale: 1.3h partition, 15.73h detect)\n\n",
      events->size(), ctx.pipeline_result().news.size(),
      mabed.stats().partition_seconds, mabed.stats().detect_seconds, total);

  TablePrinter table({"#NE", "Start Date", "End Date", "Label", "Keywords"});
  size_t shown = 0;
  for (const event::Event& ev : *events) {
    if (shown >= 10) break;
    table.AddRow({std::to_string(shown + 1), FormatTimestamp(ev.start_time),
                  FormatTimestamp(ev.end_time), ev.main_word,
                  Join(ev.related_words, " ")});
    ++shown;
  }
  table.Print();
  return 0;
}
