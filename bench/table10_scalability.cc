// Reproduces Table 10 (§5.7): runtime evaluation of the four networks when
// the number of Twitter events (dataset size) and the Doc2Vec size (300 vs
// 308) grow, with the paper's batch size of 5000 and a 500-epoch cap.
// Absolute times differ (different hardware, different widths); the shapes
// that must hold: CNNs converge in far fewer epochs than MLPs, CNN
// per-epoch time grows with the event count, and ADADELTA needs at least
// as many epochs as SGD on the MLP.
#include <cstdio>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"

using namespace newsdiff;

int main() {
  std::printf("=== Table 10: Runtime evaluation ===\n\n");
  std::printf("Paper reference (500 events, Doc2Vec 300): MLP1 113 epochs @ "
              "1013 ms; CNN1 6 epochs @ 1071 ms\n");
  std::printf("Paper reference (5000 events, Doc2Vec 308): MLP1 328 epochs; "
              "CNN1 6 epochs @ 6081 ms\n\n");

  bench::BenchContext ctx;
  std::vector<bench::ScalabilityRow> rows = bench::ScalabilitySweep(ctx);

  TablePrinter table({"No. Twitter Events", "Doc2Vec Size", "Network",
                      "No. Epochs", "Ms/Epoch", "Runtime (s)"});
  for (const bench::ScalabilityRow& r : rows) {
    table.AddRow({std::to_string(r.num_events),
                  std::to_string(r.doc2vec_size), r.network,
                  std::to_string(r.epochs),
                  FormatDouble(r.millis_per_epoch, 1),
                  FormatDouble(r.runtime_seconds, 2)});
  }
  table.Print();

  // Shape checks.
  auto mean_epochs = [&](const std::string& prefix) {
    double sum = 0.0;
    size_t n = 0;
    for (const bench::ScalabilityRow& r : rows) {
      if (r.network.rfind(prefix, 0) == 0) {
        sum += static_cast<double>(r.epochs);
        ++n;
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  };
  double mlp_epochs = mean_epochs("MLP");
  double cnn_epochs = mean_epochs("CNN");

  double cnn_small = 0.0, cnn_large = 0.0;
  for (const bench::ScalabilityRow& r : rows) {
    if (r.network.rfind("CNN", 0) != 0) continue;
    if (r.num_events == 500) cnn_small += r.millis_per_epoch;
    if (r.num_events == 5000) cnn_large += r.millis_per_epoch;
  }

  std::printf("\nShape checks:\n");
  std::printf("  mean epochs: MLP %.1f vs CNN %.1f  (paper: MLPs take many "
              "times more epochs) -> %s\n",
              mlp_epochs, cnn_epochs,
              mlp_epochs > cnn_epochs ? "OK" : "MISMATCH");
  std::printf("  CNN ms/epoch at 5000 events vs 500 events: %.1f vs %.1f "
              "(paper: linear growth) -> %s\n",
              cnn_large / 4.0, cnn_small / 4.0,
              cnn_large > cnn_small ? "OK" : "MISMATCH");
  return (mlp_epochs > cnn_epochs && cnn_large > cnn_small) ? 0 : 1;
}
