// Ablation: the deterministic parallel execution layer (common/parallel.h).
// For each wired hot path — dense GEMM, NMF multiplicative updates, the
// MABED anomaly scan, PV-DBOW epochs, and minibatch network training — runs
// the stage at increasing thread counts with a *pinned shard count* and
// reports the speedup over threads=1 plus a bitwise serial-vs-parallel
// equality check. Any bitwise mismatch is a contract violation and makes
// the binary exit nonzero (CI runs `ablation_parallel --smoke` in the
// scheduled job).
//
// Output is machine-parseable with a deterministic field order:
//   stage=<s> threads=<t> seconds=<x> speedup=<y> bitwise=<ok|FAIL>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/time.h"
#include "core/cross_validation.h"
#include "corpus/corpus.h"
#include "embed/pvdbow.h"
#include "event/mabed.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "nn/architectures.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "topic/nmf.h"

using namespace newsdiff;

namespace {

la::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  la::Matrix m(rows, cols);
  Rng rng(seed);
  for (double& v : m.data()) v = rng.Uniform(-1.0, 1.0);
  return m;
}

la::CsrMatrix RandomCsr(size_t rows, size_t cols, double density,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  const auto nnz_target = static_cast<size_t>(
      density * static_cast<double>(rows) * static_cast<double>(cols));
  for (size_t i = 0; i < nnz_target; ++i) {
    t.push_back({static_cast<uint32_t>(rng.NextBelow(rows)),
                 static_cast<uint32_t>(rng.NextBelow(cols)),
                 rng.NextDouble() + 0.1});
  }
  return la::CsrMatrix::FromTriplets(rows, cols, t);
}

/// One stage of the ablation: Run(par) executes the hot path and returns a
/// flat fingerprint of its numeric output for the bitwise comparison.
struct Stage {
  std::string name;
  std::function<std::vector<double>(const Parallelism&)> run;
};

std::vector<Stage> BuildStages(bool smoke) {
  std::vector<Stage> stages;
  // Smoke mode keeps every stage under ~1s serial for the CI cron; full
  // mode sizes each stage so per-shard compute dominates scheduling
  // overhead and thread scaling is visible.
  const size_t gemm_dim = smoke ? 192 : 512;
  const size_t gemm_reps = smoke ? 6 : 10;
  const size_t nmf_rows = smoke ? 600 : 2400;
  const size_t nmf_cols = smoke ? 400 : 800;
  const size_t nmf_iters = smoke ? 15 : 40;
  const size_t mabed_docs = smoke ? 1500 : 12000;
  const size_t mabed_vocab = smoke ? 400 : 1500;
  const size_t pv_docs = smoke ? 160 : 640;
  const size_t train_rows = smoke ? 384 : 1536;
  const size_t train_epochs = smoke ? 6 : 12;

  // --- Dense GEMM (la/): the substrate under every nn/ layer. ---
  stages.push_back({"gemm", [=](const Parallelism& par) {
    la::Matrix a = RandomMatrix(gemm_dim, 256, 1);
    la::Matrix b = RandomMatrix(256, gemm_dim, 2);
    std::vector<double> fp;
    for (size_t rep = 0; rep < gemm_reps; ++rep) {
      la::Matrix c = la::MatMul(a, b, par);
      la::Matrix d = la::MatMulTransA(c, a, par);
      fp.assign(d.data().begin(), d.data().begin() + 16);
    }
    return fp;
  }});

  // --- NMF multiplicative updates (topic/). ---
  stages.push_back({"nmf", [=](const Parallelism& par) {
    la::CsrMatrix a = RandomCsr(nmf_rows, nmf_cols, 0.05, 3);
    topic::NmfOptions opts;
    opts.components = 16;
    opts.max_iterations = nmf_iters;
    opts.tolerance = 0.0;  // fixed work regardless of convergence
    opts.parallelism = par;
    auto result = topic::Nmf(a, opts);
    if (!result.ok()) return std::vector<double>{};
    std::vector<double> fp(result->w.data().begin(),
                           result->w.data().begin() + 32);
    fp.insert(fp.end(), result->h.data().begin(),
              result->h.data().begin() + 32);
    return fp;
  }});

  // --- MABED anomaly scan (event/). ---
  stages.push_back({"mabed", [=](const Parallelism& par) {
    Rng rng(5);
    corpus::Corpus corp;
    std::vector<std::string> vocab;
    for (size_t i = 0; i < mabed_vocab; ++i) {
      vocab.push_back("w" + std::to_string(i));
    }
    const UnixSeconds day = kSecondsPerDay;
    for (size_t i = 0; i < mabed_docs; ++i) {
      std::vector<std::string> doc;
      for (int w = 0; w < 10; ++w) {
        doc.push_back(vocab[rng.NextBelow(mabed_vocab)]);
      }
      if (i % 7 == 0) {  // planted burst terms
        doc.push_back("quake");
        doc.push_back("rescue");
      }
      UnixSeconds t = (i % 7 == 0)
          ? 5 * day + static_cast<int64_t>(rng.NextBelow(2 * day))
          : static_cast<int64_t>(rng.NextBelow(20 * day));
      corp.AddDocument(doc, t);
    }
    event::MabedOptions opts;
    opts.time_slice_seconds = 3 * kSecondsPerHour;
    opts.max_events = 20;
    opts.min_main_doc_freq = 5;
    opts.min_support = 5;
    opts.filter_stopword_mains = false;
    opts.parallelism = par;
    auto events = event::Mabed(opts).Detect(corp);
    std::vector<double> fp;
    if (!events.ok()) return fp;
    for (const event::Event& ev : *events) {
      fp.push_back(ev.magnitude);
      fp.push_back(static_cast<double>(ev.start_slice));
      fp.push_back(static_cast<double>(ev.end_slice));
      for (double w : ev.related_weights) fp.push_back(w);
    }
    return fp;
  }});

  // --- PV-DBOW epochs (embed/). Sharded semantics: shards pinned at 8 so
  // the result depends only on the seed, never the thread count. ---
  stages.push_back({"pvdbow", [=](const Parallelism& par) {
    Rng rng(7);
    std::vector<std::vector<std::string>> docs;
    for (size_t d = 0; d < pv_docs; ++d) {
      std::vector<std::string> doc;
      size_t theme = (d % 8) * 12;
      for (int w = 0; w < 60; ++w) {
        doc.push_back("t" + std::to_string(theme + rng.NextBelow(12)));
      }
      docs.push_back(std::move(doc));
    }
    embed::PvDbowOptions opts;
    opts.dimension = 48;
    opts.epochs = 4;
    opts.min_count = 1;
    opts.parallelism = par;
    opts.parallelism.shards = 8;  // pinned: identical layout at any width
    auto result = embed::TrainPvDbow(docs, opts);
    if (!result.ok()) return std::vector<double>{};
    const la::AlignedVector& dv = result->doc_vectors.data();
    return std::vector<double>(dv.begin(), dv.end());
  }});

  // --- Minibatch forward/backward (nn/), shards pinned for Conv1D's
  // sharded batch-gradient sum. ---
  stages.push_back({"train", [=](const Parallelism& par) {
    Rng rng(9);
    const size_t dim = 64;
    const size_t n = train_rows;
    la::Matrix x(n, dim);
    std::vector<int> y(n);
    for (size_t i = 0; i < n; ++i) {
      size_t c = i % 3;
      double* row = x.RowPtr(i);
      for (size_t d = 0; d < dim; ++d) {
        row[d] = rng.Gaussian((d % 3 == c) ? 2.0 : 0.0, 0.6);
      }
      y[i] = static_cast<int>(c);
    }
    nn::CnnConfig cfg;
    cfg.input_size = dim;
    cfg.filters = 8;
    cfg.kernel_size = 8;
    cfg.pool_size = 4;
    cfg.dense_size = 32;
    nn::Model model = nn::BuildCnn(cfg);
    nn::Sgd sgd({0.1, 0.0});
    nn::FitOptions fit;
    fit.epochs = train_epochs;
    fit.batch_size = 64;
    fit.early_stopping.enabled = false;
    fit.parallelism = par;
    fit.parallelism.shards = 16;  // pinned
    auto history = model.Fit(x, y, sgd, fit);
    std::vector<double> fp;
    if (!history.ok()) return fp;
    for (const nn::Param& p : model.Parameters()) {
      fp.insert(fp.end(), p.value->data().begin(), p.value->data().end());
    }
    return fp;
  }});

  // --- Cross-validation (core/) at both parallelism grains, side by side:
  // cv_intra spends the threads inside each fold's matmuls (fine grain),
  // cv_fold spends them running whole folds as tasks (coarse grain). Both
  // pin shards so the bitwise gate compares identical configurations, and
  // both must match their own serial baseline exactly — folds are
  // seed-isolated and nested regions run inline. ---
  const size_t cv_rows = smoke ? 150 : 600;
  const size_t cv_epochs = smoke ? 6 : 15;
  auto make_cv_stage = [=](bool fold_grain) {
    return [=](const Parallelism& par) {
      Rng rng(11);
      const size_t dim = 32;
      la::Matrix x(cv_rows, dim);
      std::vector<int> y(cv_rows);
      for (size_t i = 0; i < cv_rows; ++i) {
        size_t c = i % 3;
        double* row = x.RowPtr(i);
        for (size_t d = 0; d < dim; ++d) {
          row[d] = rng.Gaussian((d % 3 == c) ? 2.0 : 0.0, 0.8);
        }
        y[i] = static_cast<int>(c);
      }
      core::PredictorOptions opts;
      opts.max_epochs = cv_epochs;
      opts.batch_size = 32;
      opts.early_stopping.enabled = false;
      opts.max_restarts = 0;
      if (fold_grain) {
        opts.fold_parallelism = par;
        opts.fold_parallelism.shards = 16;  // pinned
      } else {
        opts.parallelism = par;
        opts.parallelism.shards = 16;  // pinned
      }
      auto cv = core::CrossValidate(x, y, core::NetworkKind::kMlp1, opts,
                                    /*folds=*/4);
      std::vector<double> fp;
      if (!cv.ok()) return fp;
      fp = cv->fold_accuracies;
      fp.push_back(cv->mean_accuracy);
      return fp;
    };
  };
  stages.push_back({"cv_intra", make_cv_stage(/*fold_grain=*/false)});
  stages.push_back({"cv_fold", make_cv_stage(/*fold_grain=*/true)});

  return stages;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("=== Ablation: deterministic parallel execution layer ===\n");
  std::printf("hardware_threads=%zu default_shards=%zu mode=%s\n\n",
              HardwareThreads(), kDefaultShards, smoke ? "smoke" : "full");

  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};

  bool all_bitwise_ok = true;
  for (const Stage& stage : BuildStages(smoke)) {
    std::vector<double> baseline;
    double baseline_seconds = 0.0;
    for (size_t threads : thread_counts) {
      Parallelism par{.threads = threads};
      std::vector<double> fp;
      double seconds =
          bench::TimedSeconds([&] { fp = stage.run(par); });
      bool bitwise_ok;
      if (threads == thread_counts.front()) {
        baseline = fp;
        baseline_seconds = seconds;
        bitwise_ok = !fp.empty();
      } else {
        bitwise_ok = (fp == baseline);  // exact, element-wise doubles
      }
      all_bitwise_ok = all_bitwise_ok && bitwise_ok;
      double speedup = seconds > 0.0 ? baseline_seconds / seconds : 0.0;
      std::printf("stage=%s threads=%zu seconds=%.4f speedup=%.2f bitwise=%s\n",
                  stage.name.c_str(), threads, seconds, speedup,
                  bitwise_ok ? "ok" : "FAIL");
    }
  }

  if (!all_bitwise_ok) {
    std::fprintf(stderr,
                 "\nFAIL: parallel output diverged from the serial baseline\n");
    return 1;
  }
  std::printf("\nAll stages bitwise identical to serial at every width.\n");
  return 0;
}
