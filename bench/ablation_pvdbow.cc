// Ablation: frozen-store Doc2Vec averaging (the paper's deployed choice)
// vs PV-DBOW trained only on the collected tweets. The paper's §4.9 argues
// the paragraph-vector models "will not find good document representations
// since they can be trained ... only on the collected datasets"; this bench
// checks that claim by training both representations for the same
// audience-interest task.
#include <cstdio>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "embed/pvdbow.h"

using namespace newsdiff;

int main() {
  std::printf("=== Ablation: frozen-store Doc2Vec vs PV-DBOW (paper §4.9) "
              "===\n\n");
  bench::BenchContext ctx;
  const core::PipelineResult& r = ctx.pipeline_result();

  // The deployed representation: A1 (SW_Doc2Vec over the frozen store).
  core::TrainingDataset sw =
      core::BuildDataset(core::DatasetVariant::kA1, r.assignments,
                         r.twitter_events, r.twitter_ed, r.tweets,
                         ctx.store());

  // PV-DBOW trained on the event tweets only (the "collected dataset"),
  // aligned row-by-row with the SW dataset.
  std::vector<std::vector<std::string>> documents;
  for (const core::EventTweetAssignment& a : r.assignments) {
    for (size_t tweet_idx : a.tweet_indices) {
      const corpus::Document& doc = r.twitter_ed.doc(tweet_idx);
      std::vector<std::string> tokens;
      tokens.reserve(doc.tokens.size());
      for (uint32_t t : doc.tokens) {
        tokens.push_back(r.twitter_ed.vocabulary().Term(t));
      }
      documents.push_back(std::move(tokens));
    }
  }
  embed::PvDbowOptions opts;
  opts.dimension = ctx.store().dimension();
  opts.epochs = 8;
  double pv_seconds = 0.0;
  auto pv = bench::Timed(
      &pv_seconds, [&] { return embed::TrainPvDbow(documents, opts); });
  if (!pv.ok()) {
    std::fprintf(stderr, "PV-DBOW: %s\n", pv.status().ToString().c_str());
    return 1;
  }
  core::TrainingDataset pvds;
  pvds.x = pv->doc_vectors;
  pvds.embedding_dim = opts.dimension;
  pvds.feature_dim = opts.dimension;
  pvds.likes = sw.likes;
  pvds.retweets = sw.retweets;

  TablePrinter table({"Representation", "Likes acc", "Retweets acc"});
  double sw_likes = 0.0, pv_likes = 0.0;
  {
    auto l = core::TrainAndEvaluate(sw.x, sw.likes, core::NetworkKind::kMlp1,
                                    ctx.predictor_options());
    auto rt = core::TrainAndEvaluate(sw.x, sw.retweets,
                                     core::NetworkKind::kMlp1,
                                     ctx.predictor_options());
    sw_likes = l.ok() ? l->accuracy : 0.0;
    table.AddRow({"SW_Doc2Vec over frozen store (deployed)",
                  FormatDouble(sw_likes, 3),
                  FormatDouble(rt.ok() ? rt->accuracy : 0.0, 3)});
  }
  {
    auto l = core::TrainAndEvaluate(pvds.x, pvds.likes,
                                    core::NetworkKind::kMlp1,
                                    ctx.predictor_options());
    auto rt = core::TrainAndEvaluate(pvds.x, pvds.retweets,
                                     core::NetworkKind::kMlp1,
                                     ctx.predictor_options());
    pv_likes = l.ok() ? l->accuracy : 0.0;
    table.AddRow({"PV-DBOW on collected tweets only",
                  FormatDouble(pv_likes, 3),
                  FormatDouble(rt.ok() ? rt->accuracy : 0.0, 3)});
  }
  {
    // PV-DM, the paper's other rejected paragraph-vector variant (§3.4).
    embed::PvDbowOptions dm_opts = opts;
    auto dm = embed::TrainPvDm(documents, dm_opts);
    if (dm.ok()) {
      core::TrainingDataset dmds;
      dmds.x = dm->doc_vectors;
      dmds.embedding_dim = dm_opts.dimension;
      dmds.feature_dim = dm_opts.dimension;
      dmds.likes = sw.likes;
      dmds.retweets = sw.retweets;
      auto l = core::TrainAndEvaluate(dmds.x, dmds.likes,
                                      core::NetworkKind::kMlp1,
                                      ctx.predictor_options());
      auto rt = core::TrainAndEvaluate(dmds.x, dmds.retweets,
                                       core::NetworkKind::kMlp1,
                                       ctx.predictor_options());
      table.AddRow({"PV-DM on collected tweets only",
                    FormatDouble(l.ok() ? l->accuracy : 0.0, 3),
                    FormatDouble(rt.ok() ? rt->accuracy : 0.0, 3)});
    }
  }
  table.Print();
  std::printf("\nPV-DBOW training time: %.1fs for %zu documents\n",
              pv_seconds, documents.size());
  std::printf("Paper's design choice holds if the frozen-store average is "
              "at least as accurate: %s\n",
              sw_likes + 1e-9 >= pv_likes - 0.02 ? "OK" : "MISMATCH");
  return sw_likes + 1e-9 >= pv_likes - 0.02 ? 0 : 1;
}
