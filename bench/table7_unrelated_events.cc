// Reproduces Table 7 (§5.5): Twitter events with no correlated trending
// news topic — generic chatter (food, TV shows, social media...) that spans
// long periods and never appears in the news corpus.
#include <cstdio>
#include <unordered_set>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"

using namespace newsdiff;

int main() {
  std::printf("=== Table 7: Unrelated Twitter events ===\n\n");
  std::printf("Paper reference (samples):\n");
  std::printf("  cartoon         | matt cartoonist telegraph side bobs cartoons\n");
  std::printf("  game of thrones | spoilers season episode missed review sunday\n");
  std::printf("  sleep           | coffee news lovers tea studying perfect ashes\n");
  std::printf("  rice            | delicious perfectly sandwiches fried dish cheeses\n\n");

  bench::BenchContext ctx;
  const core::PipelineResult& r = ctx.pipeline_result();

  std::printf("Measured: %zu of %zu Twitter events have no correlated "
              "trending news topic.\n\n",
              r.unrelated_twitter_events.size(), r.twitter_events.size());

  // Ground-truth chatter vocabulary for the shape check.
  std::unordered_set<std::string> chatter_words;
  for (const datagen::Theme& theme : datagen::ChatterThemes()) {
    for (const std::string& w : theme.words) chatter_words.insert(w);
  }

  // Prefer showing chatter-flavoured rows, as the paper's Table 7 does.
  TablePrinter table({"#TE", "Start Date", "End Date", "Label", "Keywords"});
  size_t shown = 0;
  for (int pass = 0; pass < 2 && shown < 10; ++pass) {
    for (size_t idx : r.unrelated_twitter_events) {
      if (shown >= 10) break;
      const event::Event& ev = r.twitter_events[idx];
      bool is_chatter = chatter_words.count(ev.main_word) > 0;
      if ((pass == 0) != is_chatter) continue;
      table.AddRow({std::to_string(idx + 1), FormatTimestamp(ev.start_time),
                    FormatTimestamp(ev.end_time), ev.main_word,
                    Join(ev.related_words, " ")});
      ++shown;
    }
  }
  table.Print();

  // Shape check in the paper's direction: chatter events (food / TV /
  // social media / coffee / football) never correlate with a trending
  // news topic.
  size_t chatter_events = 0, chatter_unrelated = 0;
  std::vector<bool> unrelated(r.twitter_events.size(), false);
  for (size_t idx : r.unrelated_twitter_events) unrelated[idx] = true;
  for (size_t i = 0; i < r.twitter_events.size(); ++i) {
    if (chatter_words.count(r.twitter_events[i].main_word) == 0) continue;
    ++chatter_events;
    if (unrelated[i]) ++chatter_unrelated;
  }
  std::printf("\nShape check: %zu/%zu chatter-labelled Twitter events have "
              "no correlated trending news topic (paper: generic "
              "discussions never match news topics).\n",
              chatter_unrelated, chatter_events);
  // Tolerate one borderline chatter event slipping past the similarity
  // threshold (the synthetic vocabulary is denser than a real crawl's).
  bool ok = chatter_events == 0 ||
            chatter_unrelated + 1 >= chatter_events;
  return ok ? 0 : 1;
}
