// Ablation: pipeline durability under storage faults, plus the storage
// engine v2 headline — WAL group-commit sync vs full snapshot rewrite for a
// small delta. Stage one kills the supervised pipeline at seeded crash
// points during its snapshot writes, "reboots", recovers from the newest
// intact snapshot generation, and reruns; it reports how often recovery
// restored a usable store, how many stages the ledger let the rerun skip,
// and whether the spliced outputs stayed exactly identical to an
// uninterrupted fault-free run. Stage two (`wal_vs_snapshot`) measures the
// bytes each durability strategy pays to persist a 1% document delta and
// gates on the WAL being at least 5x cheaper. Results land in
// BENCH_durability.json (see --out).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/table_printer.h"
#include "core/checkpoint.h"
#include "core/embedding_cache.h"
#include "core/supervisor.h"
#include "datagen/faults.h"
#include "datagen/world.h"
#include "store/database.h"
#include "store/json.h"
#include "store/wal.h"

using namespace newsdiff;

namespace {

/// Forwarding FileIo that meters durability traffic: how many bytes each
/// strategy actually sends to disk, split by write (snapshot rewrites) and
/// append (WAL group commits).
class CountingFileIo : public FileIo {
 public:
  explicit CountingFileIo(FileIo& inner) : inner_(&inner) {}

  Status WriteFile(const std::string& path,
                   const std::string& contents) override {
    bytes_written_ += contents.size();
    ++writes_;
    return inner_->WriteFile(path, contents);
  }
  Status AppendFile(const std::string& path,
                    const std::string& contents) override {
    bytes_appended_ += contents.size();
    ++appends_;
    return inner_->AppendFile(path, contents);
  }
  StatusOr<std::string> ReadFile(const std::string& path) override {
    return inner_->ReadFile(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return inner_->Rename(from, to);
  }
  Status Remove(const std::string& path) override {
    return inner_->Remove(path);
  }
  Status CreateDirectories(const std::string& dir) override {
    return inner_->CreateDirectories(dir);
  }
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    return inner_->ListDir(dir);
  }
  bool Exists(const std::string& path) override {
    return inner_->Exists(path);
  }

  void ResetCounters() {
    bytes_written_ = bytes_appended_ = 0;
    writes_ = appends_ = 0;
  }
  size_t bytes_written() const { return bytes_written_; }
  size_t bytes_appended() const { return bytes_appended_; }
  size_t total_bytes() const { return bytes_written_ + bytes_appended_; }

 private:
  FileIo* inner_;
  size_t bytes_written_ = 0;
  size_t bytes_appended_ = 0;
  size_t writes_ = 0;
  size_t appends_ = 0;
};

/// Stage-two results: the cost of durably persisting a 1% delta.
struct WalVsSnapshot {
  size_t docs = 0;
  size_t delta_docs = 0;
  size_t snapshot_bytes = 0;  // full SaveToDir generation
  size_t wal_bytes = 0;       // group-commit appends for the same delta
  double snapshot_ms = 0.0;
  double wal_ms = 0.0;
  double bytes_ratio = 0.0;  // snapshot_bytes / wal_bytes
};

constexpr double kMinBytesRatio = 5.0;

datagen::World BenchWorld() {
  datagen::WorldOptions opts;
  opts.seed = 77;
  opts.num_users = 200;
  opts.num_articles = 400;
  opts.num_tweets = 1200;
  opts.duration_days = 40;
  opts.num_news_events = 4;
  opts.num_chatter_events = 2;
  return datagen::GenerateWorld(opts);
}

core::PipelineOptions SmallOptions() {
  core::PipelineOptions popts;
  popts.topics.num_topics = 6;
  popts.topics.nmf.max_iterations = 40;
  popts.news_mabed.max_events = 20;
  popts.twitter_mabed.max_events = 30;
  return popts;
}

std::string StageFingerprint(const store::Database& db) {
  std::string out;
  for (const char* name :
       {core::kTopicsCollection, core::kNewsEventsCollection,
        core::kTwitterEventsCollection, core::kTrendingCollection,
        core::kCorrelationsCollection, core::kAssignmentsCollection}) {
    if (const store::Collection* c = db.Get(name)) {
      for (const store::Value& doc : c->All()) {
        out += store::ToJson(doc);
        out += '\n';
      }
    }
  }
  return out;
}

/// One row of the stage-one fault sweep, kept for the JSON report.
struct SweepRow {
  double rate = 0.0;
  size_t kills = 0;
  size_t recovered = 0;
  size_t reboots = 0;
  size_t resumed = 0;
  size_t computed = 0;
  size_t gens_skipped = 0;
  double wall_ms = 0.0;
  bool exact = true;
};

/// Stage two: build the store from the bench world, checkpoint it, then
/// refresh 1% of the documents and compare what each durability strategy
/// sends to disk — an O(delta) WAL group commit vs an O(store) snapshot
/// generation.
StatusOr<WalVsSnapshot> RunWalVsSnapshot(datagen::World& world,
                                         const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  WalVsSnapshot r;

  CountingFileIo wal_io(DefaultFileIo());
  const std::string wal_dir = (root / "wal_vs_snapshot").string();
  fs::remove_all(wal_dir);
  store::Database db;
  world.LoadInto(db);
  store::WalOptions wal;
  wal.io = &wal_io;
  store::SnapshotOptions snapshot;
  snapshot.io = &wal_io;
  NEWSDIFF_RETURN_IF_ERROR(db.AttachWal(wal_dir, wal));
  NEWSDIFF_RETURN_IF_ERROR(db.Checkpoint(snapshot));  // generation 1 baseline

  for (const std::string& name : db.CollectionNames()) {
    r.docs += db.Get(name)->size();
  }
  r.delta_docs = r.docs / 100;  // the 1% refresh
  if (r.delta_docs == 0) r.delta_docs = 1;

  // The delta: a metadata touch on 1% of the tweets (the paper's two-hour
  // refresh updates engagement counts on already-crawled documents).
  store::Collection& tweets = db.GetOrCreate("tweets");
  std::vector<store::DocId> ids;
  tweets.ForEach(store::Filter(),
                 [&](store::DocId id, const store::Value&) {
                   ids.push_back(id);
                   return ids.size() < r.delta_docs;
                 });

  wal_io.ResetCounters();
  Status synced = Status::OK();
  r.wal_ms = 1000.0 * bench::TimedSeconds([&] {
    for (store::DocId id : ids) {
      tweets.UpdateSet(
          store::Filter().Eq("_id", store::Value(static_cast<int64_t>(id))),
          "bench_touch", store::Value(static_cast<int64_t>(1)));
    }
    synced = db.WalSync();
  });
  NEWSDIFF_RETURN_IF_ERROR(synced);
  r.wal_bytes = wal_io.total_bytes();

  // The same store persisted the snapshot way: one full generation.
  CountingFileIo snap_io(DefaultFileIo());
  const std::string snap_dir = (root / "snapshot_path").string();
  fs::remove_all(snap_dir);
  store::SnapshotOptions full;
  full.io = &snap_io;
  Status saved = Status::OK();
  r.snapshot_ms = 1000.0 * bench::TimedSeconds(
                               [&] { saved = db.SaveToDir(snap_dir, full); });
  NEWSDIFF_RETURN_IF_ERROR(saved);
  r.snapshot_bytes = snap_io.total_bytes();

  r.bytes_ratio = r.wal_bytes > 0 ? static_cast<double>(r.snapshot_bytes) /
                                        static_cast<double>(r.wal_bytes)
                                  : 0.0;
  return r;
}

bool WriteJson(const std::vector<SweepRow>& sweep, const WalVsSnapshot& w,
               bool gates_ok, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"gate_min_bytes_ratio\": %.1f,\n", kMinBytesRatio);
  std::fprintf(f, "  \"gates_ok\": %s,\n", gates_ok ? "true" : "false");
  std::fprintf(f, "  \"wal_vs_snapshot\": {\n");
  std::fprintf(f, "    \"docs\": %zu,\n", w.docs);
  std::fprintf(f, "    \"delta_docs\": %zu,\n", w.delta_docs);
  std::fprintf(f, "    \"snapshot_bytes\": %zu,\n", w.snapshot_bytes);
  std::fprintf(f, "    \"wal_bytes\": %zu,\n", w.wal_bytes);
  std::fprintf(f, "    \"bytes_ratio\": %.1f,\n", w.bytes_ratio);
  std::fprintf(f, "    \"snapshot_ms\": %.2f,\n", w.snapshot_ms);
  std::fprintf(f, "    \"wal_ms\": %.2f\n", w.wal_ms);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fault_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& s = sweep[i];
    std::fprintf(f,
                 "    {\"fault_rate\": %.2f, \"kills\": %zu, "
                 "\"recovered\": %zu, \"reboots\": %zu, \"resumed\": %zu, "
                 "\"recomputed\": %zu, \"gens_skipped\": %zu, "
                 "\"wall_ms\": %.1f, \"outputs_exact\": %s}%s\n",
                 s.rate, s.kills, s.recovered, s.reboots, s.resumed,
                 s.computed, s.gens_skipped, s.wall_ms,
                 s.exact ? "true" : "false",
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string out_path = "BENCH_durability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  std::printf("=== Ablation: pipeline durability vs storage fault rate "
              "===\n\n");

  datagen::World world = BenchWorld();
  core::PretrainedConfig cfg;
  cfg.dimension = 32;
  cfg.background_sentences = 1200;
  cfg.epochs = 1;
  auto pretrained = core::LoadOrTrainPretrained("", cfg);
  if (!pretrained.ok()) {
    std::printf("embedding store failed: %s\n",
                pretrained.status().ToString().c_str());
    return 1;
  }

  // Fault-free reference outputs.
  store::Database base_db;
  world.LoadInto(base_db);
  core::PipelineSupervisor baseline(core::Pipeline(SmallOptions()),
                                    core::SupervisorOptions{});
  auto want = baseline.Run(base_db, *pretrained);
  if (!want.ok()) {
    std::printf("baseline run failed: %s\n",
                want.status().ToString().c_str());
    return 1;
  }
  const std::string want_fingerprint = StageFingerprint(base_db);
  const size_t total_stages =
      sizeof(core::kStageNames) / sizeof(core::kStageNames[0]);

  const fs::path root =
      fs::temp_directory_path() / "newsdiff_ablation_durability";
  fs::remove_all(root);

  std::vector<SweepRow> sweep;
  TablePrinter table({"Fault rate", "Kills", "Recovered", "Reboots",
                      "Stages resumed", "Stages recomputed", "Gens skipped",
                      "Wall ms", "Outputs"});
  for (double rate : {0.0, 0.05, 0.10, 0.20}) {
    size_t kills = 0, recovered_runs = 0, total_reboots = 0;
    size_t resumed = 0, computed = 0, gens_skipped = 0;
    bool all_exact = true;

    // Kill points spread across the run: early (inside the raw-collection
    // writes), mid (stage checkpoints), late (final generations / GC).
    const size_t crash_points[] = {8, 30, 60, 90, 120, 400};
    size_t cycle = 0;
    double wall_ms = 1000.0 * bench::TimedSeconds([&] {
      for (size_t crash_at : crash_points) {
        ++cycle;
        const fs::path dir = root / (std::to_string(rate) + "-" +
                                     std::to_string(crash_at));
        datagen::StorageFaultOptions fopts;
        fopts.seed = 7000 + cycle + static_cast<uint64_t>(rate * 1000);
        fopts.lost_tail_rate = rate / 2;
        fopts.bit_flip_rate = rate / 2;
        fopts.crash_after_ops = crash_at;
        datagen::FaultyFileIo faulty(DefaultFileIo(), fopts);
        core::SupervisorOptions sopts;
        sopts.snapshot_dir = dir.string();
        sopts.snapshot.io = &faulty;
        sopts.snapshot.retain_generations = 4;

        store::Database db1;
        world.LoadInto(db1);
        core::PipelineSupervisor first(core::Pipeline(SmallOptions()), sopts);
        auto killed = first.Run(db1, *pretrained);
        if (killed.ok()) {
          all_exact &= StageFingerprint(db1) == want_fingerprint;
          continue;  // crash point was beyond this run's IO
        }

        ++kills;
        // A rebooted process that dies again (the fault rates stay active)
        // simply reboots once more: every durably committed stage shrinks the
        // remaining work, so the loop converges.
        bool done = false;
        for (size_t reboot = 0; reboot < 12 && !done; ++reboot) {
          ++total_reboots;
          faulty.Reboot();
          store::Database db2;
          core::PipelineSupervisor second(core::Pipeline(SmallOptions()),
                                          sopts);
          Status recov = second.Recover(db2);
          gens_skipped += second.report().recovery.generations_skipped;
          if (!recov.ok() || db2.Get("news") == nullptr) {
            // Nothing durable (or no intact generation): re-crawl the feeds.
            world.LoadInto(db2);
          }
          auto completed = second.Run(db2, *pretrained);
          if (!completed.ok()) continue;
          done = true;
          ++recovered_runs;
          resumed += second.report().stages_resumed;
          computed += second.report().stages_computed;
          all_exact &= StageFingerprint(db2) == want_fingerprint;
        }
      }
    });

    char rate_buf[16], wall_buf[24], resumed_buf[32];
    std::snprintf(rate_buf, sizeof(rate_buf), "%.2f", rate);
    std::snprintf(wall_buf, sizeof(wall_buf), "%.1f", wall_ms);
    std::snprintf(resumed_buf, sizeof(resumed_buf), "%zu/%zu", resumed,
                  kills * total_stages);
    table.AddRow({rate_buf, std::to_string(kills),
                  std::to_string(recovered_runs),
                  std::to_string(total_reboots), resumed_buf,
                  std::to_string(computed), std::to_string(gens_skipped),
                  wall_buf, all_exact ? "exact" : "DIVERGED"});
    SweepRow row;
    row.rate = rate;
    row.kills = kills;
    row.recovered = recovered_runs;
    row.reboots = total_reboots;
    row.resumed = resumed;
    row.computed = computed;
    row.gens_skipped = gens_skipped;
    row.wall_ms = wall_ms;
    row.exact = all_exact;
    sweep.push_back(row);
  }
  table.Print();
  std::printf(
      "\nStages resumed = ledger entries honoured after reboot (NMF/MABED\n"
      "work the rerun did not repeat); recomputed = stages the interrupted\n"
      "run had not yet durably finished.\n");

  std::printf("\n=== wal_vs_snapshot: bytes to persist a 1%% delta ===\n\n");
  auto wvs = RunWalVsSnapshot(world, root);
  if (!wvs.ok()) {
    std::printf("wal_vs_snapshot stage failed: %s\n",
                wvs.status().ToString().c_str());
    fs::remove_all(root);
    return 1;
  }
  TablePrinter wtable({"Strategy", "Bytes", "Wall ms"});
  char snap_ms[24], wal_ms[24];
  std::snprintf(snap_ms, sizeof(snap_ms), "%.2f", wvs->snapshot_ms);
  std::snprintf(wal_ms, sizeof(wal_ms), "%.2f", wvs->wal_ms);
  wtable.AddRow({"snapshot (full generation)",
                 std::to_string(wvs->snapshot_bytes), snap_ms});
  wtable.AddRow({"wal (group commit)", std::to_string(wvs->wal_bytes),
                 wal_ms});
  wtable.Print();
  std::printf(
      "\n%zu docs, %zu touched (1%%): WAL syncs %.1fx fewer bytes than a\n"
      "full snapshot generation (gate: >= %.1fx).\n",
      wvs->docs, wvs->delta_docs, wvs->bytes_ratio, kMinBytesRatio);

  const bool gates_ok = wvs->bytes_ratio >= kMinBytesRatio;
  if (!WriteJson(sweep, *wvs, gates_ok, out_path)) {
    std::printf("failed to write %s\n", out_path.c_str());
    fs::remove_all(root);
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!gates_ok) {
    std::printf("GATE FAILED: bytes_ratio %.1f < %.1f\n", wvs->bytes_ratio,
                kMinBytesRatio);
  }
  fs::remove_all(root);
  return gates_ok ? 0 : 1;
}
