// Ablation: pipeline durability under storage faults. For each storage
// fault level the supervised pipeline is repeatedly killed at a seeded
// crash point during its snapshot writes, "rebooted", recovered from the
// newest intact snapshot generation, and rerun. Reports how often recovery
// restored a usable store, how many stages the ledger let the rerun skip
// (recomputation avoided), and whether the spliced outputs stayed exactly
// identical to an uninterrupted fault-free run.
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/harness.h"
#include "common/table_printer.h"
#include "core/checkpoint.h"
#include "core/embedding_cache.h"
#include "core/supervisor.h"
#include "datagen/faults.h"
#include "datagen/world.h"
#include "store/database.h"
#include "store/json.h"

using namespace newsdiff;

namespace {

datagen::World BenchWorld() {
  datagen::WorldOptions opts;
  opts.seed = 77;
  opts.num_users = 200;
  opts.num_articles = 400;
  opts.num_tweets = 1200;
  opts.duration_days = 40;
  opts.num_news_events = 4;
  opts.num_chatter_events = 2;
  return datagen::GenerateWorld(opts);
}

core::PipelineOptions SmallOptions() {
  core::PipelineOptions popts;
  popts.topics.num_topics = 6;
  popts.topics.nmf.max_iterations = 40;
  popts.news_mabed.max_events = 20;
  popts.twitter_mabed.max_events = 30;
  return popts;
}

std::string StageFingerprint(const store::Database& db) {
  std::string out;
  for (const char* name :
       {core::kTopicsCollection, core::kNewsEventsCollection,
        core::kTwitterEventsCollection, core::kTrendingCollection,
        core::kCorrelationsCollection, core::kAssignmentsCollection}) {
    if (const store::Collection* c = db.Get(name)) {
      for (const store::Value& doc : c->All()) {
        out += store::ToJson(doc);
        out += '\n';
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  std::printf("=== Ablation: pipeline durability vs storage fault rate "
              "===\n\n");

  datagen::World world = BenchWorld();
  core::PretrainedConfig cfg;
  cfg.dimension = 32;
  cfg.background_sentences = 1200;
  cfg.epochs = 1;
  auto pretrained = core::LoadOrTrainPretrained("", cfg);
  if (!pretrained.ok()) {
    std::printf("embedding store failed: %s\n",
                pretrained.status().ToString().c_str());
    return 1;
  }

  // Fault-free reference outputs.
  store::Database base_db;
  world.LoadInto(base_db);
  core::PipelineSupervisor baseline(core::Pipeline(SmallOptions()),
                                    core::SupervisorOptions{});
  auto want = baseline.Run(base_db, *pretrained);
  if (!want.ok()) {
    std::printf("baseline run failed: %s\n",
                want.status().ToString().c_str());
    return 1;
  }
  const std::string want_fingerprint = StageFingerprint(base_db);
  const size_t total_stages =
      sizeof(core::kStageNames) / sizeof(core::kStageNames[0]);

  const fs::path root =
      fs::temp_directory_path() / "newsdiff_ablation_durability";
  fs::remove_all(root);

  TablePrinter table({"Fault rate", "Kills", "Recovered", "Reboots",
                      "Stages resumed", "Stages recomputed", "Gens skipped",
                      "Wall ms", "Outputs"});
  for (double rate : {0.0, 0.05, 0.10, 0.20}) {
    size_t kills = 0, recovered_runs = 0, total_reboots = 0;
    size_t resumed = 0, computed = 0, gens_skipped = 0;
    bool all_exact = true;

    // Kill points spread across the run: early (inside the raw-collection
    // writes), mid (stage checkpoints), late (final generations / GC).
    const size_t crash_points[] = {8, 30, 60, 90, 120, 400};
    size_t cycle = 0;
    double wall_ms = 1000.0 * bench::TimedSeconds([&] {
      for (size_t crash_at : crash_points) {
        ++cycle;
        const fs::path dir = root / (std::to_string(rate) + "-" +
                                     std::to_string(crash_at));
        datagen::StorageFaultOptions fopts;
        fopts.seed = 7000 + cycle + static_cast<uint64_t>(rate * 1000);
        fopts.lost_tail_rate = rate / 2;
        fopts.bit_flip_rate = rate / 2;
        fopts.crash_after_ops = crash_at;
        datagen::FaultyFileIo faulty(DefaultFileIo(), fopts);
        core::SupervisorOptions sopts;
        sopts.snapshot_dir = dir.string();
        sopts.snapshot.io = &faulty;
        sopts.snapshot.retain_generations = 4;

        store::Database db1;
        world.LoadInto(db1);
        core::PipelineSupervisor first(core::Pipeline(SmallOptions()), sopts);
        auto killed = first.Run(db1, *pretrained);
        if (killed.ok()) {
          all_exact &= StageFingerprint(db1) == want_fingerprint;
          continue;  // crash point was beyond this run's IO
        }

        ++kills;
        // A rebooted process that dies again (the fault rates stay active)
        // simply reboots once more: every durably committed stage shrinks the
        // remaining work, so the loop converges.
        bool done = false;
        for (size_t reboot = 0; reboot < 12 && !done; ++reboot) {
          ++total_reboots;
          faulty.Reboot();
          store::Database db2;
          core::PipelineSupervisor second(core::Pipeline(SmallOptions()),
                                          sopts);
          Status recov = second.Recover(db2);
          gens_skipped += second.report().recovery.generations_skipped;
          if (!recov.ok() || db2.Get("news") == nullptr) {
            // Nothing durable (or no intact generation): re-crawl the feeds.
            world.LoadInto(db2);
          }
          auto completed = second.Run(db2, *pretrained);
          if (!completed.ok()) continue;
          done = true;
          ++recovered_runs;
          resumed += second.report().stages_resumed;
          computed += second.report().stages_computed;
          all_exact &= StageFingerprint(db2) == want_fingerprint;
        }
      }
    });

    char rate_buf[16], wall_buf[24], resumed_buf[32];
    std::snprintf(rate_buf, sizeof(rate_buf), "%.2f", rate);
    std::snprintf(wall_buf, sizeof(wall_buf), "%.1f", wall_ms);
    std::snprintf(resumed_buf, sizeof(resumed_buf), "%zu/%zu", resumed,
                  kills * total_stages);
    table.AddRow({rate_buf, std::to_string(kills),
                  std::to_string(recovered_runs),
                  std::to_string(total_reboots), resumed_buf,
                  std::to_string(computed), std::to_string(gens_skipped),
                  wall_buf, all_exact ? "exact" : "DIVERGED"});
  }
  table.Print();
  std::printf(
      "\nStages resumed = ledger entries honoured after reboot (NMF/MABED\n"
      "work the rerun did not repeat); recomputed = stages the interrupted\n"
      "run had not yet durably finished.\n");
  fs::remove_all(root);
  return 0;
}
