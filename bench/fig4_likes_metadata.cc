// Reproduces Figure 4 (§5.6): likes accuracy, datasets without metadata
// (A1, B1, C1, D1) vs with metadata (A2, B2, C2, D2), rendered as grouped
// ASCII bars. Reuses the cached Table 8 grid when available.
#include <cstdio>

#include "bench/accuracy_table_common.h"

using namespace newsdiff;

int main() {
  std::printf("=== Figure 4: Likes accuracy, without vs with metadata ===\n\n");
  bench::BenchContext ctx;
  std::vector<bench::AccuracyCell> grid = bench::AccuracyGrid(ctx, "likes");

  int failures = 0;
  for (const std::string& net : bench::NetworkNames()) {
    std::printf("%s\n", net.c_str());
    for (const char* letter : {"A", "B", "C", "D"}) {
      const bench::AccuracyCell* lo =
          bench::FindCell(grid, std::string(letter) + "1", net);
      const bench::AccuracyCell* hi =
          bench::FindCell(grid, std::string(letter) + "2", net);
      if (lo == nullptr || hi == nullptr) continue;
      std::printf("  %s1 |%s| %.2f\n", letter,
                  bench::AsciiBar(lo->accuracy, 1.0, 40).c_str(),
                  lo->accuracy);
      std::printf("  %s2 |%s| %.2f %s\n", letter,
                  bench::AsciiBar(hi->accuracy, 1.0, 40).c_str(),
                  hi->accuracy, hi->accuracy > lo->accuracy ? "" : "  <-- no lift");
      if (hi->accuracy <= lo->accuracy) ++failures;
    }
    std::printf("\n");
  }
  std::printf("Paper shape: every metadata bar exceeds its plain twin. "
              "Violations here: %d/16\n", failures);
  return failures <= 2 ? 0 : 1;  // tolerate noise on two cells
}
