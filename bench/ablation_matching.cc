// Ablation: greedy best-match (the deployed §4.5 matcher) vs optimal
// one-to-one assignment (the Minimum-Cost-Flow direction of the paper's
// future work, §6) for extracting trending news topics.
#include <cstdio>
#include <set>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/assignment.h"

using namespace newsdiff;

int main() {
  std::printf("=== Ablation: greedy vs optimal topic-event matching "
              "(paper §6 future work) ===\n\n");
  bench::BenchContext ctx;
  const core::PipelineResult& r = ctx.pipeline_result();

  core::TrendingOptions opts;  // paper threshold 0.7
  double greedy_seconds = 0.0;
  auto greedy = bench::Timed(&greedy_seconds, [&] {
    return core::ExtractTrendingTopics(r.topics, r.news_events, ctx.store(),
                                       opts);
  });
  double optimal_seconds = 0.0;
  auto optimal = bench::Timed(&optimal_seconds, [&] {
    return core::ExtractTrendingTopicsOptimal(r.topics, r.news_events,
                                              ctx.store(), opts);
  });

  auto stats = [](const std::vector<core::TrendingNewsTopic>& trending) {
    double total = 0.0;
    std::set<size_t> events;
    for (const core::TrendingNewsTopic& t : trending) {
      total += t.similarity;
      events.insert(t.news_event);
    }
    return std::make_tuple(trending.size(), events.size(), total);
  };
  auto [g_pairs, g_events, g_total] = stats(greedy);
  auto [o_pairs, o_events, o_total] = stats(optimal);

  TablePrinter table({"Matcher", "Trending topics", "Distinct news events",
                      "Total similarity", "Seconds"});
  table.AddRow({"Greedy best match (deployed)", std::to_string(g_pairs),
                std::to_string(g_events), FormatDouble(g_total, 2),
                FormatDouble(greedy_seconds, 3)});
  table.AddRow({"Hungarian assignment (future work)",
                std::to_string(o_pairs), std::to_string(o_events),
                FormatDouble(o_total, 2), FormatDouble(optimal_seconds, 3)});
  table.Print();

  std::printf("\nThe optimal matcher never assigns two topics to one news "
              "event (distinct events == pairs: %s), at the price of a "
              "slightly lower per-pair similarity.\n",
              o_pairs == o_events ? "yes" : "NO");
  return o_pairs == o_events ? 0 : 1;
}
