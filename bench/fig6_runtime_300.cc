// Reproduces Figure 6 (§5.7): per-epoch training time for the four
// networks at Doc2Vec size 300 as the number of Twitter events grows.
// Reuses the cached Table 10 sweep when available.
#include <cstdio>

#include "bench/harness.h"

using namespace newsdiff;

namespace {

int RenderFigure(size_t doc2vec_size) {
  bench::BenchContext ctx;
  std::vector<bench::ScalabilityRow> rows = bench::ScalabilitySweep(ctx);

  double max_ms = 0.0;
  for (const bench::ScalabilityRow& r : rows) {
    if (r.doc2vec_size == doc2vec_size && r.millis_per_epoch > max_ms) {
      max_ms = r.millis_per_epoch;
    }
  }

  for (const char* net : {"MLP 1", "MLP 2", "CNN 1", "CNN 2"}) {
    std::printf("%s\n", net);
    for (size_t events : {size_t{500}, size_t{2500}, size_t{5000}}) {
      for (const bench::ScalabilityRow& r : rows) {
        if (r.doc2vec_size == doc2vec_size && r.network == net &&
            r.num_events == events) {
          std::printf("  %5zu events |%s| %.1f ms/epoch (%zu epochs)\n",
                      events,
                      bench::AsciiBar(r.millis_per_epoch, max_ms, 40).c_str(),
                      r.millis_per_epoch, r.epochs);
        }
      }
    }
    std::printf("\n");
  }

  // Shape: CNN per-epoch time grows with events; MLP grows much less.
  auto ms_at = [&](const char* net, size_t events) {
    for (const bench::ScalabilityRow& r : rows) {
      if (r.doc2vec_size == doc2vec_size && r.network == net &&
          r.num_events == events) {
        return r.millis_per_epoch;
      }
    }
    return 0.0;
  };
  double cnn_growth = ms_at("CNN 1", 5000) / std::max(ms_at("CNN 1", 500), 1e-9);
  std::printf("CNN 1 per-epoch growth 500 -> 5000 events: %.1fx "
              "(paper: ~4.8x; must grow)\n", cnn_growth);
  return cnn_growth > 1.5 ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("=== Figure 6: Performance time, 300-dimension Doc2Vec ===\n\n");
  return RenderFigure(300);
}
