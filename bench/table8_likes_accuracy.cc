// Reproduces Table 8 (§5.6): validation accuracy for predicting the
// Table-2 *likes* class over the eight dataset variants (A1..D2) and the
// four tuned networks (MLP/CNN x SGD/ADADELTA). The absolute numbers track
// the paper's 0.73-0.85 band; the load-bearing shape is that every
// metadata-enhanced variant (A2..D2) beats its plain twin (A1..D1).
#include <cstdio>

#include "bench/accuracy_table_common.h"

using namespace newsdiff;

int main() {
  std::printf("=== Table 8: Likes accuracy of correlated results ===\n\n");
  bench::BenchContext ctx;
  std::vector<bench::AccuracyCell> grid = bench::AccuracyGrid(ctx, "likes");
  return bench::PrintAccuracyTable("Measured (validation accuracy, likes):",
                                   grid, bench::PaperLikes());
}
