// Reproduces Figure 7 (§5.7): per-epoch training time for the four
// networks at Doc2Vec size 308 (embedding + metadata) as the number of
// Twitter events grows. Reuses the cached Table 10 sweep.
#include <algorithm>
#include <cstdio>

#include "bench/harness.h"

using namespace newsdiff;

int main() {
  std::printf("=== Figure 7: Performance time, 308-dimension Doc2Vec ===\n\n");
  bench::BenchContext ctx;
  std::vector<bench::ScalabilityRow> rows = bench::ScalabilitySweep(ctx);

  double max_ms = 0.0;
  for (const bench::ScalabilityRow& r : rows) {
    if (r.doc2vec_size == 308 && r.millis_per_epoch > max_ms) {
      max_ms = r.millis_per_epoch;
    }
  }

  for (const char* net : {"MLP 1", "MLP 2", "CNN 1", "CNN 2"}) {
    std::printf("%s\n", net);
    for (size_t events : {size_t{500}, size_t{2500}, size_t{5000}}) {
      for (const bench::ScalabilityRow& r : rows) {
        if (r.doc2vec_size == 308 && r.network == net &&
            r.num_events == events) {
          std::printf("  %5zu events |%s| %.1f ms/epoch (%zu epochs)\n",
                      events,
                      bench::AsciiBar(r.millis_per_epoch, max_ms, 40).c_str(),
                      r.millis_per_epoch, r.epochs);
        }
      }
    }
    std::printf("\n");
  }

  // Shape: at 308 dimensions (as at 300), the CNN epoch grows with the
  // event count and stays costlier than the MLP epoch at every scale.
  // (The paper's 308-vs-300 delta is ~3% of an epoch — below single-run
  // timing noise here, so the cross-dimension comparison is reported above
  // but not gated on.)
  auto ms_at = [&](const char* net, size_t events) {
    for (const bench::ScalabilityRow& r : rows) {
      if (r.doc2vec_size == 308 && r.network == net &&
          r.num_events == events) {
        return r.millis_per_epoch;
      }
    }
    return 0.0;
  };
  double cnn_growth =
      ms_at("CNN 1", 5000) / std::max(ms_at("CNN 1", 500), 1e-9);
  bool cnn_above_mlp = true;
  for (size_t events : {size_t{500}, size_t{2500}, size_t{5000}}) {
    if (ms_at("CNN 1", events) < ms_at("MLP 1", events)) {
      cnn_above_mlp = false;
    }
  }
  std::printf("CNN 1 per-epoch growth 500 -> 5000 events at 308d: %.1fx; "
              "CNN epoch costlier than MLP at every scale: %s\n",
              cnn_growth, cnn_above_mlp ? "yes" : "no");
  return (cnn_growth > 1.5 && cnn_above_mlp) ? 0 : 1;
}
