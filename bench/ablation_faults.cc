// Ablation: crawler resilience under increasing upstream fault rates. Runs
// the fault-injected feeds against the hardened FeedCrawler (retry with
// backoff + circuit breakers + durable cursors) and reports how much retry
// work each fault level costs and whether the ingested store still matches
// the fault-free crawl exactly. Uses a ManualClock, so backoff schedules and
// breaker cooldowns elapse in simulated time and the wall-clock column
// measures pure compute.
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "common/table_printer.h"
#include "common/time.h"
#include "datagen/faults.h"
#include "datagen/feeds.h"
#include "datagen/world.h"
#include "store/database.h"
#include "store/json.h"

using namespace newsdiff;

namespace {

datagen::World BenchWorld() {
  // Dense enough that the tweet feed serves full pages (the precondition
  // for duplicate-delivery injection) while staying laptop-quick.
  datagen::WorldOptions opts;
  opts.seed = 21;
  opts.num_users = 200;
  opts.num_articles = 2000;
  opts.num_tweets = 24000;
  opts.duration_days = 14;
  return datagen::GenerateWorld(opts);
}

std::string Fingerprint(store::Database& db, const std::string& name) {
  std::string out;
  store::Collection* coll = db.Get(name);
  if (coll == nullptr) return out;
  for (const store::Value& doc : coll->All()) {
    out += store::ToJson(doc);
    out += '\n';
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: crawler resilience vs upstream fault rate "
              "===\n\n");
  datagen::World world = BenchWorld();
  UnixSeconds end =
      world.options.start_time + (world.options.duration_days + 1) *
                                     kSecondsPerDay;

  store::Database clean_db;
  datagen::FeedCrawler clean(world, clean_db);
  clean.CrawlUntil(end);
  const std::string clean_news = Fingerprint(clean_db, "news");
  const std::string clean_tweets = Fingerprint(clean_db, "tweets");

  TablePrinter table({"Fault rate", "Cycles", "Retries", "Rate-limited",
                      "Timeouts", "Breaker trips", "Dup pages",
                      "Corrupt bodies", "Rounds", "Wall ms", "Store match"});
  for (double rate : {0.0, 0.05, 0.10, 0.20}) {
    datagen::FaultOptions fopts;
    fopts.seed = 2021;
    fopts.transient_failure_rate = rate;
    fopts.rate_limit_rate = rate / 2;
    fopts.timeout_rate = rate / 4;
    fopts.corrupt_body_rate = rate / 2;
    fopts.duplicate_page_rate = rate / 2;
    fopts.shuffle_page_rate = rate / 2;

    ManualClock clock;
    datagen::FaultInjector injector(fopts, &clock);
    datagen::DirectNewsFeed direct_news(world);
    datagen::DirectBodyFetcher direct_scraper(world);
    datagen::DirectTweetFeed direct_twitter(world);
    datagen::FaultyNewsFeed news(direct_news, injector);
    datagen::FaultyBodyFetcher scraper(direct_scraper, injector);
    datagen::FaultyTweetFeed twitter(direct_twitter, injector);

    store::Database db;
    datagen::FeedCrawler crawler(world, db, news, scraper, twitter, clock);
    datagen::FeedCrawler::CrawlStats total;
    size_t rounds = 0;
    // A crawl round can abort on retry exhaustion during a long outage
    // streak; the durable cursors make simply calling CrawlUntil again the
    // recovery procedure, so the bench loops until completion.
    double wall_ms = 1000.0 * bench::TimedSeconds([&] {
      for (; rounds < 50; ++rounds) {
        datagen::FeedCrawler::CrawlStats s = crawler.CrawlUntil(end);
        total.cycles += s.cycles;
        total.retries += s.retries;
        total.rate_limited += s.rate_limited;
        total.timeouts += s.timeouts;
        total.breaker_trips += s.breaker_trips;
        total.duplicate_pages += s.duplicate_pages;
        total.corrupt_payloads += s.corrupt_payloads;
        total.status = s.status;
        if (s.status.ok()) break;
      }
    });

    bool match = total.status.ok() &&
                 Fingerprint(db, "news") == clean_news &&
                 Fingerprint(db, "tweets") == clean_tweets;
    char rate_buf[16], wall_buf[24];
    std::snprintf(rate_buf, sizeof(rate_buf), "%.2f", rate);
    std::snprintf(wall_buf, sizeof(wall_buf), "%.1f", wall_ms);
    table.AddRow({rate_buf, std::to_string(total.cycles),
                  std::to_string(total.retries),
                  std::to_string(total.rate_limited),
                  std::to_string(total.timeouts),
                  std::to_string(total.breaker_trips),
                  std::to_string(total.duplicate_pages),
                  std::to_string(total.corrupt_payloads),
                  std::to_string(rounds + 1), wall_buf,
                  match ? "exact" : "DIVERGED"});
  }
  table.Print();
  return 0;
}
