// Reproduces Figure 5 (§5.6): retweets accuracy, without vs with metadata,
// as grouped ASCII bars. Reuses the cached Table 9 grid when available.
#include <cstdio>

#include "bench/accuracy_table_common.h"

using namespace newsdiff;

int main() {
  std::printf(
      "=== Figure 5: Retweets accuracy, without vs with metadata ===\n\n");
  bench::BenchContext ctx;
  std::vector<bench::AccuracyCell> grid =
      bench::AccuracyGrid(ctx, "retweets");

  int failures = 0;
  for (const std::string& net : bench::NetworkNames()) {
    std::printf("%s\n", net.c_str());
    for (const char* letter : {"A", "B", "C", "D"}) {
      const bench::AccuracyCell* lo =
          bench::FindCell(grid, std::string(letter) + "1", net);
      const bench::AccuracyCell* hi =
          bench::FindCell(grid, std::string(letter) + "2", net);
      if (lo == nullptr || hi == nullptr) continue;
      std::printf("  %s1 |%s| %.2f\n", letter,
                  bench::AsciiBar(lo->accuracy, 1.0, 40).c_str(),
                  lo->accuracy);
      std::printf("  %s2 |%s| %.2f %s\n", letter,
                  bench::AsciiBar(hi->accuracy, 1.0, 40).c_str(),
                  hi->accuracy, hi->accuracy > lo->accuracy ? "" : "  <-- no lift");
      if (hi->accuracy <= lo->accuracy) ++failures;
    }
    std::printf("\n");
  }
  std::printf("Paper shape: every metadata bar exceeds its plain twin. "
              "Violations here: %d/16\n", failures);
  return failures <= 2 ? 0 : 1;
}
