// Reproduces Table 9 (§5.6): validation accuracy for predicting the
// Table-2 *retweets* class over the eight dataset variants and the four
// tuned networks.
#include <cstdio>

#include "bench/accuracy_table_common.h"

using namespace newsdiff;

int main() {
  std::printf("=== Table 9: Retweets accuracy of correlated results ===\n\n");
  bench::BenchContext ctx;
  std::vector<bench::AccuracyCell> grid =
      bench::AccuracyGrid(ctx, "retweets");
  return bench::PrintAccuracyTable(
      "Measured (validation accuracy, retweets):", grid,
      bench::PaperRetweets());
}
