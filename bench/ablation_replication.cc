// Ablation: WAL-tailing replication. Stage one (`catchup_delta`) meters
// the bytes a caught-up replica reads to absorb a 1% writer delta against
// the bytes a cold bootstrap pays, and gates on the incremental path being
// at least 5x cheaper — the tailer really is O(delta), not O(store).
// Stage two (`staleness`) follows a live writer through >=10% injected
// read faults on a ManualClock and reports the worst observed staleness,
// gating on the replica always re-proving freshness within a bounded
// window and ending provably caught up. Stage three (`chaos_failover`)
// kills the writer at every single io operation, promotes the replica
// under the same read chaos, and gates on the promoted store being
// byte-identical to the writer's acknowledged synced prefix with the
// revived stale writer fenced every time. Results land in
// BENCH_replication.json (see --out).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/table_printer.h"
#include "datagen/faults.h"
#include "store/database.h"
#include "store/json.h"
#include "store/lease.h"
#include "store/replica.h"
#include "store/wal.h"

using namespace newsdiff;

namespace {

namespace fs = std::filesystem;

/// Forwarding FileIo that meters the replica's read traffic: whole-file
/// loads (bootstrap) and incremental tail reads (catch-up) separately.
class ReadMeterIo : public FileIo {
 public:
  explicit ReadMeterIo(FileIo& inner) : inner_(&inner) {}

  Status WriteFile(const std::string& path,
                   const std::string& contents) override {
    return inner_->WriteFile(path, contents);
  }
  Status AppendFile(const std::string& path,
                    const std::string& contents) override {
    return inner_->AppendFile(path, contents);
  }
  StatusOr<std::string> ReadFile(const std::string& path) override {
    StatusOr<std::string> got = inner_->ReadFile(path);
    if (got.ok()) bytes_read_ += got->size();
    return got;
  }
  StatusOr<std::string> ReadFileFrom(const std::string& path,
                                     uint64_t offset) override {
    StatusOr<std::string> got = inner_->ReadFileFrom(path, offset);
    if (got.ok()) bytes_read_ += got->size();
    return got;
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return inner_->Rename(from, to);
  }
  Status Remove(const std::string& path) override {
    return inner_->Remove(path);
  }
  Status CreateDirectories(const std::string& dir) override {
    return inner_->CreateDirectories(dir);
  }
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    return inner_->ListDir(dir);
  }
  bool Exists(const std::string& path) override {
    return inner_->Exists(path);
  }

  void Reset() { bytes_read_ = 0; }
  size_t bytes_read() const { return bytes_read_; }

 private:
  FileIo* inner_;
  size_t bytes_read_ = 0;
};

std::string Fingerprint(const store::Database& db) {
  std::string out;
  for (const std::string& name : db.CollectionNames()) {
    const store::Collection* coll = db.Get(name);
    out += "== " + name + " slots=" + std::to_string(coll->slot_count()) +
           "\n";
    for (const store::Value& doc : coll->All()) {
      out += store::ToJson(doc) + "\n";
    }
  }
  return out;
}

/// The scripted insert/upsert/remove mix the WAL crash sweeps use: one log
/// record per step, so synced-record counts index reference states.
bool ApplyOp(store::Database& db, int j) {
  store::Collection& articles = db.GetOrCreate("articles");
  if (j % 7 == 3 && j >= 3) {
    return articles
        .Upsert(store::Filter().Eq("k",
                                   store::Value(static_cast<int64_t>(j - 3))),
                store::MakeObject({{"k", static_cast<int64_t>(j - 3)},
                                   {"v", static_cast<int64_t>(j * 100)}}))
        .ok();
  }
  if (j % 5 == 4 && (j - 1) % 7 != 3) {
    return articles.Remove(store::Filter().Eq(
               "k", store::Value(static_cast<int64_t>(j - 1)))) == 1;
  }
  return articles
      .Insert(store::MakeObject({{"k", static_cast<int64_t>(j)},
                                 {"v", static_cast<int64_t>(j)}}))
      .ok();
}

constexpr int kScriptOps = 30;

std::vector<std::string> ReferenceStates() {
  std::vector<std::string> states;
  store::Database db;
  states.push_back(Fingerprint(db));
  for (int j = 0; j < kScriptOps; ++j) {
    ApplyOp(db, j);
    states.push_back(Fingerprint(db));
  }
  return states;
}

datagen::StorageFaultOptions ReplicaFaults(uint64_t seed) {
  datagen::StorageFaultOptions faults;
  faults.seed = seed;
  faults.read_failure_rate = 0.10;
  faults.read_tear_rate = 0.10;
  faults.read_flip_rate = 0.05;
  return faults;
}

// -------------------------------------------------------------------------
// Stage one: catch-up bytes are O(delta).

struct CatchupDelta {
  size_t docs = 0;
  size_t delta_docs = 0;
  size_t bootstrap_bytes = 0;  // cold replica: snapshot + full tail
  size_t catchup_bytes = 0;    // caught-up replica absorbing the delta
  double bytes_ratio = 0.0;    // bootstrap_bytes / catchup_bytes
};

constexpr double kMinCatchupRatio = 5.0;

StatusOr<CatchupDelta> RunCatchupDelta(const fs::path& root) {
  CatchupDelta r;
  const std::string dir = (root / "catchup").string();
  fs::remove_all(dir);

  store::Database db;
  store::WalOptions wal;
  NEWSDIFF_RETURN_IF_ERROR(db.AttachWal(dir, wal));
  store::Collection& articles = db.GetOrCreate("articles");
  r.docs = 2000;
  for (size_t i = 0; i < r.docs; ++i) {
    StatusOr<store::DocId> id = articles.Insert(store::MakeObject(
        {{"k", static_cast<int64_t>(i)},
         {"score", static_cast<int64_t>(i * 17 % 1000)},
         {"bucket", static_cast<int64_t>(i % 24)}}));
    if (!id.ok()) return id.status();
  }
  NEWSDIFF_RETURN_IF_ERROR(db.WalSync());
  NEWSDIFF_RETURN_IF_ERROR(db.Checkpoint());

  // Cold bootstrap: the replica loads the checkpoint and replays the tail.
  ReadMeterIo rio(DefaultFileIo());
  store::ReplicaOptions opts;
  opts.snapshot.io = &rio;
  store::Database rdb;
  store::Replica rep(dir, &rdb, opts);
  NEWSDIFF_RETURN_IF_ERROR(rep.Poll());
  if (!rep.stats().caught_up) {
    return Status::Internal("replica not caught up after bootstrap");
  }
  r.bootstrap_bytes = rio.bytes_read();

  // A 1% metadata refresh, then one incremental poll.
  r.delta_docs = r.docs / 100;
  for (size_t i = 0; i < r.delta_docs; ++i) {
    articles.UpdateSet(
        store::Filter().Eq("k", store::Value(static_cast<int64_t>(i))),
        "touched", store::Value(static_cast<int64_t>(1)));
  }
  NEWSDIFF_RETURN_IF_ERROR(db.WalSync());
  rio.Reset();
  NEWSDIFF_RETURN_IF_ERROR(rep.Poll());
  if (!rep.stats().caught_up) {
    return Status::Internal("replica not caught up after delta poll");
  }
  r.catchup_bytes = rio.bytes_read();
  if (Fingerprint(rdb) != Fingerprint(db)) {
    return Status::Internal("replica diverged from writer");
  }

  r.bytes_ratio = r.catchup_bytes > 0
                      ? static_cast<double>(r.bootstrap_bytes) /
                            static_cast<double>(r.catchup_bytes)
                      : 0.0;
  return r;
}

// -------------------------------------------------------------------------
// Stage two: bounded staleness through read chaos.

struct StalenessRun {
  size_t ticks = 0;
  int64_t tick_ms = 0;
  size_t read_failures = 0;
  int64_t max_staleness_ms = 0;
  int64_t final_staleness_ms = 0;
  bool caught_up = false;
};

constexpr int64_t kStalenessBoundMs = 2000;

StatusOr<StalenessRun> RunStaleness(const fs::path& root) {
  StalenessRun r;
  r.ticks = 200;
  r.tick_ms = 100;
  const std::string dir = (root / "staleness").string();
  fs::remove_all(dir);

  ManualClock clock;
  store::Database db;
  store::WalOptions wal;
  wal.clock = &clock;
  wal.sync_every_records = 1;
  NEWSDIFF_RETURN_IF_ERROR(db.AttachWal(dir, wal));

  datagen::FaultyFileIo rio(DefaultFileIo(), ReplicaFaults(4242));
  store::ReplicaOptions opts;
  opts.snapshot.io = &rio;
  opts.clock = &clock;
  store::Database rdb;
  store::Replica rep(dir, &rdb, opts);

  // One synced record and one poll per tick; a poll that hits a fault (or
  // a torn read) cannot prove freshness, so staleness accrues until the
  // next clean poll — the gate bounds how long that ever takes.
  for (size_t t = 0; t < r.ticks; ++t) {
    clock.Advance(r.tick_ms);
    if (!ApplyOp(db, static_cast<int>(t) % kScriptOps)) {
      return Status::Internal("writer op failed");
    }
    const Status polled = rep.Poll();
    (void)polled;  // transient faults retry on the next tick
    r.max_staleness_ms = std::max(r.max_staleness_ms,
                                  rep.stats().staleness_ms);
  }
  for (int i = 0; i < 200 && !rep.stats().caught_up; ++i) {
    const Status polled = rep.Poll();
    (void)polled;
  }
  r.caught_up = rep.stats().caught_up;
  r.final_staleness_ms = rep.stats().staleness_ms;
  if (rep.tailer_stats() != nullptr) {
    r.read_failures = rep.tailer_stats()->read_failures;
  }
  if (Fingerprint(rdb) != Fingerprint(db)) {
    return Status::Internal("replica diverged from writer");
  }
  return r;
}

// -------------------------------------------------------------------------
// Stage three: failover chaos sweep.

struct ChaosFailover {
  size_t crash_points = 0;
  size_t promoted = 0;
  size_t exact = 0;   // promoted store == writer's synced prefix
  size_t fenced = 0;  // revived stale writer rejected at its next sync
  size_t fence_checks = 0;
  double wall_ms = 0.0;
};

StatusOr<ChaosFailover> RunChaosFailover(const fs::path& root) {
  ChaosFailover r;
  const std::vector<std::string> states = ReferenceStates();

  // Dry run on a clean io to count the writer's operations.
  size_t total_ops = 0;
  {
    const std::string d = (root / "chaos_dry").string();
    fs::remove_all(d);
    fs::create_directories(d);
    ManualClock clock;
    datagen::FaultyFileIo wio(DefaultFileIo(), {});
    store::LeaseOptions lease_opts;
    lease_opts.io = &wio;
    lease_opts.clock = &clock;
    lease_opts.owner = "writer";
    lease_opts.ttl_ms = 1'000;
    StatusOr<store::Lease> lease = store::Lease::Acquire(d, lease_opts);
    NEWSDIFF_RETURN_IF_ERROR(lease.status());
    store::WalOptions wal;
    wal.io = &wio;
    wal.clock = &clock;
    wal.sync_every_records = 1;
    wal.write_gate = [&]() { return lease->Check(); };
    store::SnapshotOptions snap;
    snap.io = &wio;
    store::Database db;
    NEWSDIFF_RETURN_IF_ERROR(db.AttachWal(d, wal));
    for (int j = 0; j < kScriptOps; ++j) {
      if (!ApplyOp(db, j)) return Status::Internal("dry-run op failed");
      if (j == kScriptOps / 2) {
        NEWSDIFF_RETURN_IF_ERROR(db.Checkpoint(snap));
      }
    }
    total_ops = wio.counters().ops;
  }

  Status sweep_error = Status::OK();
  r.wall_ms = 1000.0 * bench::TimedSeconds([&] {
    for (size_t k = 0; k <= total_ops; ++k) {
      const std::string d =
          (root / ("chaos_" + std::to_string(k))).string();
      fs::create_directories(d);
      ManualClock clock;
      datagen::StorageFaultOptions writer_faults;
      writer_faults.crash_after_ops = k;
      datagen::FaultyFileIo wio(DefaultFileIo(), writer_faults);
      datagen::FaultyFileIo rio(DefaultFileIo(), ReplicaFaults(5'000 + k));

      store::ReplicaOptions replica_opts;
      replica_opts.snapshot.io = &rio;
      replica_opts.clock = &clock;
      replica_opts.promote_drain_polls = 8;
      replica_opts.promote_attempts = 16;
      store::Database rdb;
      store::Replica rep(d, &rdb, replica_opts);

      store::LeaseOptions lease_opts;
      lease_opts.io = &wio;
      lease_opts.clock = &clock;
      lease_opts.owner = "writer";
      lease_opts.ttl_ms = 1'000;
      StatusOr<store::Lease> lease = store::Lease::Acquire(d, lease_opts);
      store::Database db;
      bool writing = false;
      size_t synced = 0;
      if (lease.ok()) {
        store::WalOptions wal;
        wal.io = &wio;
        wal.clock = &clock;
        wal.sync_every_records = 1;
        wal.write_gate = [&]() { return lease->Check(); };
        writing = db.AttachWal(d, wal).ok();
      }
      if (writing) {
        store::SnapshotOptions snap;
        snap.io = &wio;
        for (int j = 0; j < kScriptOps; ++j) {
          ApplyOp(db, j);
          if (j == kScriptOps / 2) {
            const Status checkpointed = db.Checkpoint(snap);
            (void)checkpointed;  // best-effort once the crash hits
          }
          if (j % 2 == 1) {
            const Status polled = rep.Poll();
            (void)polled;
          }
        }
        synced = db.wal()->stats().records_synced;
      }

      wio.Reboot();
      clock.Advance(5'000);
      store::LeaseOptions promote_opts;
      promote_opts.owner = "replica";
      promote_opts.ttl_ms = 60'000;
      StatusOr<uint64_t> token = rep.Promote(promote_opts);
      if (!token.ok()) {
        sweep_error = token.status();
        fs::remove_all(d);
        continue;
      }
      ++r.promoted;

      const std::string got = Fingerprint(rdb);
      const bool header_only =
          synced == 0 && got == "== articles slots=0\n";
      if (synced < states.size() && (got == states[synced] || header_only)) {
        ++r.exact;
      }
      if (writing) {
        ++r.fence_checks;
        const size_t synced_before = db.wal()->stats().records_synced;
        db.GetOrCreate("articles")
            .Insert(store::MakeObject({{"k", static_cast<int64_t>(777)}}));
        if (db.WalSync().code() == StatusCode::kFailedPrecondition &&
            db.wal()->stats().records_synced == synced_before) {
          ++r.fenced;
        }
      }
      fs::remove_all(d);
    }
  });
  NEWSDIFF_RETURN_IF_ERROR(sweep_error);
  r.crash_points = total_ops + 1;
  return r;
}

bool WriteJson(const CatchupDelta& c, const StalenessRun& s,
               const ChaosFailover& f, bool gates_ok,
               const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"gate_min_catchup_ratio\": %.1f,\n",
               kMinCatchupRatio);
  std::fprintf(out, "  \"gate_staleness_bound_ms\": %lld,\n",
               static_cast<long long>(kStalenessBoundMs));
  std::fprintf(out, "  \"gates_ok\": %s,\n", gates_ok ? "true" : "false");
  std::fprintf(out, "  \"catchup_delta\": {\n");
  std::fprintf(out, "    \"docs\": %zu,\n", c.docs);
  std::fprintf(out, "    \"delta_docs\": %zu,\n", c.delta_docs);
  std::fprintf(out, "    \"bootstrap_bytes\": %zu,\n", c.bootstrap_bytes);
  std::fprintf(out, "    \"catchup_bytes\": %zu,\n", c.catchup_bytes);
  std::fprintf(out, "    \"bytes_ratio\": %.1f\n", c.bytes_ratio);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"staleness\": {\n");
  std::fprintf(out, "    \"ticks\": %zu,\n", s.ticks);
  std::fprintf(out, "    \"tick_ms\": %lld,\n",
               static_cast<long long>(s.tick_ms));
  std::fprintf(out, "    \"read_failures\": %zu,\n", s.read_failures);
  std::fprintf(out, "    \"max_staleness_ms\": %lld,\n",
               static_cast<long long>(s.max_staleness_ms));
  std::fprintf(out, "    \"final_staleness_ms\": %lld,\n",
               static_cast<long long>(s.final_staleness_ms));
  std::fprintf(out, "    \"caught_up\": %s\n",
               s.caught_up ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"chaos_failover\": {\n");
  std::fprintf(out, "    \"crash_points\": %zu,\n", f.crash_points);
  std::fprintf(out, "    \"promoted\": %zu,\n", f.promoted);
  std::fprintf(out, "    \"exact_prefix\": %zu,\n", f.exact);
  std::fprintf(out, "    \"fence_checks\": %zu,\n", f.fence_checks);
  std::fprintf(out, "    \"fenced\": %zu,\n", f.fenced);
  std::fprintf(out, "    \"wall_ms\": %.1f\n", f.wall_ms);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_replication.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  std::printf("=== Ablation: WAL-tailing replication ===\n\n");
  const fs::path root =
      fs::temp_directory_path() / "newsdiff_ablation_replication";
  fs::remove_all(root);
  fs::create_directories(root);

  auto catchup = RunCatchupDelta(root);
  if (!catchup.ok()) {
    std::printf("catchup_delta stage failed: %s\n",
                catchup.status().ToString().c_str());
    fs::remove_all(root);
    return 1;
  }
  TablePrinter ctable({"Path", "Bytes read"});
  ctable.AddRow({"cold bootstrap (snapshot + tail)",
                 std::to_string(catchup->bootstrap_bytes)});
  ctable.AddRow({"incremental catch-up (1% delta)",
                 std::to_string(catchup->catchup_bytes)});
  ctable.Print();
  std::printf(
      "\n%zu docs, %zu touched (1%%): catch-up reads %.1fx fewer bytes\n"
      "than a cold bootstrap (gate: >= %.1fx).\n\n",
      catchup->docs, catchup->delta_docs, catchup->bytes_ratio,
      kMinCatchupRatio);

  auto staleness = RunStaleness(root);
  if (!staleness.ok()) {
    std::printf("staleness stage failed: %s\n",
                staleness.status().ToString().c_str());
    fs::remove_all(root);
    return 1;
  }
  std::printf(
      "=== staleness: %zu ticks x %lldms through injected read faults "
      "===\n\n"
      "read faults hit: %zu, max staleness: %lldms (bound: %lldms),\n"
      "final staleness: %lldms, caught up: %s\n\n",
      staleness->ticks, static_cast<long long>(staleness->tick_ms),
      staleness->read_failures,
      static_cast<long long>(staleness->max_staleness_ms),
      static_cast<long long>(kStalenessBoundMs),
      static_cast<long long>(staleness->final_staleness_ms),
      staleness->caught_up ? "yes" : "NO");

  auto chaos = RunChaosFailover(root);
  if (!chaos.ok()) {
    std::printf("chaos_failover stage failed: %s\n",
                chaos.status().ToString().c_str());
    fs::remove_all(root);
    return 1;
  }
  TablePrinter ftable({"Crash points", "Promoted", "Exact prefix",
                       "Fence checks", "Fenced", "Wall ms"});
  char wall_buf[24];
  std::snprintf(wall_buf, sizeof(wall_buf), "%.1f", chaos->wall_ms);
  ftable.AddRow({std::to_string(chaos->crash_points),
                 std::to_string(chaos->promoted),
                 std::to_string(chaos->exact),
                 std::to_string(chaos->fence_checks),
                 std::to_string(chaos->fenced), wall_buf});
  ftable.Print();
  std::printf(
      "\nWriter killed at every io op under >=10%% replica read faults:\n"
      "every promotion must equal the synced prefix and every revived\n"
      "stale writer must be fenced.\n\n");

  const bool gates_ok =
      catchup->bytes_ratio >= kMinCatchupRatio &&
      staleness->caught_up && staleness->final_staleness_ms == 0 &&
      staleness->max_staleness_ms <= kStalenessBoundMs &&
      chaos->promoted == chaos->crash_points &&
      chaos->exact == chaos->crash_points &&
      chaos->fenced == chaos->fence_checks;
  if (!WriteJson(*catchup, *staleness, *chaos, gates_ok, out_path)) {
    std::printf("failed to write %s\n", out_path.c_str());
    fs::remove_all(root);
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!gates_ok) std::printf("GATE FAILED\n");
  fs::remove_all(root);
  return gates_ok ? 0 : 1;
}
