#include "bench/harness.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "common/time.h"
#include "store/json.h"

namespace newsdiff::bench {
namespace {

constexpr uint64_t kBenchSeed = 2021;

store::Value CellToJson(const AccuracyCell& c) {
  return store::MakeObject({
      {"variant", c.variant},
      {"network", c.network},
      {"accuracy", c.accuracy},
      {"epochs", static_cast<int64_t>(c.epochs)},
      {"seconds", c.seconds},
  });
}

bool CellFromJson(const store::Value& v, AccuracyCell& c) {
  if (!v.is_object()) return false;
  const store::Value* variant = v.Find("variant");
  const store::Value* network = v.Find("network");
  const store::Value* accuracy = v.Find("accuracy");
  if (variant == nullptr || network == nullptr || accuracy == nullptr) {
    return false;
  }
  c.variant = variant->AsString();
  c.network = network->AsString();
  c.accuracy = accuracy->AsDouble();
  if (const store::Value* e = v.Find("epochs")) {
    c.epochs = static_cast<size_t>(e->AsInt());
  }
  if (const store::Value* s = v.Find("seconds")) c.seconds = s->AsDouble();
  return true;
}

store::Value RowToJson(const ScalabilityRow& r) {
  return store::MakeObject({
      {"events", static_cast<int64_t>(r.num_events)},
      {"doc2vec", static_cast<int64_t>(r.doc2vec_size)},
      {"network", r.network},
      {"epochs", static_cast<int64_t>(r.epochs)},
      {"ms_epoch", r.millis_per_epoch},
      {"runtime", r.runtime_seconds},
  });
}

bool RowFromJson(const store::Value& v, ScalabilityRow& r) {
  if (!v.is_object()) return false;
  const store::Value* events = v.Find("events");
  const store::Value* doc2vec = v.Find("doc2vec");
  const store::Value* network = v.Find("network");
  if (events == nullptr || doc2vec == nullptr || network == nullptr) {
    return false;
  }
  r.num_events = static_cast<size_t>(events->AsInt());
  r.doc2vec_size = static_cast<size_t>(doc2vec->AsInt());
  r.network = network->AsString();
  if (const store::Value* e = v.Find("epochs")) {
    r.epochs = static_cast<size_t>(e->AsInt());
  }
  if (const store::Value* m = v.Find("ms_epoch")) {
    r.millis_per_epoch = m->AsDouble();
  }
  if (const store::Value* t = v.Find("runtime")) {
    r.runtime_seconds = t->AsDouble();
  }
  return true;
}

std::optional<store::Value> LoadJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  StatusOr<store::Value> parsed = store::ParseJson(content);
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).value();
}

void SaveJsonFile(const std::string& path, const store::Value& v) {
  std::ofstream out(path, std::ios::trunc);
  out << store::ToJson(v) << '\n';
}

}  // namespace

BenchContext::BenchContext() : cache_dir_("newsdiff_cache") {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir_, ec);
}

const datagen::World& BenchContext::world() {
  if (!world_.has_value()) {
    datagen::WorldOptions opts;
    opts.seed = kBenchSeed;
    opts.num_articles = 3000;
    opts.num_tweets = 9000;
    world_ = datagen::GenerateWorld(opts);
  }
  return *world_;
}

store::Database& BenchContext::db() {
  if (!db_.has_value()) {
    db_.emplace();
    world().LoadInto(*db_);
  }
  return *db_;
}

const embed::PretrainedStore& BenchContext::store() {
  if (!store_.has_value()) {
    auto loaded = core::LoadOrTrainPretrained(cache_dir_ + "/pretrained_300d.txt");
    if (!loaded.ok()) {
      std::fprintf(stderr, "fatal: %s\n", loaded.status().ToString().c_str());
      std::abort();
    }
    store_ = std::move(loaded).value();
  }
  return *store_;
}

const core::PipelineResult& BenchContext::pipeline_result() {
  if (!result_.has_value()) {
    core::Pipeline pipeline{core::PipelineOptions{}};
    auto result = pipeline.Run(db(), store());
    if (!result.ok()) {
      std::fprintf(stderr, "fatal: %s\n", result.status().ToString().c_str());
      std::abort();
    }
    result_ = std::move(result).value();
  }
  return *result_;
}

core::PredictorOptions BenchContext::predictor_options() const {
  core::PredictorOptions o;
  o.max_epochs = 100;
  o.batch_size = 128;
  o.early_stopping = {true, 1e-4, 5};
  o.seed = 99;
  return o;
}

std::vector<AccuracyCell> AccuracyGrid(BenchContext& ctx,
                                       const std::string& target,
                                       bool force_recompute) {
  const std::string cache_path =
      ctx.cache_dir() + "/accuracy_" + target + ".json";
  if (!force_recompute) {
    if (auto cached = LoadJsonFile(cache_path); cached && cached->is_array()) {
      std::vector<AccuracyCell> grid;
      bool ok = true;
      for (const store::Value& v : cached->array()) {
        AccuracyCell c;
        if (!CellFromJson(v, c)) {
          ok = false;
          break;
        }
        grid.push_back(std::move(c));
      }
      if (ok && grid.size() ==
                    core::AllDatasetVariants().size() *
                        core::AllNetworkKinds().size()) {
        return grid;
      }
    }
  }

  const core::PipelineResult& r = ctx.pipeline_result();
  std::vector<AccuracyCell> grid;
  for (core::DatasetVariant variant : core::AllDatasetVariants()) {
    core::TrainingDataset ds =
        core::BuildDataset(variant, r.assignments, r.twitter_events,
                           r.twitter_ed, r.tweets, ctx.store());
    const std::vector<int>& y = target == "likes" ? ds.likes : ds.retweets;
    for (core::NetworkKind kind : core::AllNetworkKinds()) {
      AccuracyCell cell;
      auto outcome = Timed(&cell.seconds, [&] {
        return core::TrainAndEvaluate(ds.x, y, kind, ctx.predictor_options());
      });
      cell.variant = core::DatasetVariantName(variant);
      cell.network = core::NetworkKindName(kind);
      if (outcome.ok()) {
        cell.accuracy = outcome->accuracy;
        cell.epochs = outcome->history.epochs_run;
      } else {
        NEWSDIFF_LOG(Error) << "train failed: "
                            << outcome.status().ToString();
      }
      NEWSDIFF_LOG(Info) << target << " " << cell.variant << " x "
                         << cell.network << ": acc=" << cell.accuracy
                         << " (" << cell.epochs << " epochs, "
                         << cell.seconds << "s)";
      grid.push_back(std::move(cell));
    }
  }

  store::Array arr;
  for (const AccuracyCell& c : grid) arr.push_back(CellToJson(c));
  SaveJsonFile(cache_path, store::Value(std::move(arr)));
  return grid;
}

const AccuracyCell* FindCell(const std::vector<AccuracyCell>& grid,
                             const std::string& variant,
                             const std::string& network) {
  for (const AccuracyCell& c : grid) {
    if (c.variant == variant && c.network == network) return &c;
  }
  return nullptr;
}

std::vector<ScalabilityRow> ScalabilitySweep(BenchContext& ctx,
                                             bool force_recompute) {
  const std::string cache_path = ctx.cache_dir() + "/scalability.json";
  if (!force_recompute) {
    if (auto cached = LoadJsonFile(cache_path); cached && cached->is_array()) {
      std::vector<ScalabilityRow> rows;
      bool ok = true;
      for (const store::Value& v : cached->array()) {
        ScalabilityRow r;
        if (!RowFromJson(v, r)) {
          ok = false;
          break;
        }
        rows.push_back(std::move(r));
      }
      if (ok && !rows.empty()) return rows;
    }
  }

  const core::PipelineResult& pr = ctx.pipeline_result();
  // Base datasets at 300 (no metadata) and 308 (with metadata) dimensions.
  core::TrainingDataset base300 =
      core::BuildDataset(core::DatasetVariant::kA1, pr.assignments,
                         pr.twitter_events, pr.twitter_ed, pr.tweets,
                         ctx.store());
  core::TrainingDataset base308 =
      core::BuildDataset(core::DatasetVariant::kA2, pr.assignments,
                         pr.twitter_events, pr.twitter_ed, pr.tweets,
                         ctx.store());

  std::vector<ScalabilityRow> rows;
  Rng rng(7);
  for (size_t num_events : {size_t{500}, size_t{2500}, size_t{5000}}) {
    // Dataset size scales with the number of events: each event contributes
    // ~2 tweets here (the bench world is smaller than the paper's crawl,
    // the scaling relationship is what matters).
    size_t target_rows = num_events * 2;
    for (const core::TrainingDataset* base : {&base300, &base308}) {
      la::Matrix x(target_rows, base->x.cols());
      std::vector<int> y(target_rows);
      for (size_t i = 0; i < target_rows; ++i) {
        size_t src = rng.NextBelow(base->x.rows());
        std::copy(base->x.RowPtr(src), base->x.RowPtr(src) + base->x.cols(),
                  x.RowPtr(i));
        y[i] = base->likes[src];
      }
      for (core::NetworkKind kind : core::AllNetworkKinds()) {
        core::PredictorOptions o = ctx.predictor_options();
        o.batch_size = 5000;  // the paper's batch size (§5.7)
        // The paper caps at 500 epochs with a Keras EarlyStopping that only
        // fires when the loss stops *decreasing at all* (min_delta 0) —
        // that is what lets the MLPs run for hundreds of epochs while the
        // CNNs stop after a handful. We keep min_delta 0 and trim the cap
        // to 150 to fit the single-core budget.
        o.max_epochs = 150;
        o.early_stopping = {true, 0.0, 3};
        o.max_restarts = 0;      // timing run: no restart policy
        o.clip_norm = 0.0;       // plain Keras semantics (no clipping)
        o.standardize = false;   // raw Doc2Vec features, as in the paper
        auto outcome = core::TrainAndEvaluate(x, y, kind, o);
        ScalabilityRow row;
        row.num_events = num_events;
        row.doc2vec_size = base->x.cols();
        row.network = core::NetworkKindName(kind);
        if (outcome.ok()) {
          row.epochs = outcome->history.epochs_run;
          double total_ms = 0.0;
          for (double ms : outcome->history.epoch_millis) total_ms += ms;
          row.millis_per_epoch =
              row.epochs > 0 ? total_ms / static_cast<double>(row.epochs)
                             : 0.0;
          row.runtime_seconds = outcome->history.total_seconds;
        }
        NEWSDIFF_LOG(Info) << "scalability events=" << row.num_events
                           << " d=" << row.doc2vec_size << " "
                           << row.network << ": epochs=" << row.epochs
                           << " ms/epoch=" << row.millis_per_epoch;
        rows.push_back(std::move(row));
      }
    }
  }

  store::Array arr;
  for (const ScalabilityRow& r : rows) arr.push_back(RowToJson(r));
  SaveJsonFile(cache_path, store::Value(std::move(arr)));
  return rows;
}

double TimedSeconds(const std::function<void()>& fn) {
  WallTimer timer;
  fn();
  return timer.ElapsedSeconds();
}

std::string AsciiBar(double value, double max_value, size_t width) {
  if (max_value <= 0.0) max_value = 1.0;
  size_t filled = static_cast<size_t>(
      (value / max_value) * static_cast<double>(width) + 0.5);
  if (filled > width) filled = width;
  std::string bar(filled, '#');
  bar.append(width - filled, ' ');
  return bar;
}

}  // namespace newsdiff::bench
