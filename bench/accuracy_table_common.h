#ifndef NEWSDIFF_BENCH_ACCURACY_TABLE_COMMON_H_
#define NEWSDIFF_BENCH_ACCURACY_TABLE_COMMON_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"

namespace newsdiff::bench {

/// Paper values for Tables 8 (likes) and 9 (retweets):
/// variant -> {MLP 1, MLP 2, CNN 1, CNN 2}.
inline const std::map<std::string, std::vector<double>>& PaperLikes() {
  static const auto* kTable = new std::map<std::string, std::vector<double>>{
      {"A1", {0.74, 0.75, 0.76, 0.76}}, {"A2", {0.83, 0.83, 0.82, 0.84}},
      {"B1", {0.74, 0.75, 0.75, 0.73}}, {"B2", {0.83, 0.84, 0.82, 0.83}},
      {"C1", {0.77, 0.74, 0.78, 0.78}}, {"C2", {0.83, 0.82, 0.83, 0.83}},
      {"D1", {0.73, 0.74, 0.75, 0.74}}, {"D2", {0.82, 0.83, 0.82, 0.83}},
  };
  return *kTable;
}

inline const std::map<std::string, std::vector<double>>& PaperRetweets() {
  static const auto* kTable = new std::map<std::string, std::vector<double>>{
      {"A1", {0.77, 0.78, 0.78, 0.79}}, {"A2", {0.84, 0.84, 0.85, 0.84}},
      {"B1", {0.75, 0.74, 0.73, 0.73}}, {"B2", {0.84, 0.84, 0.83, 0.83}},
      {"C1", {0.76, 0.77, 0.79, 0.80}}, {"C2", {0.82, 0.82, 0.84, 0.84}},
      {"D1", {0.74, 0.74, 0.76, 0.79}}, {"D2", {0.82, 0.82, 0.82, 0.84}},
  };
  return *kTable;
}

inline const std::vector<std::string>& NetworkNames() {
  static const auto* kNames =
      new std::vector<std::string>{"MLP 1", "MLP 2", "CNN 1", "CNN 2"};
  return *kNames;
}

/// Prints the measured grid next to the paper grid and the key shape
/// statistic: the mean metadata lift (X2 minus X1, averaged over letters
/// and networks). Returns 0 when the lift is positive, as in the paper.
inline int PrintAccuracyTable(
    const std::string& title, const std::vector<AccuracyCell>& grid,
    const std::map<std::string, std::vector<double>>& paper) {
  TablePrinter table({"Dataset", "MLP 1", "MLP 2", "CNN 1", "CNN 2",
                      "paper MLP1/MLP2/CNN1/CNN2"});
  for (const auto& [variant, paper_row] : paper) {
    std::vector<std::string> row{variant};
    for (const std::string& net : NetworkNames()) {
      const AccuracyCell* cell = FindCell(grid, variant, net);
      row.push_back(cell != nullptr ? newsdiff::FormatDouble(cell->accuracy, 2)
                                    : "-");
    }
    std::string ref;
    for (size_t i = 0; i < paper_row.size(); ++i) {
      if (i > 0) ref += " / ";
      ref += newsdiff::FormatDouble(paper_row[i], 2);
    }
    row.push_back(ref);
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", title.c_str());
  table.Print();

  // Metadata lift.
  double lift = 0.0;
  size_t n = 0;
  for (const char* letter : {"A", "B", "C", "D"}) {
    for (const std::string& net : NetworkNames()) {
      const AccuracyCell* lo = FindCell(grid, std::string(letter) + "1", net);
      const AccuracyCell* hi = FindCell(grid, std::string(letter) + "2", net);
      if (lo != nullptr && hi != nullptr) {
        lift += hi->accuracy - lo->accuracy;
        ++n;
      }
    }
  }
  lift = n > 0 ? lift / static_cast<double>(n) : 0.0;
  std::printf("\nMean metadata lift (X2 - X1): %+0.3f  "
              "(paper: roughly +0.05 to +0.09; must be positive)\n",
              lift);
  return lift > 0.0 ? 0 : 1;
}

}  // namespace newsdiff::bench

#endif  // NEWSDIFF_BENCH_ACCURACY_TABLE_COMMON_H_
