// Ablation: term-weighting scheme feeding NMF. The paper vectorises with
// l2-normalised TFIDF (§4.3), following Truică et al. [35]'s comparison of
// weighting schemas for topic modeling. This bench fits the same NMF on
// every implemented scheme and reports topic purity against the planted
// themes plus factorisation cost.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "text/lemmatizer.h"
#include "topic/topic_model.h"

using namespace newsdiff;

namespace {

double TopicPurity(const std::vector<std::string>& keywords) {
  double best = 0.0;
  for (const datagen::Theme& theme : datagen::NewsThemes()) {
    std::set<std::string> vocab(theme.words.begin(), theme.words.end());
    for (const std::string& w : theme.words) {
      vocab.insert(text::Lemmatize(w));
    }
    size_t hits = 0;
    for (const std::string& kw : keywords) {
      if (vocab.count(kw) > 0) ++hits;
    }
    best = std::max(best, static_cast<double>(hits) /
                              static_cast<double>(keywords.size()));
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== Ablation: term-weighting scheme for NMF topics "
              "(paper §4.3 / [35]) ===\n\n");
  bench::BenchContext ctx;
  const corpus::Corpus& corp = ctx.pipeline_result().news_tm;

  TablePrinter table(
      {"Scheme", "NMF seconds", "Iterations", "Mean topic purity"});
  double tfidfn_purity = 0.0;
  for (corpus::WeightingScheme scheme :
       {corpus::WeightingScheme::kBoolean, corpus::WeightingScheme::kTf,
        corpus::WeightingScheme::kLogTf, corpus::WeightingScheme::kTfIdf,
        corpus::WeightingScheme::kTfIdfNormalized,
        corpus::WeightingScheme::kOkapiBm25}) {
    topic::TopicModelOptions opts;
    opts.num_topics = 12;
    opts.keywords_per_topic = 10;
    opts.nmf.max_iterations = 120;
    opts.dtm.scheme = scheme;
    opts.dtm.min_doc_freq = 3;
    opts.dtm.max_doc_fraction = 0.5;
    double seconds = 0.0;
    auto model = bench::Timed(
        &seconds, [&] { return topic::TopicModel::Fit(corp, opts); });
    if (!model.ok()) {
      std::fprintf(stderr, "%s: %s\n", corpus::WeightingSchemeName(scheme),
                   model.status().ToString().c_str());
      continue;
    }
    double purity = 0.0;
    for (const topic::Topic& t : model->topics()) {
      purity += TopicPurity(t.keywords);
    }
    purity /= static_cast<double>(model->topics().size());
    if (scheme == corpus::WeightingScheme::kTfIdfNormalized) {
      tfidfn_purity = purity;
    }
    table.AddRow({corpus::WeightingSchemeName(scheme),
                  FormatDouble(seconds, 2),
                  std::to_string(model->nmf_result().iterations),
                  FormatDouble(purity, 3)});
  }
  table.Print();
  std::printf("\nThe paper's choice (TFIDF_N) should be at or near the top "
              "on purity: measured %.3f\n", tfidfn_purity);
  return tfidfn_purity > 0.6 ? 0 : 1;
}
