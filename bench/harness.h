#ifndef NEWSDIFF_BENCH_HARNESS_H_
#define NEWSDIFF_BENCH_HARNESS_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/embedding_cache.h"
#include "core/pipeline.h"
#include "datagen/world.h"
#include "store/database.h"

namespace newsdiff::bench {

/// Shared state for the paper-table benchmark harnesses. Everything is
/// built lazily and deterministically (fixed seeds), and the expensive
/// artifacts (background embeddings, accuracy grids) are cached on disk
/// under ./newsdiff_cache so that the fig4/5/6/7 binaries can reuse the
/// table8/9/10 results instead of retraining.
class BenchContext {
 public:
  BenchContext();

  /// The standard bench world (seed 2021, 3000 articles, 9000 tweets).
  const datagen::World& world();

  /// The world loaded into the embedded document store.
  store::Database& db();

  /// The frozen 300-d background embedding store (cached on disk).
  const embed::PretrainedStore& store();

  /// The standard pipeline run over the bench world.
  const core::PipelineResult& pipeline_result();

  /// Predictor options used by the accuracy tables (fixed across benches so
  /// tables 8/9 and figures 4/5 agree).
  core::PredictorOptions predictor_options() const;

  /// Directory for cached artifacts (created on first use).
  const std::string& cache_dir() const { return cache_dir_; }

 private:
  std::string cache_dir_;
  std::optional<datagen::World> world_;
  std::optional<store::Database> db_;
  std::optional<embed::PretrainedStore> store_;
  std::optional<core::PipelineResult> result_;
};

/// One cell of an accuracy grid: dataset variant x network -> accuracy.
struct AccuracyCell {
  std::string variant;   // "A1" ... "D2"
  std::string network;   // "MLP 1" ...
  double accuracy = 0.0;
  size_t epochs = 0;
  double seconds = 0.0;
};

/// Computes (or loads from cache) the full 8x4 accuracy grid for `target`
/// ("likes" or "retweets"). The grid is cached as JSON in the cache dir.
std::vector<AccuracyCell> AccuracyGrid(BenchContext& ctx,
                                       const std::string& target,
                                       bool force_recompute = false);

/// Looks up a cell; returns nullptr if missing.
const AccuracyCell* FindCell(const std::vector<AccuracyCell>& grid,
                             const std::string& variant,
                             const std::string& network);

/// One row of the scalability sweep (paper Table 10).
struct ScalabilityRow {
  size_t num_events = 0;
  size_t doc2vec_size = 0;   // 300 or 308
  std::string network;
  size_t epochs = 0;
  double millis_per_epoch = 0.0;
  double runtime_seconds = 0.0;
};

/// Computes (or loads from cache) the Table 10 sweep.
std::vector<ScalabilityRow> ScalabilitySweep(BenchContext& ctx,
                                             bool force_recompute = false);

/// Runs `fn` and returns its wall-clock duration in seconds. The single
/// timing seam for every bench binary: all reported durations go through
/// here, so the clock source and rounding are changed in exactly one place.
double TimedSeconds(const std::function<void()>& fn);

/// Times a value-returning block: `auto r = Timed(&seconds, [&] { ... });`.
/// Wraps TimedSeconds so it shares the same clock seam.
template <typename Fn>
auto Timed(double* seconds, Fn&& fn) {
  std::optional<decltype(fn())> out;
  *seconds = TimedSeconds([&] { out.emplace(fn()); });
  return std::move(*out);
}

/// Renders a horizontal ASCII bar of `value` against `max_value` using
/// `width` character cells.
std::string AsciiBar(double value, double max_value, size_t width);

}  // namespace newsdiff::bench

#endif  // NEWSDIFF_BENCH_HARNESS_H_
