// Ablation over the feature-engineering design choices of §4.7: the three
// Doc2Vec variants (SW / RND / SWM) and the two components of the metadata
// vector (the author one-hot and the day-of-week), isolated. This
// decomposes the paper's headline "metadata helps" result into its two
// assumptions: influencers matter, and the posting day matters.
#include <cstdio>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"

using namespace newsdiff;

namespace {

// Builds A1 (SW, no metadata) and then appends only the selected metadata
// columns so each assumption is tested alone.
core::TrainingDataset WithColumns(const core::TrainingDataset& a1,
                                  const core::TrainingDataset& a2,
                                  bool author_onehot, bool day_of_week) {
  core::TrainingDataset out;
  size_t extra = (author_onehot ? 7 : 0) + (day_of_week ? 1 : 0);
  out.embedding_dim = a1.embedding_dim;
  out.feature_dim = a1.feature_dim + extra;
  out.likes = a1.likes;
  out.retweets = a1.retweets;
  out.x.Resize(a1.x.rows(), out.feature_dim);
  for (size_t r = 0; r < a1.x.rows(); ++r) {
    const double* src = a1.x.RowPtr(r);
    double* dst = out.x.RowPtr(r);
    std::copy(src, src + a1.feature_dim, dst);
    size_t cursor = a1.feature_dim;
    const double* meta = a2.x.RowPtr(r) + a2.embedding_dim;
    if (author_onehot) {
      std::copy(meta, meta + 7, dst + cursor);
      cursor += 7;
    }
    if (day_of_week) {
      dst[cursor] = meta[7];
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: embedding variants and metadata components "
              "===\n\n");
  bench::BenchContext ctx;
  const core::PipelineResult& r = ctx.pipeline_result();

  auto build = [&](core::DatasetVariant v) {
    return core::BuildDataset(v, r.assignments, r.twitter_events,
                              r.twitter_ed, r.tweets, ctx.store());
  };
  core::TrainingDataset a1 = build(core::DatasetVariant::kA1);
  core::TrainingDataset a2 = build(core::DatasetVariant::kA2);
  core::TrainingDataset b1 = build(core::DatasetVariant::kB1);
  core::TrainingDataset c1 = build(core::DatasetVariant::kC1);

  struct Entry {
    std::string name;
    const core::TrainingDataset* ds;
    core::TrainingDataset owned;
  };
  std::vector<Entry> entries;
  entries.push_back({"SW embedding only (A1)", &a1, {}});
  entries.push_back({"RND embedding only (B1)", &b1, {}});
  entries.push_back({"SWM embedding only (C1)", &c1, {}});
  entries.push_back({"SW + author one-hot only", nullptr,
                     WithColumns(a1, a2, true, false)});
  entries.push_back({"SW + day-of-week only", nullptr,
                     WithColumns(a1, a2, false, true)});
  entries.push_back({"SW + full metadata (A2)", &a2, {}});

  TablePrinter table({"Features", "Dim", "Likes acc", "Retweets acc"});
  double acc_a1 = 0.0, acc_author = 0.0, acc_dow = 0.0, acc_full = 0.0;
  for (Entry& e : entries) {
    const core::TrainingDataset& ds = e.ds != nullptr ? *e.ds : e.owned;
    auto likes = core::TrainAndEvaluate(ds.x, ds.likes,
                                        core::NetworkKind::kMlp1,
                                        ctx.predictor_options());
    auto rts = core::TrainAndEvaluate(ds.x, ds.retweets,
                                      core::NetworkKind::kMlp1,
                                      ctx.predictor_options());
    double la = likes.ok() ? likes->accuracy : 0.0;
    double ra = rts.ok() ? rts->accuracy : 0.0;
    table.AddRow({e.name, std::to_string(ds.feature_dim),
                  FormatDouble(la, 3), FormatDouble(ra, 3)});
    if (e.name == "SW embedding only (A1)") acc_a1 = la;
    if (e.name == "SW + author one-hot only") acc_author = la;
    if (e.name == "SW + day-of-week only") acc_dow = la;
    if (e.name == "SW + full metadata (A2)") acc_full = la;
  }
  table.Print();
  std::printf("\nDecomposition (likes): baseline %.3f, +author %.3f, "
              "+day %.3f, +both %.3f.\n"
              "Paper's assumptions hold if each component adds lift and the "
              "combination adds the most.\n",
              acc_a1, acc_author, acc_dow, acc_full);
  return (acc_full > acc_a1) ? 0 : 1;
}
