// Micro-benchmarks for the substrates (google-benchmark): tokenizer
// throughput, TFIDF matrix build, one NMF iteration, MABED detection,
// one Word2Vec sentence, dense/conv forward+backward, store insert/find.
#include <benchmark/benchmark.h>

#include "core/assignment.h"
#include "corpus/weighting.h"
#include "embed/pvdbow.h"
#include "datagen/world.h"
#include "embed/word2vec.h"
#include "event/mabed.h"
#include "nn/architectures.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "store/database.h"
#include "store/json.h"
#include "text/phrases.h"
#include "text/pipeline.h"
#include "topic/lda.h"
#include "topic/nmf.h"

namespace {

using namespace newsdiff;

const datagen::World& SharedWorld() {
  static const datagen::World* kWorld = [] {
    datagen::WorldOptions opts;
    opts.seed = 7;
    opts.num_articles = 500;
    opts.num_tweets = 2000;
    return new datagen::World(datagen::GenerateWorld(opts));
  }();
  return *kWorld;
}

void BM_TokenizeNewsTM(benchmark::State& state) {
  const datagen::World& world = SharedWorld();
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    const datagen::NewsArticle& art = world.articles[i % world.articles.size()];
    auto tokens = text::PreprocessNewsTM(art.body);
    benchmark::DoNotOptimize(tokens);
    bytes += art.body.size();
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_TokenizeNewsTM);

void BM_TokenizeTwitterED(benchmark::State& state) {
  const datagen::World& world = SharedWorld();
  size_t i = 0;
  for (auto _ : state) {
    const datagen::Tweet& tw = world.tweets[i % world.tweets.size()];
    auto tokens = text::PreprocessTwitterED(tw.text);
    benchmark::DoNotOptimize(tokens);
    ++i;
  }
}
BENCHMARK(BM_TokenizeTwitterED);

corpus::Corpus BuildSmallCorpus() {
  corpus::Corpus corp;
  const datagen::World& world = SharedWorld();
  for (const datagen::NewsArticle& art : world.articles) {
    corp.AddDocument(text::PreprocessNewsTM(art.body), art.published, art.id);
  }
  return corp;
}

void BM_BuildDocumentTermMatrix(benchmark::State& state) {
  static const corpus::Corpus* kCorp = new corpus::Corpus(BuildSmallCorpus());
  for (auto _ : state) {
    auto dtm = corpus::BuildDocumentTermMatrix(*kCorp);
    benchmark::DoNotOptimize(dtm);
  }
}
BENCHMARK(BM_BuildDocumentTermMatrix);

void BM_NmfIteration(benchmark::State& state) {
  static const corpus::Corpus* kCorp = new corpus::Corpus(BuildSmallCorpus());
  static const corpus::DocumentTermMatrix* kDtm =
      new corpus::DocumentTermMatrix(
          corpus::BuildDocumentTermMatrix(*kCorp));
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    topic::NmfOptions opts;
    opts.components = k;
    opts.max_iterations = 1;
    opts.eval_every = 1;
    auto result = topic::Nmf(kDtm->matrix, opts);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NmfIteration)->Arg(8)->Arg(24);

void BM_MabedDetect(benchmark::State& state) {
  static const corpus::Corpus* kCorp = [] {
    corpus::Corpus* corp = new corpus::Corpus();
    for (const datagen::Tweet& tw : SharedWorld().tweets) {
      corp->AddDocument(text::PreprocessTwitterED(tw.text), tw.created,
                        tw.id);
    }
    return corp;
  }();
  for (auto _ : state) {
    event::MabedOptions opts;
    opts.max_events = 20;
    opts.min_support = 5;
    event::Mabed mabed(opts);
    auto events = mabed.Detect(*kCorp);
    benchmark::DoNotOptimize(events);
  }
}
BENCHMARK(BM_MabedDetect);

void BM_Word2VecEpoch(benchmark::State& state) {
  static const auto* kSentences = new std::vector<std::vector<std::string>>(
      datagen::BackgroundSentences(300, 5));
  for (auto _ : state) {
    embed::Word2VecOptions opts;
    opts.dimension = 50;
    opts.epochs = 1;
    opts.min_count = 1;
    auto vectors = embed::TrainWord2Vec(*kSentences, opts);
    benchmark::DoNotOptimize(vectors);
  }
}
BENCHMARK(BM_Word2VecEpoch);

void BM_MlpTrainStep(benchmark::State& state) {
  Rng rng(3);
  la::Matrix x = la::Matrix::RandomNormal(128, 300, 1.0, rng);
  std::vector<int> y(128);
  for (size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 3);
  nn::MlpConfig cfg;
  cfg.input_size = 300;
  nn::Model model = nn::BuildMlp(cfg);
  nn::Sgd sgd({0.1, 0.0});
  nn::FitOptions fit;
  fit.epochs = 1;
  fit.batch_size = 128;
  fit.early_stopping.enabled = false;
  for (auto _ : state) {
    auto history = model.Fit(x, y, sgd, fit);
    benchmark::DoNotOptimize(history);
  }
}
BENCHMARK(BM_MlpTrainStep);

void BM_CnnTrainStep(benchmark::State& state) {
  Rng rng(3);
  la::Matrix x = la::Matrix::RandomNormal(128, 300, 1.0, rng);
  std::vector<int> y(128);
  for (size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 3);
  nn::CnnConfig cfg;
  cfg.input_size = 300;
  nn::Model model = nn::BuildCnn(cfg);
  nn::Sgd sgd({0.1, 0.0});
  nn::FitOptions fit;
  fit.epochs = 1;
  fit.batch_size = 128;
  fit.early_stopping.enabled = false;
  for (auto _ : state) {
    auto history = model.Fit(x, y, sgd, fit);
    benchmark::DoNotOptimize(history);
  }
}
BENCHMARK(BM_CnnTrainStep);

void BM_StoreInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    store::Collection coll("bench");
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      coll.Insert(store::MakeObject({
          {"tweet_id", static_cast<int64_t>(i)},
          {"text", "benchmark tweet body text"},
          {"likes", static_cast<int64_t>(i * 7 % 2000)},
      }));
    }
    benchmark::DoNotOptimize(coll);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_StoreInsert);

void BM_StoreIndexedFind(benchmark::State& state) {
  static store::Collection* kColl = [] {
    auto* coll = new store::Collection("bench");
    for (int i = 0; i < 10000; ++i) {
      coll->Insert(store::MakeObject({
          {"user_id", static_cast<int64_t>(i % 500)},
          {"likes", static_cast<int64_t>(i)},
      }));
    }
    coll->CreateIndex("user_id");
    return coll;
  }();
  int64_t uid = 0;
  for (auto _ : state) {
    auto docs = kColl->Find(
        store::Filter().Eq("user_id", store::Value(uid % 500)));
    benchmark::DoNotOptimize(docs);
    ++uid;
  }
}
BENCHMARK(BM_StoreIndexedFind);

void BM_LdaIteration(benchmark::State& state) {
  static const corpus::Corpus* kCorp = new corpus::Corpus(BuildSmallCorpus());
  for (auto _ : state) {
    topic::LdaOptions opts;
    opts.num_topics = 8;
    opts.iterations = 1;
    auto result = topic::FitLda(*kCorp, opts);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LdaIteration);

void BM_PvDbowEpoch(benchmark::State& state) {
  static const auto* kDocs = new std::vector<std::vector<std::string>>(
      datagen::BackgroundSentences(200, 9));
  for (auto _ : state) {
    embed::PvDbowOptions opts;
    opts.dimension = 50;
    opts.epochs = 1;
    opts.min_count = 1;
    auto result = embed::TrainPvDbow(*kDocs, opts);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PvDbowEpoch);

void BM_HungarianAssignment(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  la::Matrix cost = la::Matrix::Random(n, n, 0.0, 1.0, rng);
  for (auto _ : state) {
    auto result = core::SolveAssignment(cost);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HungarianAssignment)->Arg(16)->Arg(64);

void BM_PhraseApply(benchmark::State& state) {
  static const text::PhraseModel* kModel = [] {
    auto* model = new text::PhraseModel();
    model->Train(datagen::BackgroundSentences(2000, 10));
    return model;
  }();
  auto sentences = datagen::BackgroundSentences(50, 11);
  size_t i = 0;
  for (auto _ : state) {
    auto out = kModel->Apply(sentences[i % sentences.size()]);
    benchmark::DoNotOptimize(out);
    ++i;
  }
}
BENCHMARK(BM_PhraseApply);

void BM_CosineSimilarity300(benchmark::State& state) {
  Rng rng(5);
  la::Matrix vecs = la::Matrix::RandomNormal(64, 300, 1.0, rng);
  size_t i = 0;
  for (auto _ : state) {
    double s = la::CosineSimilarity(vecs.Row(i % 64), vecs.Row((i + 1) % 64));
    benchmark::DoNotOptimize(s);
    ++i;
  }
}
BENCHMARK(BM_CosineSimilarity300);

void BM_JsonRoundtrip(benchmark::State& state) {
  store::Value doc = store::MakeObject({
      {"tweet_id", int64_t{123456}},
      {"text", "a moderately long tweet body with several words in it"},
      {"likes", int64_t{532}},
      {"nested", store::MakeObject({{"a", 1.5}, {"b", "x"}})},
  });
  for (auto _ : state) {
    std::string json = store::ToJson(doc);
    auto parsed = store::ParseJson(json);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_JsonRoundtrip);

}  // namespace

BENCHMARK_MAIN();
