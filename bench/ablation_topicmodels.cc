// Ablation: NMF vs LDA for the topic-modeling module. The paper's §4.9
// design choice: "we choose to use NMF instead of LDA as it provides
// similar results on both small and large length texts in less time"
// (citing Truică et al. [35]). This bench fits both models on the same
// NewsTM corpus and compares wall time and topic purity against the
// generator's planted themes.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "text/lemmatizer.h"
#include "topic/coherence.h"
#include "topic/lda.h"
#include "topic/topic_model.h"

using namespace newsdiff;

namespace {

/// Fraction of a topic's top keywords that fall inside a single planted
/// theme vocabulary (the best matching theme) — higher is purer.
double TopicPurity(const std::vector<std::string>& keywords) {
  double best = 0.0;
  for (const datagen::Theme& theme : datagen::NewsThemes()) {
    std::set<std::string> vocab(theme.words.begin(), theme.words.end());
    // Topic-model keywords went through the lemmatizer; lemmatize theme
    // words the same way for a fair membership test.
    std::set<std::string> lemmas;
    for (const std::string& w : theme.words) {
      lemmas.insert(text::Lemmatize(w));
    }
    size_t hits = 0;
    for (const std::string& kw : keywords) {
      if (vocab.count(kw) > 0 || lemmas.count(kw) > 0) ++hits;
    }
    best = std::max(best, static_cast<double>(hits) /
                              static_cast<double>(keywords.size()));
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== Ablation: NMF vs LDA topic modeling (paper §4.9) ===\n\n");
  bench::BenchContext ctx;
  const core::PipelineResult& r = ctx.pipeline_result();
  const corpus::Corpus& corp = r.news_tm;

  const size_t k = 12;
  const size_t top_words = 10;

  // --- NMF. ---
  topic::TopicModelOptions nmf_opts;
  nmf_opts.num_topics = k;
  nmf_opts.keywords_per_topic = top_words;
  nmf_opts.nmf.max_iterations = 120;
  nmf_opts.dtm.min_doc_freq = 3;
  nmf_opts.dtm.max_doc_fraction = 0.5;
  double nmf_seconds = 0.0;
  auto nmf_model = bench::Timed(
      &nmf_seconds, [&] { return topic::TopicModel::Fit(corp, nmf_opts); });
  if (!nmf_model.ok()) {
    std::fprintf(stderr, "NMF: %s\n", nmf_model.status().ToString().c_str());
    return 1;
  }
  double nmf_purity = 0.0;
  std::vector<std::vector<std::string>> nmf_keywords;
  for (const topic::Topic& t : nmf_model->topics()) {
    nmf_purity += TopicPurity(t.keywords);
    nmf_keywords.push_back(t.keywords);
  }
  nmf_purity /= static_cast<double>(k);
  double nmf_coherence = topic::MeanUMassCoherence(nmf_keywords, corp);

  // --- LDA. ---
  topic::LdaOptions lda_opts;
  lda_opts.num_topics = k;
  lda_opts.iterations = 150;
  double lda_seconds = 0.0;
  auto lda_result = bench::Timed(
      &lda_seconds, [&] { return topic::FitLda(corp, lda_opts); });
  if (!lda_result.ok()) {
    std::fprintf(stderr, "LDA: %s\n", lda_result.status().ToString().c_str());
    return 1;
  }
  double lda_purity = 0.0;
  std::vector<std::vector<std::string>> lda_keywords;
  for (size_t z = 0; z < k; ++z) {
    lda_keywords.push_back(
        topic::LdaTopicKeywords(*lda_result, corp, z, top_words));
    lda_purity += TopicPurity(lda_keywords.back());
  }
  lda_purity /= static_cast<double>(k);
  double lda_coherence = topic::MeanUMassCoherence(lda_keywords, corp);

  TablePrinter table({"Model", "Wall time (s)", "Mean topic purity",
                      "UMass coherence"});
  table.AddRow({"NMF (multiplicative updates)", FormatDouble(nmf_seconds, 2),
                FormatDouble(nmf_purity, 3), FormatDouble(nmf_coherence, 1)});
  table.AddRow({"LDA (collapsed Gibbs, 150 it)", FormatDouble(lda_seconds, 2),
                FormatDouble(lda_purity, 3), FormatDouble(lda_coherence, 1)});
  table.Print();

  std::printf("\nSample NMF topic:  %s\n",
              Join(nmf_model->topics()[0].keywords, " ").c_str());
  std::printf("Sample LDA topic:  %s\n",
              Join(topic::LdaTopicKeywords(*lda_result, corp, 0, top_words),
                   " ")
                  .c_str());
  std::printf("\nPaper's claim holds if NMF reaches comparable purity in "
              "less time: %s\n",
              (nmf_seconds < lda_seconds && nmf_purity > lda_purity - 0.15)
                  ? "OK"
                  : "MISMATCH");
  return (nmf_seconds < lda_seconds && nmf_purity > lda_purity - 0.15) ? 0
                                                                       : 1;
}
