// Ablation: the three optimizers of §3.5 (SGD, ADAGRAD, ADADELTA) on the
// same MLP and dataset. The paper's observation (§5.7): accuracy is
// insensitive to the optimizer, but ADADELTA needs more batches/epochs to
// converge than SGD. ADAGRAD is included because the paper introduces it
// as the stepping stone to ADADELTA (Eq. 15).
#include <cstdio>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "nn/optimizer.h"

using namespace newsdiff;

int main() {
  std::printf("=== Ablation: optimizer choice (SGD / ADAGRAD / ADADELTA) "
              "===\n\n");
  bench::BenchContext ctx;
  const core::PipelineResult& r = ctx.pipeline_result();
  core::TrainingDataset ds =
      core::BuildDataset(core::DatasetVariant::kA2, r.assignments,
                         r.twitter_events, r.twitter_ed, r.tweets,
                         ctx.store());

  struct Config {
    const char* name;
    std::unique_ptr<nn::Optimizer> optimizer;
  };
  std::vector<Config> configs;
  configs.push_back({"SGD lr=0.5", std::make_unique<nn::Sgd>(
                                       nn::SgdOptions{0.5, 0.0})});
  configs.push_back({"SGD lr=0.5 m=0.9", std::make_unique<nn::Sgd>(
                                              nn::SgdOptions{0.5, 0.9})});
  configs.push_back({"ADAGRAD lr=0.05",
                     std::make_unique<nn::Adagrad>(
                         nn::AdagradOptions{0.05, 1e-8})});
  configs.push_back({"ADADELTA lr=2",
                     std::make_unique<nn::Adadelta>(
                         nn::AdadeltaOptions{2.0, 0.95, 1e-6})});

  TablePrinter table({"Optimizer", "Val accuracy", "Epochs", "Final loss",
                      "Seconds"});
  double sgd_epochs = 0.0, adadelta_epochs = 0.0;
  for (Config& cfg : configs) {
    core::PredictorOptions o = ctx.predictor_options();
    nn::Model model = core::BuildNetwork(core::NetworkKind::kMlp1,
                                         ds.x.cols(), o);
    // Seeded split identical across optimizers via TrainAndEvaluate's own
    // splitter; here we train manually to reuse the custom optimizer.
    nn::FitOptions fit;
    fit.epochs = o.max_epochs;
    fit.batch_size = o.batch_size;
    fit.early_stopping = o.early_stopping;
    fit.seed = o.seed;
    fit.validation_split = 0.2;
    double seconds = 0.0;
    auto history = bench::Timed(
        &seconds, [&] { return model.Fit(ds.x, ds.likes, *cfg.optimizer, fit); });
    if (!history.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", cfg.name,
                   history.status().ToString().c_str());
      continue;
    }
    double val_acc = history->val_accuracy.empty()
                         ? 0.0
                         : history->val_accuracy.back();
    table.AddRow({cfg.name, FormatDouble(val_acc, 3),
                  std::to_string(history->epochs_run),
                  FormatDouble(history->train_loss.back(), 4),
                  FormatDouble(seconds, 2)});
    if (std::string(cfg.name) == "SGD lr=0.5") {
      sgd_epochs = static_cast<double>(history->epochs_run);
    }
    if (std::string(cfg.name) == "ADADELTA lr=2") {
      adadelta_epochs = static_cast<double>(history->epochs_run);
    }
  }
  table.Print();
  std::printf("\nPaper shape: accuracies are close across optimizers; "
              "ADADELTA needs at least as many epochs as SGD "
              "(measured: SGD %.0f vs ADADELTA %.0f).\n",
              sgd_epochs, adadelta_epochs);
  return 0;
}
