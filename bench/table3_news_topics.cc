// Reproduces Table 3 (§5.2): the most relevant news topics extracted with
// NMF over the TFIDF_N-weighted NewsTM corpus, plus the extraction runtime.
// Paper: 100 topics from 261,052 articles in 19.01 minutes; here the world
// is laptop-scale, so the absolute runtime is smaller — the deliverable is
// the topics themselves, which should read like the paper's.
#include <cstdio>

#include "bench/harness.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/time.h"

using namespace newsdiff;

int main() {
  std::printf("=== Table 3: News topics (NMF over NewsTM) ===\n\n");
  std::printf("Paper reference (10 of 100 topics):\n");
  std::printf("  #1  party election vote seat poll voter conservative win european brexit\n");
  std::printf("  #2  tariff import billion chinese good impose 25 consumer product percent\n");
  std::printf("  #5  huawei company google ban smartphone android chinese network security technology\n");
  std::printf("  #6  iran iranian tehran sanction nuclear drone tension deal gulf tanker\n");
  std::printf("  #10 derby horse kentucky race win belmont maximum winner security racing\n\n");

  bench::BenchContext ctx;
  const core::PipelineResult& r = ctx.pipeline_result();

  std::printf("Measured: %zu topics from %zu articles (NMF %.2fs)\n\n",
              r.topics.size(), r.news.size(), r.topic_seconds);
  TablePrinter table({"#NT", "Keywords"});
  size_t shown = 0;
  for (const topic::Topic& t : r.topics) {
    if (shown >= 12) break;
    table.AddRow({std::to_string(t.id + 1), Join(t.keywords, " ")});
    ++shown;
  }
  table.Print();
  std::printf("\nShape check: topics are coherent theme vocabularies "
              "(politics, trade, tech, sport...), as in the paper.\n");
  return 0;
}
